#!/usr/bin/env python3
"""Why proxies beat traditional capabilities under a network tap (§3.1).

Runs the same story twice: a capability is used while an eavesdropper
records the wire, and the eavesdropper then tries to use what it saw.

* Traditional capability server: the token IS the secret; the replay works.
* Restricted proxies: only the certificate crosses the wire, possession is
  proven fresh per request; both replay and re-use fail.

Run:  python examples/eavesdropper_demo.py
"""

from repro import Realm
from repro.baselines import PlainCapabilityServer
from repro.core import Authorized, AuthorizedEntry
from repro.errors import ReproError
from repro.kerberos.proxy_support import grant_via_credentials
from repro.net import Eavesdropper
from repro.net.message import is_error, raise_if_error


def traditional(realm: Realm) -> None:
    print("== traditional capabilities (baseline) ==")
    owner = realm.user("owner")
    user = realm.user("user")
    server = PlainCapabilityServer(
        realm.principal("cap-server"), realm.network, realm.clock
    )
    server.add_owner(owner.principal)
    server.register_operation(
        "read", lambda who, payload: {"data": b"top secret"}
    )
    token = realm.network.send(
        owner.principal, server.principal, "issue",
        {"operations": ["read"], "target": "doc", "expires_at": None},
    )["token"]

    mallory = Eavesdropper("mallory-1")
    mallory.attach(realm.network)
    realm.network.send(
        user.principal, server.principal, "request",
        {"token": token, "operation": "read", "target": "doc"},
    )
    mallory.detach(realm.network)

    stolen = mallory.last_of_type("request").payload["token"]
    reply = realm.network.send(
        mallory.principal, server.principal, "request",
        {"token": stolen, "operation": "read", "target": "doc"},
    )
    print(f"  mallory taps the wire, replays the token -> {reply!r}")
    print("  the stolen capability works forever. that is the flaw.\n")


def proxies(realm: Realm) -> None:
    print("== restricted proxies (the paper's design) ==")
    alice = realm.user("alice")
    bob = realm.user("bob")
    fs = realm.file_server("secure-files")
    fs.grant_owner(alice.principal)
    fs.put("doc", b"top secret")

    creds = alice.kerberos.get_ticket(fs.principal)
    capability = grant_via_credentials(
        creds,
        (Authorized(entries=(AuthorizedEntry("doc", ("read",)),)),),
        issued_at=realm.clock.now(),
    )

    mallory = Eavesdropper("mallory-2")
    mallory.attach(realm.network)
    data = bob.client_for(fs.principal).request(
        "read", "doc", proxy=capability, anonymous=True
    )["data"]
    mallory.detach(realm.network)
    print(f"  bob reads via the capability: {data!r}")

    captured = mallory.last_of_type("request")
    reply = mallory.replay(realm.network, captured)
    assert is_error(reply)
    try:
        raise_if_error(reply)
    except ReproError as exc:
        print(f"  mallory replays the whole captured request -> {exc}")

    # Mallory also can't mint a fresh request: the proxy key never crossed
    # the wire, so there is nothing to sign a possession proof with.
    from repro.encoding.canonical import encode

    key = capability.proxy.proxy_key.secret
    seen = any(key in encode(m.payload) for m in mallory.captured)
    print(f"  did the proxy key ever cross the wire? {seen}")
    print("  certificates without the key are useless — claim §3.1 holds.")


def main() -> None:
    realm = Realm(seed=b"eavesdrop-example")
    traditional(realm)
    proxies(realm)


if __name__ == "__main__":
    main()
