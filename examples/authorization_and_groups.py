#!/usr/bin/env python3
"""Authorization and group servers (§3.2–§3.3, Fig. 3).

An organization centralizes policy: end-servers put the authorization
server R and a group on their ACLs, and clients fetch proxies that assert
their rights.  Includes Fig. 3's message 0 (name-server lookup of what
credentials an end-server wants) and revocation by database change.

Run:  python examples/authorization_and_groups.py
"""

from repro import Realm
from repro.acl import AclEntry, GroupSubject, SinglePrincipal
from repro.errors import ReproError
from repro.services.nameserver import lookup


def main() -> None:
    realm = Realm(seed=b"authz-example")
    bob = realm.user("bob")

    fs = realm.file_server("projects")
    fs.put("specs/design.md", b"# design\n...")

    authz = realm.authorization_server("authz")
    groups = realm.group_server("groups")
    ns = realm.name_server("directory")

    # The end-server delegates its authorization decisions (§3.5): its own
    # ACL names only the authorization server and one group.
    staff = groups.create_group("staff", (bob.principal,))
    fs.acl.add(AclEntry(subject=SinglePrincipal(authz.principal)))
    fs.acl.add(AclEntry(subject=GroupSubject(staff), operations=("list",)))
    ns.publish(
        fs.principal,
        authorization_server=authz.principal,
        group_servers=[groups.principal],
    )

    # The authorization server's database for this end-server.
    authz.database_for(fs.principal).add(
        AclEntry(
            subject=SinglePrincipal(bob.principal),
            operations=("read",),
            targets=("specs/*",),
        )
    )

    # Fig. 3, message 0: what does this server want?
    record = lookup(realm.network, bob.principal, ns.principal, fs.principal)
    print(
        f"message 0: {fs.principal.name} honours authorization server "
        f"{record['authorization_server']} and groups from "
        f"{record['group_servers']}"
    )

    # Fig. 3, messages 1-2: authenticated request, proxy comes back with
    # the proxy key sealed under the session key.
    before = realm.network.metrics.snapshot()
    proxy = bob.authorization_client(authz.principal).authorize(
        fs.principal, ("read",), ("specs/*",)
    )
    delta = realm.network.metrics.delta_since(before)
    print(
        f"messages 1-2: authorization proxy issued by "
        f"{proxy.grantor.name} ({delta.messages} messages incl. KDC)"
    )

    # Message 3: present to the end-server.
    data = bob.client_for(fs.principal).request(
        "read", "specs/design.md", proxy=proxy
    )["data"]
    print(f"message 3: read via proxy -> {data!r}")

    # Group path: bob asserts staff membership to use the group ACL entry.
    gid, gproxy = bob.group_client(groups.principal).get_group_proxy(
        "staff", fs.principal
    )
    listing = bob.client_for(fs.principal).request(
        "list", "specs/", group_proxies=[(gid, gproxy)]
    )["paths"]
    print(f"group proxy asserts {gid} -> list: {listing}")

    # Revocation is a database change at the authorization server: the
    # next proxy request fails; outstanding proxies die at expiry.
    authz.database_for(fs.principal).remove_subject(
        SinglePrincipal(bob.principal)
    )
    try:
        bob.authorization_client(authz.principal).authorize(
            fs.principal, ("read",), ("specs/*",)
        )
    except ReproError as exc:
        print(f"after revocation, a new proxy is refused: {exc}")


if __name__ == "__main__":
    main()
