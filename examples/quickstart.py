#!/usr/bin/env python3
"""Quickstart: restricted proxies in five minutes.

Builds a one-realm world (KDC + file server), then walks the paper's core
moves: direct ACL access, granting a restricted proxy (a capability),
cascading it with tighter restrictions, and watching verification refuse
everything outside the granted scope.

Run:  python examples/quickstart.py
"""

from repro import Realm
from repro.core import Authorized, AuthorizedEntry, Quota
from repro.core.proxy import cascade
from repro.errors import ReproError
from repro.kerberos.proxy_support import grant_via_credentials


def main() -> None:
    # -- a world: simulated network, clock, KDC ---------------------------
    realm = Realm(seed=b"quickstart")
    alice = realm.user("alice")
    bob = realm.user("bob")

    fs = realm.file_server("fileserver")
    fs.grant_owner(alice.principal)          # local ACL (§3.5)
    fs.put("home/alice/notes.txt", b"meeting at noon")

    # -- 1. direct access under alice's own credentials --------------------
    client = alice.client_for(fs.principal)
    data = client.request("read", "home/alice/notes.txt")["data"]
    print(f"alice reads her file directly: {data!r}")

    # -- 2. a capability: bearer proxy restricted to one file, read-only ---
    creds = alice.kerberos.get_ticket(fs.principal)
    capability = grant_via_credentials(
        creds,
        (
            Authorized(
                entries=(
                    AuthorizedEntry("home/alice/notes.txt", ("read",)),
                )
            ),
        ),
        issued_at=realm.clock.now(),
    )
    print("\nalice grants a read capability for notes.txt")

    data = bob.client_for(fs.principal).request(
        "read", "home/alice/notes.txt", proxy=capability, anonymous=True
    )["data"]
    print(f"bob (anonymous bearer) reads via the capability: {data!r}")

    # -- 3. the restriction bites ------------------------------------------
    try:
        bob.client_for(fs.principal).request(
            "delete", "home/alice/notes.txt", proxy=capability,
            anonymous=True,
        )
    except ReproError as exc:
        print(f"bob tries to delete -> refused: {exc}")

    # -- 4. cascading: bob re-restricts before passing on (§3.4) -----------
    narrower = cascade(
        capability.proxy,
        (Quota(currency="bytes", limit=0),),  # belt and braces: no writes
        issued_at=realm.clock.now(),
        expires_at=realm.clock.now() + 60.0,  # and only for a minute
    )
    carol = realm.user("carol")
    data = carol.client_for(fs.principal).request(
        "read", "home/alice/notes.txt",
        proxy=capability.handoff(narrower), anonymous=True,
    )["data"]
    print(f"\ncarol uses bob's re-restricted copy: {data!r}")

    realm.clock.advance(61.0)
    try:
        carol.client_for(fs.principal).request(
            "read", "home/alice/notes.txt",
            proxy=capability.handoff(narrower), anonymous=True,
        )
    except ReproError as exc:
        print(f"a minute later -> refused: {exc}")

    # -- protocol cost ------------------------------------------------------
    snap = realm.network.metrics.snapshot()
    print(
        f"\nnetwork totals: {snap.messages} messages, {snap.bytes} bytes "
        f"(KDC contacted {snap.messages_to(realm.kdc.principal)} times; "
        f"proxy verification itself was offline)"
    )


if __name__ == "__main__":
    main()
