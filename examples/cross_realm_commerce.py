#!/usr/bin/env python3
"""Electronic commerce across organizations (§1 + §4 + cross-realm Kerberos).

Two companies, two realms, two banks.  A buyer in ACME.ORG purchases from a
merchant in SHOP.ORG: cross-realm authentication gets the buyer a session
with the foreign shop, a certified check guarantees payment, the shop
verifies the certification offline, and the check clears across banks in
different realms.

Run:  python examples/cross_realm_commerce.py
"""

from repro.core.evaluation import RequestContext
from repro.testbed import federation


def main() -> None:
    realms = federation(["ACME.ORG", "SHOP.ORG"], seed=b"commerce-x")
    acme, shopco = realms["ACME.ORG"], realms["SHOP.ORG"]

    buyer = acme.user("buyer")
    merchant = shopco.user("merchant")
    bank_acme = acme.accounting_server("acme-bank")
    bank_shop = shopco.accounting_server("shop-bank")
    bank_acme.create_account("buyer", buyer.principal, {"dollars": 500})
    bank_shop.create_account("merchant", merchant.principal)

    store = shopco.file_server("storefront")
    store.grant_owner(merchant.principal)
    store.put("catalog/widget", b"deluxe widget, $120")

    # 1. Cross-realm authentication: ACME buyer talks to the SHOP store.
    print("1. buyer@ACME browses merchant's store in SHOP.ORG")
    # Merchant lets anyone browse the catalog:
    from repro.acl import AclEntry, Anyone

    store.acl.add(
        AclEntry(subject=Anyone(), operations=("read",), targets=("catalog/*",))
    )
    listing = buyer.client_for(store.principal).request(
        "read", "catalog/widget"
    )["data"]
    print(f"   catalog says: {listing.decode()}")
    print(f"   (buyer authenticated via cross-realm TGT: "
          f"krbtgt.SHOP.ORG@ACME.ORG)")

    # 2. Payment: certified check drawn on the ACME bank.
    print("\n2. buyer draws and certifies a check for 120 dollars")
    buyer_bank = buyer.accounting_client(bank_acme.principal)
    check = buyer_bank.write_check(
        "buyer", merchant.principal, "dollars", 120
    )
    certification = buyer_bank.certify_check(check, store.principal)
    print(f"   hold placed; buyer balance now "
          f"{buyer_bank.balance('buyer')['dollars']}")

    # 3. The shop verifies the certification offline before shipping.
    wire = certification.presentation(
        store.principal, shopco.clock.now(),
        "verify-certification", target=f"check:{check.number}",
    )
    verified = store.acceptor.accept(
        wire,
        RequestContext(
            server=store.principal,
            operation="verify-certification",
            target=f"check:{check.number}",
        ),
    )
    print(f"\n3. store verified certification signed by {verified.grantor}")
    print("   -> ships the widget")

    # 4. The merchant deposits; the check clears across realms and banks.
    result = merchant.accounting_client(bank_shop.principal).deposit_check(
        check, "merchant"
    )
    print(f"\n4. check cleared cross-realm: paid {result['paid']} dollars")
    print(f"   merchant balance: "
          f"{merchant.accounting_client(bank_shop.principal).balance('merchant')}")
    print(f"   buyer balance:    {buyer_bank.balance('buyer')}")

    snap = acme.network.metrics.snapshot()
    print(f"\nnetwork totals: {snap.messages} messages across both realms; "
          f"no global authority was involved — only the pairwise "
          f"KDC federation")


if __name__ == "__main__":
    main()
