#!/usr/bin/env python3
"""A deployment with no KDC at all: pure public-key proxies (§6.1, Fig. 6).

Everything runs off a public-key directory (the "authentication/name
server"): clients sign request envelopes with their own keys, grantors sign
Fig. 6 proxy certificates, and the end-server verifies everything offline.
Also shows the §6.1 hybrid scheme and the §7.3 issued-for pitfall.

Run:  python examples/public_key_deployment.py
"""

from repro.clock import SimulatedClock
from repro.core.proxy import grant_hybrid, grant_public
from repro.core.restrictions import Authorized, AuthorizedEntry, IssuedFor
from repro.crypto.dh import TEST_GROUP
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.errors import ReproError
from repro.net import Network
from repro.services.pk_endserver import (
    PkClient,
    PkEndServer,
    PublicKeyDirectory,
)
from repro.acl import AclEntry, SinglePrincipal


def main() -> None:
    rng = Rng(seed=b"pk-example")
    clock = SimulatedClock(1_000_000.0)
    network = Network(clock, rng=rng)
    directory = PublicKeyDirectory()   # the only shared infrastructure

    server = PkEndServer(
        PrincipalId("archive"), network, clock, directory,
        group=TEST_GROUP, rng=rng,
    )
    documents = {"paper.ps": b"ICDCS 1993 camera-ready"}
    server.register_operation(
        "read", lambda rights, claimant, args, amounts: {
            "data": documents[args["path"]]
        }
    )

    alice = PkClient(
        PrincipalId("alice"), network, clock, directory,
        group=TEST_GROUP, rng=rng,
    )
    bob = PkClient(
        PrincipalId("bob"), network, clock, directory,
        group=TEST_GROUP, rng=rng,
    )
    server.acl.add(AclEntry(subject=SinglePrincipal(alice.principal)))

    print("1. alice authenticates by signature (no tickets anywhere):")
    out = alice.request(
        server.principal, "read", target="paper.ps",
        args={"path": "paper.ps"},
    )
    print(f"   read -> {out['data']!r}")

    print("\n2. alice grants a Fig. 6 public-key proxy, pinned with")
    print("   issued-for (§7.3 — otherwise it would verify everywhere):")
    proxy = grant_public(
        alice.principal, alice.signer,
        (
            Authorized(entries=(AuthorizedEntry("paper.ps", ("read",)),)),
            IssuedFor(servers=(server.principal,)),
        ),
        clock.now(), clock.now() + 3600, group=TEST_GROUP,
    )
    out = bob.request(
        server.principal, "read", target="paper.ps",
        args={"path": "paper.ps"}, proxy=proxy, anonymous=True,
    )
    print(f"   bob, anonymous bearer -> {out['data']!r}")

    print("\n3. the hybrid scheme (§6.1): cheap symmetric proxy key,")
    print("   encrypted to the archive's public key:")
    hybrid = grant_hybrid(
        alice.principal, alice.signer,
        server.principal, directory.key_of(server.principal),
        (Authorized(entries=(AuthorizedEntry("paper.ps", ("read",)),)),),
        clock.now(), clock.now() + 3600,
    )
    out = bob.request(
        server.principal, "read", target="paper.ps",
        args={"path": "paper.ps"}, proxy=hybrid, anonymous=True,
    )
    print(f"   bob via hybrid proxy -> {out['data']!r}")

    print("\n4. revocation = one directory update:")
    directory.revoke(alice.principal)
    for label, bundle in (("public", proxy), ("hybrid", hybrid)):
        try:
            bob.request(
                server.principal, "read", target="paper.ps",
                args={"path": "paper.ps"}, proxy=bundle, anonymous=True,
            )
        except ReproError as exc:
            print(f"   {label} proxy now refused: {exc}")


if __name__ == "__main__":
    main()
