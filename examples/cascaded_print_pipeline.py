#!/usr/bin/env python3
"""Cascaded authorization through a print pipeline (§3.4, Fig. 4).

A user sends a document through a formatting service and a spool service,
neither of which she fully trusts.  Rights flow as a cascade of proxies,
tightened at each hop; the delegate variant leaves an audit trail naming
every intermediate.

Run:  python examples/cascaded_print_pipeline.py
"""

from repro import Realm
from repro.audit import AuditLog
from repro.core.chain import describe
from repro.core.evaluation import RequestContext
from repro.core.restrictions import Grantee, Quota
from repro.errors import ReproError
from repro.kerberos.proxy_support import endorse, grant_via_credentials
from repro.services.printserver import PAGES


def main() -> None:
    realm = Realm(seed=b"pipeline-example")
    alice = realm.user("alice")
    formatter = realm.user("format-svc")
    spooler = realm.user("spool-svc")

    printer = realm.print_server("printer")
    alice.client_for(printer.principal).request(
        "allocate", args={"pages": 100}
    )
    print("alice has 100 pages allocated at the printer\n")

    # Hop 1: alice -> formatter, capped at 10 pages, named delegate.
    creds = alice.kerberos.get_ticket(printer.principal)
    to_formatter = grant_via_credentials(
        creds,
        (
            Grantee(principals=(formatter.principal,)),
            Quota(currency=PAGES, limit=10),
        ),
        issued_at=realm.clock.now(),
    )
    # Hop 2: formatter -> spooler, tightened to 6 pages (it knows the
    # formatted size), signed with the formatter's own credentials so the
    # printer's audit log will name it (§3.4).
    to_spooler = endorse(
        to_formatter,
        formatter.kerberos.get_ticket(printer.principal),
        spooler.principal,
        (Quota(currency=PAGES, limit=6),),
        issued_at=realm.clock.now(),
        expires_at=realm.clock.now() + 600,
    )

    print("the chain the printer will verify (Fig. 4 notation):")
    print("  " + describe(to_spooler.proxy.certificates).replace("\n", "\n  "))

    # The spooler submits the job under alice's rights.
    out = spooler.client_for(printer.principal).request(
        "print", "thesis-final.ps", amounts={PAGES: 6}, proxy=to_spooler
    )
    job = printer.jobs[out["job_id"]]
    print(
        f"\nprinted {job['pages']} pages of {job['document']} — "
        f"owner={job['owner']}, submitted by {job['submitted_by']}"
    )
    print(f"alice's remaining allocation: {out['remaining']}")

    # The audit trail: verify once more explicitly and log it.
    log = AuditLog()
    wire = to_spooler.presentation(
        printer.principal, realm.clock.now(), "print", "thesis-final.ps",
        claimant=spooler.principal,
    )
    verified = printer.acceptor.accept(
        wire,
        RequestContext(
            server=printer.principal, operation="print",
            target="thesis-final.ps", claimant=spooler.principal,
            amounts={PAGES: 1},
        ),
    )
    record = log.record(
        realm.clock.now(), printer.principal, verified, "print",
        "thesis-final.ps",
    )
    print(f"\naudit record: {record.describe()}")

    # The tightened quota binds every holder downstream.
    try:
        spooler.client_for(printer.principal).request(
            "print", "extra.ps", amounts={PAGES: 7}, proxy=to_spooler
        )
    except ReproError as exc:
        print(f"\nspooler tries 7 pages -> refused: {exc}")

    # And the spooler cannot hand the task to someone alice never named.
    mallory = realm.user("mallory")
    try:
        mallory.client_for(printer.principal).request(
            "print", "junk.ps", amounts={PAGES: 1}, proxy=to_spooler
        )
    except ReproError as exc:
        print(f"mallory tries the spooler's proxy -> refused: {exc}")


if __name__ == "__main__":
    main()
