#!/usr/bin/env python3
"""Distributed accounting: checks, endorsements, and certified checks (§4).

Recreates Figure 5 with two accounting servers: a client on bank-2 pays a
merchant on bank-1 by check; the merchant deposits with its own bank, which
endorses and collects from the payor's bank.  Then the certified-check flow:
a hold at the payor's bank plus an authorization proxy the merchant's shop
can verify before delivering goods.

Run:  python examples/distributed_accounting.py
"""

from repro import Realm
from repro.errors import ReproError
from repro.services.accounting import SETTLEMENT_PREFIX


def show_books(label, *banks):
    print(f"\n  [{label}]")
    for bank in banks:
        holdings = {
            name: dict(account.balances)
            for name, account in sorted(bank.accounts.items())
            if account.balances or account.holds
        }
        holds = {
            name: {h.check_number: h.amount for h in account.holds.values()}
            for name, account in sorted(bank.accounts.items())
            if account.holds
        }
        print(f"    {bank.principal.name}: balances={holdings} holds={holds}")


def main() -> None:
    realm = Realm(seed=b"accounting-example")
    client = realm.user("client")
    merchant = realm.user("merchant")

    bank1 = realm.accounting_server("bank-1")   # the merchant's ($1)
    bank2 = realm.accounting_server("bank-2")   # the client's  ($2)
    bank2.create_account("client", client.principal, {"dollars": 100})
    bank1.create_account("merchant", merchant.principal)

    client_bank = client.accounting_client(bank2.principal)
    merchant_bank = merchant.accounting_client(bank1.principal)

    # ---------------------------------------------------------------- Fig. 5
    print("== Figure 5: processing a check ==")
    check = client_bank.write_check(
        "client", merchant.principal, "dollars", 40
    )
    print(
        f"  1. C draws check #{check.number[:8]} for {check.amount} "
        f"{check.currency}, payable to S, drawn on {check.drawn_on.name}"
    )
    show_books("before deposit", bank1, bank2)

    before = realm.network.metrics.snapshot()
    result = merchant_bank.deposit_check(check, "merchant")
    delta = realm.network.metrics.delta_since(before)
    print(
        f"  E1/E2. S endorses to $1; $1 endorses+collects from $2 -> "
        f"paid {result['paid']} ({delta.messages} messages end to end)"
    )
    show_books("after clearing", bank1, bank2)
    settlement = bank2.accounts[f"{SETTLEMENT_PREFIX}bank-1"]
    print(
        f"  interbank: $2 owes $1 {settlement.balance('dollars')} dollars "
        f"(settlement account)"
    )

    # The same check again: rejected by the accept-once machinery (§7.7).
    try:
        merchant_bank.deposit_check(check, "merchant")
    except ReproError as exc:
        print(f"  depositing the same check again -> {exc}")

    # ------------------------------------------------------- certified check
    print("\n== Certified check (quota-style guarantee) ==")
    shop = realm.file_server("shop")
    shop.grant_owner(merchant.principal)

    check2 = client_bank.write_check(
        "client", merchant.principal, "dollars", 25
    )
    certification = client_bank.certify_check(check2, shop.principal)
    print(
        f"  $2 places a hold of {check2.amount} and issues an "
        f"authorization proxy signed by {certification.grantor.name}"
    )
    show_books("after certification (hold visible)", bank1, bank2)

    # The shop verifies the certification offline before shipping.
    from repro.core.evaluation import RequestContext

    wire = certification.presentation(
        shop.principal, realm.clock.now(),
        "verify-certification", target=f"check:{check2.number}",
    )
    verified = shop.acceptor.accept(
        wire,
        RequestContext(
            server=shop.principal,
            operation="verify-certification",
            target=f"check:{check2.number}",
        ),
    )
    print(f"  shop verified certification from {verified.grantor} -> ships")

    result = merchant_bank.deposit_check(check2, "merchant")
    print(f"  check clears from the hold: paid {result['paid']}")
    show_books("final", bank1, bank2)


if __name__ == "__main__":
    main()
