"""The restriction vocabulary (§7): semantics of every restriction type."""

import pytest

from repro.clock import SimulatedClock
from repro.core.evaluation import RequestContext
from repro.core.replay import AcceptOnceRegistry
from repro.core.restrictions import (
    AcceptOnce,
    Authorized,
    AuthorizedEntry,
    Expiration,
    ForUseByGroup,
    Grantee,
    GroupMembership,
    IssuedFor,
    LimitRestriction,
    Quota,
    Restriction,
    check_all,
    is_bearer,
    propagate_restrictions,
    register_restriction,
    restriction_from_wire,
    restrictions_from_wire,
    restrictions_to_wire,
)
from repro.encoding.identifiers import GroupId, PrincipalId
from repro.errors import (
    ReplayError,
    RestrictionError,
    RestrictionViolation,
)

ALICE = PrincipalId("alice")
BOB = PrincipalId("bob")
CAROL = PrincipalId("carol")
SERVER = PrincipalId("server")
OTHER_SERVER = PrincipalId("other")
STAFF = GroupId(server=PrincipalId("groups"), group="staff")
ADMINS = GroupId(server=PrincipalId("groups"), group="admins")


def ctx(**kwargs) -> RequestContext:
    defaults = dict(server=SERVER, operation="read", time=100.0)
    defaults.update(kwargs)
    return RequestContext(**defaults)


class TestGrantee:
    """§7.1: named delegates, k-of-n."""

    def test_named_exerciser_passes(self):
        r = Grantee(principals=(BOB,))
        r.check(ctx(exercisers=frozenset({BOB})))

    def test_unnamed_exerciser_fails(self):
        r = Grantee(principals=(BOB,))
        with pytest.raises(RestrictionViolation):
            r.check(ctx(exercisers=frozenset({CAROL})))

    def test_anonymous_fails(self):
        """Possession alone never satisfies a grantee restriction."""
        r = Grantee(principals=(BOB,))
        with pytest.raises(RestrictionViolation):
            r.check(ctx(exercisers=frozenset()))

    def test_k_of_n_concurrence(self):
        """§3.5: separation of privilege — two principals must concur."""
        r = Grantee(principals=(ALICE, BOB, CAROL), required=2)
        r.check(ctx(exercisers=frozenset({ALICE, BOB})))
        with pytest.raises(RestrictionViolation):
            r.check(ctx(exercisers=frozenset({ALICE})))

    def test_empty_list_rejected(self):
        with pytest.raises(RestrictionError):
            Grantee(principals=())

    def test_required_out_of_range(self):
        with pytest.raises(RestrictionError):
            Grantee(principals=(ALICE,), required=2)
        with pytest.raises(RestrictionError):
            Grantee(principals=(ALICE,), required=0)

    def test_wire_round_trip(self):
        r = Grantee(principals=(ALICE, BOB), required=2)
        assert restriction_from_wire(r.to_wire()) == r


class TestForUseByGroup:
    """§7.2: group assertions required, k-of-n."""

    def test_asserted_group_passes(self):
        r = ForUseByGroup(groups=(STAFF,))
        r.check(ctx(supporting_groups=frozenset({STAFF})))

    def test_missing_assertion_fails(self):
        r = ForUseByGroup(groups=(STAFF,))
        with pytest.raises(RestrictionViolation):
            r.check(ctx(supporting_groups=frozenset()))

    def test_disjoint_groups_separation_of_privilege(self):
        """§7.2: membership in multiple disjoint groups required."""
        r = ForUseByGroup(groups=(STAFF, ADMINS), required=2)
        r.check(ctx(supporting_groups=frozenset({STAFF, ADMINS})))
        with pytest.raises(RestrictionViolation):
            r.check(ctx(supporting_groups=frozenset({STAFF})))

    def test_wire_round_trip(self):
        r = ForUseByGroup(groups=(STAFF, ADMINS), required=1)
        assert restriction_from_wire(r.to_wire()) == r


class TestIssuedFor:
    """§7.3: servers authorized to accept the proxy."""

    def test_named_server_passes(self):
        IssuedFor(servers=(SERVER,)).check(ctx())

    def test_other_server_fails(self):
        r = IssuedFor(servers=(OTHER_SERVER,))
        with pytest.raises(RestrictionViolation):
            r.check(ctx())

    def test_multiple_servers(self):
        r = IssuedFor(servers=(OTHER_SERVER, SERVER))
        r.check(ctx())

    def test_wire_round_trip(self):
        r = IssuedFor(servers=(SERVER, OTHER_SERVER))
        assert restriction_from_wire(r.to_wire()) == r


class TestQuota:
    """§7.4: per-currency limits."""

    def test_within_limit(self):
        Quota(currency="pages", limit=10).check(
            ctx(amounts={"pages": 10})
        )

    def test_over_limit(self):
        with pytest.raises(RestrictionViolation):
            Quota(currency="pages", limit=10).check(
                ctx(amounts={"pages": 11})
            )

    def test_other_currency_unconstrained(self):
        Quota(currency="pages", limit=1).check(
            ctx(amounts={"dollars": 1000})
        )

    def test_zero_request_always_passes(self):
        Quota(currency="pages", limit=0).check(ctx())

    def test_negative_limit_rejected(self):
        with pytest.raises(RestrictionError):
            Quota(currency="pages", limit=-1)

    def test_wire_round_trip(self):
        r = Quota(currency="cpu", limit=500)
        assert restriction_from_wire(r.to_wire()) == r


class TestAuthorized:
    """§7.5: the capability restriction."""

    def test_exact_match(self):
        r = Authorized(
            entries=(AuthorizedEntry("file:/a", ("read",)),)
        )
        r.check(ctx(operation="read", target="file:/a"))

    def test_glob_target(self):
        r = Authorized(entries=(AuthorizedEntry("file:/a/*", ("read",)),))
        r.check(ctx(operation="read", target="file:/a/deep"))

    def test_operation_not_listed(self):
        r = Authorized(entries=(AuthorizedEntry("file:/a", ("read",)),))
        with pytest.raises(RestrictionViolation):
            r.check(ctx(operation="write", target="file:/a"))

    def test_object_not_listed(self):
        r = Authorized(entries=(AuthorizedEntry("file:/a", ("read",)),))
        with pytest.raises(RestrictionViolation):
            r.check(ctx(operation="read", target="file:/b"))

    def test_none_operations_means_all(self):
        r = Authorized(entries=(AuthorizedEntry("obj", None),))
        r.check(ctx(operation="anything", target="obj"))

    def test_no_target_fails(self):
        r = Authorized(entries=(AuthorizedEntry("*", None),))
        with pytest.raises(RestrictionViolation):
            r.check(ctx(operation="read", target=None))

    def test_any_entry_suffices(self):
        r = Authorized(
            entries=(
                AuthorizedEntry("a", ("read",)),
                AuthorizedEntry("b", ("write",)),
            )
        )
        r.check(ctx(operation="write", target="b"))

    def test_wire_round_trip(self):
        r = Authorized(
            entries=(
                AuthorizedEntry("a", ("read", "write")),
                AuthorizedEntry("b/*", None),
            )
        )
        assert restriction_from_wire(r.to_wire()) == r


class TestGroupMembership:
    """§7.6: groups assertable via a group-server proxy."""

    def test_listed_group_assertable(self):
        r = GroupMembership(groups=(STAFF,))
        r.check(ctx(asserting_group=STAFF))

    def test_unlisted_group_not_assertable(self):
        r = GroupMembership(groups=(STAFF,))
        with pytest.raises(RestrictionViolation):
            r.check(ctx(asserting_group=ADMINS))

    def test_non_assertion_requests_unaffected(self):
        GroupMembership(groups=(STAFF,)).check(ctx())

    def test_wire_round_trip(self):
        r = GroupMembership(groups=(STAFF, ADMINS))
        assert restriction_from_wire(r.to_wire()) == r


class TestAcceptOnce:
    """§7.7: single-use identifiers (check numbers)."""

    def _registry(self):
        return AcceptOnceRegistry(SimulatedClock(100.0))

    def test_first_use_passes(self):
        registry = self._registry()
        AcceptOnce(identifier="ck-1").check(
            ctx(grantor=ALICE, replay_registry=registry, link_expires_at=200.0)
        )

    def test_second_use_rejected(self):
        registry = self._registry()
        r = AcceptOnce(identifier="ck-1")
        context = ctx(
            grantor=ALICE, replay_registry=registry, link_expires_at=200.0
        )
        r.check(context)
        with pytest.raises(ReplayError):
            r.check(context)

    def test_same_identifier_different_grantor_ok(self):
        """§7.7: scope is (grantor, identifier)."""
        registry = self._registry()
        r = AcceptOnce(identifier="ck-1")
        r.check(ctx(grantor=ALICE, replay_registry=registry, link_expires_at=200.0))
        r.check(ctx(grantor=BOB, replay_registry=registry, link_expires_at=200.0))

    def test_no_registry_fails_closed(self):
        with pytest.raises(RestrictionViolation):
            AcceptOnce(identifier="x").check(ctx(grantor=ALICE))

    def test_empty_identifier_rejected(self):
        with pytest.raises(RestrictionError):
            AcceptOnce(identifier="")

    def test_wire_round_trip(self):
        r = AcceptOnce(identifier="ck-42")
        assert restriction_from_wire(r.to_wire()) == r


class TestLimitRestriction:
    """§7.8: server-scoped nested restrictions."""

    def test_enforced_at_named_server(self):
        r = LimitRestriction(
            servers=(SERVER,),
            restrictions=(Quota(currency="pages", limit=1),),
        )
        with pytest.raises(RestrictionViolation):
            r.check(ctx(amounts={"pages": 5}))

    def test_ignored_elsewhere(self):
        r = LimitRestriction(
            servers=(OTHER_SERVER,),
            restrictions=(Quota(currency="pages", limit=1),),
        )
        r.check(ctx(amounts={"pages": 5}))

    def test_nested_limit_restrictions(self):
        inner = LimitRestriction(
            servers=(SERVER,),
            restrictions=(Quota(currency="pages", limit=1),),
        )
        outer = LimitRestriction(servers=(SERVER,), restrictions=(inner,))
        with pytest.raises(RestrictionViolation):
            outer.check(ctx(amounts={"pages": 5}))

    def test_wire_round_trip(self):
        r = LimitRestriction(
            servers=(SERVER,),
            restrictions=(
                Quota(currency="x", limit=3),
                IssuedFor(servers=(SERVER,)),
            ),
        )
        assert restriction_from_wire(r.to_wire()) == r


class TestExpiration:
    def test_before_deadline(self):
        Expiration(not_after=150.0).check(ctx(time=100.0))

    def test_after_deadline(self):
        with pytest.raises(RestrictionViolation):
            Expiration(not_after=50.0).check(ctx(time=100.0))

    def test_wire_round_trip(self):
        r = Expiration(not_after=123.0)
        assert restriction_from_wire(r.to_wire()) == r


class TestPropagation:
    """§7.9: copying restrictions into issued proxies."""

    def test_everything_copied_by_default(self):
        incoming = (
            Quota(currency="x", limit=1),
            LimitRestriction(
                servers=(OTHER_SERVER,),
                restrictions=(Quota(currency="y", limit=2),),
            ),
        )
        assert propagate_restrictions(incoming) == incoming

    def test_unreachable_limit_restriction_dropped(self):
        limited = LimitRestriction(
            servers=(OTHER_SERVER,),
            restrictions=(Quota(currency="y", limit=2),),
        )
        out = propagate_restrictions(
            (Quota(currency="x", limit=1), limited),
            reachable_servers=(SERVER,),
        )
        assert out == (Quota(currency="x", limit=1),)

    def test_reachable_limit_restriction_kept(self):
        limited = LimitRestriction(
            servers=(SERVER, OTHER_SERVER),
            restrictions=(Quota(currency="y", limit=2),),
        )
        out = propagate_restrictions(
            (limited,), reachable_servers=(SERVER,)
        )
        assert out == (limited,)


class TestFramework:
    def test_is_bearer(self):
        assert is_bearer((Quota(currency="x", limit=1),))
        assert not is_bearer((Grantee(principals=(ALICE,)),))
        assert is_bearer(())

    def test_check_all_additive(self):
        """All restrictions must pass — adding one can only narrow."""
        passing = (
            IssuedFor(servers=(SERVER,)),
            Quota(currency="x", limit=10),
        )
        check_all(passing, ctx(amounts={"x": 5}))
        with_extra = passing + (Quota(currency="x", limit=1),)
        with pytest.raises(RestrictionViolation):
            check_all(with_extra, ctx(amounts={"x": 5}))

    def test_list_wire_round_trip(self):
        restrictions = (
            Grantee(principals=(ALICE,)),
            Quota(currency="c", limit=9),
        )
        wires = restrictions_to_wire(restrictions)
        assert restrictions_from_wire(wires) == restrictions

    def test_unknown_type_rejected(self):
        with pytest.raises(RestrictionError):
            restriction_from_wire({"type": "no-such-restriction"})

    def test_missing_type_rejected(self):
        with pytest.raises(RestrictionError):
            restriction_from_wire({"oops": 1})

    def test_custom_restriction_registrable(self):
        """The vocabulary is open-ended, like V5 authorization-data (§6.2)."""

        @register_restriction
        class BusinessHours(Restriction):
            TYPE = "x-business-hours"

            def check(self, context):
                if not 9 * 3600 <= context.time % 86400 < 17 * 3600:
                    raise RestrictionViolation(self.TYPE, "outside hours")

            def to_wire(self):
                return {"type": self.TYPE}

            @classmethod
            def from_wire(cls, wire):
                return cls()

        decoded = restriction_from_wire({"type": "x-business-hours"})
        decoded.check(ctx(time=10 * 3600.0))
        with pytest.raises(RestrictionViolation):
            decoded.check(ctx(time=3 * 3600.0))

    def test_duplicate_type_registration_rejected(self):
        with pytest.raises(RestrictionError):

            @register_restriction
            class Fake(Restriction):
                TYPE = "quota"  # collides

                def check(self, context):
                    pass

                def to_wire(self):
                    return {"type": self.TYPE}

                @classmethod
                def from_wire(cls, wire):
                    return cls()

    def test_restrictions_hashable_for_dedup(self):
        a = Quota(currency="x", limit=1)
        b = Quota(currency="x", limit=1)
        assert len({a, b}) == 1
