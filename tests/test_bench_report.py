"""The benchmark report table must survive empty and ragged rows.

``benchmarks/`` is not a package, so the conftest is loaded by path.
"""

import importlib.util
import pathlib

_CONFTEST = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "conftest.py"
)


def _load_report():
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", _CONFTEST
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.report


def test_report_with_no_rows(capsys):
    report = _load_report()
    report("empty", [], ("col_a", "col_b"))
    out = capsys.readouterr().out
    assert "--- empty ---" in out
    assert "col_a" in out and "col_b" in out


def test_report_pads_short_rows(capsys):
    report = _load_report()
    report(
        "ragged",
        [("only-one",), ("x", "y", "z")],
        ("first", "second", "third"),
    )
    out = capsys.readouterr().out
    lines = [l for l in out.splitlines() if l.strip()]
    header = next(l for l in lines if "first" in l)
    # Every data row renders the full column count (same separator count
    # as the header) instead of crashing or dropping trailing columns.
    for line in lines[lines.index(header) + 2:]:
        assert line.count("|") == header.count("|")
    assert "only-one" in out


def test_report_truncates_long_rows(capsys):
    report = _load_report()
    report("long", [("a", "b", "c", "overflow")], ("one", "two", "three"))
    out = capsys.readouterr().out
    assert "overflow" not in out


def test_report_stringifies_values(capsys):
    report = _load_report()
    report("types", [(1, 2.5, None)], ("int", "float", "none"))
    out = capsys.readouterr().out
    assert "2.5" in out and "None" in out
