"""The metrics registry and its Prometheus text exposition."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    prometheus_name,
)
from repro.obs.export import prometheus_text


class TestCounter:
    def test_inc_and_value_per_label_set(self):
        c = Counter("requests_total")
        c.inc(op="read")
        c.inc(2, op="read")
        c.inc(op="write")
        assert c.value(op="read") == 3
        assert c.value(op="write") == 1
        assert c.value(op="delete") == 0
        assert c.total() == 4

    def test_label_order_is_irrelevant(self):
        c = Counter("c")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1

    def test_counters_only_go_up(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_overwrites_add_accumulates(self):
        g = Gauge("sessions")
        g.set(5, server="s")
        g.set(3, server="s")
        assert g.value(server="s") == 3
        g.add(2, server="s")
        g.add(-4, server="s")
        assert g.value(server="s") == 1


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        h = Histogram("latency", buckets=(0.01, 0.1, 1.0))
        h.observe(0.005)
        h.observe(0.05)
        h.observe(5.0)  # beyond the last bound: only +Inf
        ((_, series),) = h.series()
        # le semantics: each stored count includes everything smaller.
        assert series.bucket_counts == [1, 2, 2]
        assert series.count == 3
        assert series.sum == pytest.approx(5.055)

    def test_per_label_series_are_independent(self):
        h = Histogram("latency", buckets=(1.0,))
        h.observe(0.5, scheme="hmac")
        h.observe(0.5, scheme="rsa")
        h.observe(0.5, scheme="rsa")
        assert h.count(scheme="hmac") == 1
        assert h.count(scheme="rsa") == 2
        assert h.total_count() == 3

    def test_buckets_must_be_sorted(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_register_on_first_use_then_refetch(self):
        registry = MetricsRegistry()
        a = registry.counter("x", help="first")
        b = registry.counter("x", help="ignored")
        assert a is b
        assert a.help == "first"

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_default_histogram_buckets(self):
        registry = MetricsRegistry()
        assert registry.histogram("h").buckets == LATENCY_BUCKETS


class TestPrometheusText:
    def test_counter_exposition(self):
        registry = MetricsRegistry()
        registry.counter("msgs_total", help="Messages.").inc(
            3, msg_type="request"
        )
        text = prometheus_text(registry)
        assert "# HELP msgs_total Messages." in text
        assert "# TYPE msgs_total counter" in text
        assert 'msgs_total{msg_type="request"} 3' in text

    def test_histogram_exposition_has_buckets_sum_count(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05, op="verify")
        h.observe(0.5, op="verify")
        text = prometheus_text(registry)
        assert 'lat_bucket{op="verify",le="0.1"} 1' in text
        assert 'lat_bucket{op="verify",le="1"} 2' in text
        assert 'lat_bucket{op="verify",le="+Inf"} 2' in text
        assert 'lat_sum{op="verify"} 0.55' in text
        assert 'lat_count{op="verify"} 2' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(who='evil"name\\with\nnewline')
        text = prometheus_text(registry)
        assert 'who="evil\\"name\\\\with\\nnewline"' in text

    def test_families_sorted_and_unlabelled_series(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.gauge("alpha").set(7)
        text = prometheus_text(registry)
        assert text.index("alpha") < text.index("zeta")
        assert "\nalpha 7\n" in text
        assert "\nzeta 1\n" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestExpositionConformance:
    """Invariants the Prometheus/OpenMetrics formats actually require."""

    def test_prometheus_name_sanitizes_dots_and_strays(self):
        assert prometheus_name("vcache.sig.hit") == "vcache_sig_hit"
        assert prometheus_name("weird-name with spaces") == (
            "weird_name_with_spaces"
        )
        assert prometheus_name("2fast") == "_2fast"

    def test_prometheus_name_is_idempotent_on_legal_names(self):
        for name in ("msgs_total", "a:b:c", "_leading", "x9"):
            assert prometheus_name(name) == name
            assert prometheus_name(prometheus_name(name)) == (
                prometheus_name(name)
            )

    def test_every_exposed_sample_name_is_legal(self):
        import re

        registry = MetricsRegistry()
        registry.counter("vcache.sig.hit").inc()
        registry.gauge("9lives").set(1)
        registry.histogram("net.latency", buckets=(0.1,)).observe(0.05)
        legal = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
        for line in prometheus_text(registry).splitlines():
            if not line or line.startswith("#"):
                continue
            sample = line.split("{")[0].split(" ")[0]
            assert legal.match(sample), line

    def test_bucket_counts_are_cumulative_and_end_at_count(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(0.001, 0.01, 0.1, 1.0))
        for value in (0.0005, 0.005, 0.005, 0.05, 0.5, 5.0):
            h.observe(value)
        text = prometheus_text(registry)
        counts = []
        for line in text.splitlines():
            if line.startswith("lat_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert 'le="+Inf"} 6' in text
        assert "lat_count 6" in text
        assert "lat_sum 5.5605" in text

    def test_help_and_type_precede_samples_once_per_family(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", help="Latency.", buckets=(0.1,))
        h.observe(0.05, op="a")
        h.observe(0.05, op="b")
        text = prometheus_text(registry)
        assert text.count("# HELP lat Latency.") == 1
        assert text.count("# TYPE lat histogram") == 1
        assert text.index("# TYPE lat histogram") < text.index("lat_bucket")

    def test_exemplar_renders_on_the_native_bucket_only(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05, exemplar="a" * 32)
        text = prometheus_text(registry)
        assert (
            'lat_bucket{le="0.1"} 1 # {trace_id="' + "a" * 32 + '"} 0.05'
            in text
        )
        # The wider buckets count the observation but carry no exemplar.
        assert 'lat_bucket{le="1"} 1\n' in text
        assert 'lat_bucket{le="+Inf"} 1\n' in text

    def test_overflow_exemplar_lands_on_the_inf_bucket(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(0.1,))
        h.observe(7.0, exemplar="b" * 32)
        text = prometheus_text(registry)
        assert (
            'lat_bucket{le="+Inf"} 1 # {trace_id="' + "b" * 32 + '"} 7'
            in text
        )

    def test_no_exemplar_no_suffix(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(0.1,)).observe(0.05)
        text = prometheus_text(registry)
        assert "#" not in text.split("# TYPE lat histogram\n", 1)[1]

    def test_latest_exemplar_wins_per_bucket(self):
        h = Histogram("lat", buckets=(0.1,))
        h.observe(0.01, exemplar="a" * 32)
        h.observe(0.02, exemplar="c" * 32)
        ((_, series),) = h.series()
        assert series.exemplars[0] == ("c" * 32, 0.02)


class TestBatchExpositionConformance:
    """The batched-verification counters (``vcache.batch.*``) must expose
    through the same Prometheus text machinery as every other family."""

    @pytest.fixture(scope="class")
    def batch_text(self):
        from repro.obs import Telemetry
        from repro.obs.figures import run_figure

        # fig6 is the pure public-key figure: its Schnorr chains go
        # through the batched stage-1/2 path.
        telemetry = Telemetry(capture_crypto=True)
        try:
            run_figure("fig6", telemetry)
        finally:
            telemetry.release_crypto()
        return telemetry, prometheus_text(telemetry.metrics)

    def test_dotted_batch_names_are_sanitized(self, batch_text):
        _, text = batch_text
        assert "vcache_batch_batches" in text
        assert "vcache_batch_signatures" in text
        assert "vcache.batch" not in text

    def test_batch_counters_are_consistent(self, batch_text):
        telemetry, _ = batch_text
        counters = telemetry.metrics
        batches = counters.counter("vcache.batch.batches").total()
        signatures = counters.counter("vcache.batch.signatures").total()
        bisections = counters.counter(
            "vcache.batch.fallback_bisections"
        ).total()
        assert batches > 0
        # Every batch covers at least one signature, and an all-valid
        # figure replay never needs the bisection fallback.
        assert signatures >= batches
        assert bisections == 0

    def test_every_batch_sample_name_is_legal(self, batch_text):
        import re

        _, text = batch_text
        legal = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
        seen = 0
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            sample = line.split("{")[0].split(" ")[0]
            if sample.startswith("vcache_batch"):
                seen += 1
            assert legal.match(sample), line
        assert seen >= 2


class TestUsageExpositionConformance:
    """The usage meter's mirrored ``usage.*`` metrics must honor the same
    format invariants as every other family."""

    @pytest.fixture(scope="class")
    def usage_text(self):
        from repro.obs import Telemetry
        from repro.obs.figures import run_figure

        telemetry = Telemetry(capture_crypto=True, meter_usage=True)
        try:
            run_figure("fig5", telemetry)
        finally:
            telemetry.release_crypto()
        return telemetry, prometheus_text(telemetry.metrics)

    def test_dotted_usage_names_are_sanitized(self, usage_text):
        _, text = usage_text
        assert "usage_messages_total{" in text
        assert "usage_bytes_total{" in text
        assert "usage_request_seconds_bucket{" in text
        assert "usage.messages_total" not in text

    def test_every_usage_sample_name_is_legal(self, usage_text):
        import re

        _, text = usage_text
        legal = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
        seen = 0
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            sample = line.split("{")[0].split(" ")[0]
            if sample.startswith("usage_"):
                seen += 1
                assert legal.match(sample), line
        assert seen > 0

    def test_usage_histogram_buckets_are_cumulative(self, usage_text):
        _, text = usage_text
        per_series = {}
        for line in text.splitlines():
            if not line.startswith("usage_request_seconds_bucket"):
                continue
            labels = line.split("{", 1)[1].split("}", 1)[0]
            principal = [
                pair for pair in labels.split(",")
                if pair.startswith("principal=")
            ][0]
            count = int(line.split("}", 1)[1].strip().split(" ")[0])
            per_series.setdefault(principal, []).append(count)
        assert per_series
        for principal, counts in per_series.items():
            assert counts == sorted(counts), (
                f"{principal}: bucket counts must be cumulative"
            )

    def test_usage_exemplars_carry_trace_ids(self, usage_text):
        import re

        _, text = usage_text
        exemplars = re.findall(
            r'usage_request_seconds_bucket\{[^}]*\} \d+ '
            r'# \{trace_id="([0-9a-f]{32})"\}',
            text,
        )
        assert exemplars, "metered wire sends must emit bucket exemplars"

    def test_mirrored_counters_agree_with_the_meter(self, usage_text):
        telemetry, _ = usage_text
        meter = telemetry.usage
        assert (
            telemetry.metrics.counter("usage.messages_total").total()
            == meter.total_messages()
        )
        assert (
            telemetry.metrics.counter("usage.bytes_total").total()
            == meter.total_bytes()
        )
