"""The §5 comparator baselines: behaviour and their characteristic costs."""

import pytest

from repro.baselines import (
    AmoebaBank,
    AmoebaClient,
    AmoebaServer,
    DssaPrincipal,
    DssaVerifier,
    GrapevineEndServer,
    GrapevineRegistry,
    KargerEndServer,
    KargerPasswordServer,
    PlainCapabilityServer,
    SollinsAuthServer,
    SollinsEndServer,
    create_passport,
    extend_passport,
)
from repro.clock import SimulatedClock
from repro.core.restrictions import Authorized, AuthorizedEntry, Quota
from repro.crypto.keys import SymmetricKey
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    AccountingError,
    AuthorizationDenied,
    InsufficientFundsError,
)
from repro.net import Eavesdropper, Network
from repro.net.message import raise_if_error

START = 1_000_000.0
ALICE = PrincipalId("alice")
BOB = PrincipalId("bob")


@pytest.fixture
def net(rng):
    clock = SimulatedClock(START)
    return clock, Network(clock, rng=rng)


class TestSollins:
    @pytest.fixture
    def world(self, net):
        clock, network = net
        auth = SollinsAuthServer(PrincipalId("sollins-auth"), network, clock)
        end = SollinsEndServer(
            PrincipalId("sollins-end"), network, clock, auth.principal
        )
        end.register_operation(
            "read", lambda originator, payload: {"by": originator.to_wire()}
        )
        return clock, network, auth, end

    def test_passport_chain_verifies(self, world, rng):
        clock, network, auth, end = world
        key_a = auth.register(ALICE)
        key_b = auth.register(BOB)
        passport = create_passport(ALICE, key_a, ())
        passport = extend_passport(
            passport, BOB, key_b, (Quota(currency="c", limit=5),)
        )
        reply = raise_if_error(
            network.send(
                BOB, end.principal, "request",
                {"passport": passport.to_wire(), "operation": "read"},
            )
        )
        assert reply["by"] == ALICE.to_wire()

    def test_verification_is_online(self, world, rng):
        """The defining §3.4 difference: auth-server contact per request."""
        clock, network, auth, end = world
        key_a = auth.register(ALICE)
        passport = create_passport(ALICE, key_a, ())
        before = network.metrics.snapshot()
        network.send(
            ALICE, end.principal, "request",
            {"passport": passport.to_wire(), "operation": "read"},
        )
        delta = network.metrics.delta_since(before)
        assert delta.messages_to(auth.principal) == 1

    def test_forged_link_rejected(self, world, rng):
        clock, network, auth, end = world
        key_a = auth.register(ALICE)
        auth.register(BOB)
        wrong_key = SymmetricKey.generate(rng=rng)
        passport = create_passport(ALICE, key_a, ())
        forged = extend_passport(passport, BOB, wrong_key, ())
        with pytest.raises(AuthorizationDenied):
            raise_if_error(
                network.send(
                    BOB, end.principal, "request",
                    {"passport": forged.to_wire(), "operation": "read"},
                )
            )

    def test_restrictions_enforced(self, world, rng):
        from repro.errors import RestrictionViolation

        clock, network, auth, end = world
        key_a = auth.register(ALICE)
        passport = create_passport(
            ALICE, key_a,
            (Authorized(entries=(AuthorizedEntry("x", ("read",)),)),),
        )
        with pytest.raises(RestrictionViolation):
            raise_if_error(
                network.send(
                    ALICE, end.principal, "request",
                    {
                        "passport": passport.to_wire(),
                        "operation": "read",
                        "target": "y",
                    },
                )
            )


class TestKarger:
    @pytest.fixture
    def world(self, net, rng):
        clock, network = net
        pw = KargerPasswordServer(
            PrincipalId("karger-pw"), network, clock, rng=rng
        )
        end = KargerEndServer(
            PrincipalId("karger-end"), network, clock, pw.principal
        )
        end.register_operation(
            "read", lambda user, payload: {"as": user.to_wire()}
        )
        return clock, network, pw, end

    def test_forwarded_password_grants_full_identity(self, world):
        clock, network, pw, end = world
        login = network.send(ALICE, pw.principal, "login", {})
        password = login["password"]
        # Bob uses alice's forwarded password: acts fully as alice.
        reply = raise_if_error(
            network.send(
                BOB, end.principal, "request",
                {"password": password, "operation": "read"},
            )
        )
        assert reply["as"] == ALICE.to_wire()

    def test_unknown_password_rejected(self, world):
        clock, network, pw, end = world
        with pytest.raises(AuthorizationDenied):
            raise_if_error(
                network.send(
                    BOB, end.principal, "request",
                    {"password": "bogus", "operation": "read"},
                )
            )

    def test_logout_revokes(self, world):
        clock, network, pw, end = world
        password = network.send(ALICE, pw.principal, "login", {})["password"]
        network.send(ALICE, pw.principal, "logout", {})
        with pytest.raises(AuthorizationDenied):
            raise_if_error(
                network.send(
                    BOB, end.principal, "request",
                    {"password": password, "operation": "read"},
                )
            )

    def test_eavesdropper_steals_password(self, world):
        """The flaw: the password itself crosses the network."""
        clock, network, pw, end = world
        mallory = Eavesdropper()
        mallory.attach(network)
        password = network.send(ALICE, pw.principal, "login", {})["password"]
        network.send(
            ALICE, end.principal, "request",
            {"password": password, "operation": "read"},
        )
        captured = mallory.last_of_type("request")
        stolen = captured.payload["password"]
        reply = raise_if_error(
            network.send(
                mallory.principal, end.principal, "request",
                {"password": stolen, "operation": "read"},
            )
        )
        assert reply["as"] == ALICE.to_wire()  # full impersonation


class TestDssa:
    def test_role_delegation_verifies(self, rng):
        user = DssaPrincipal(ALICE, rng=rng)
        verifier = DssaVerifier()
        verifier.register(ALICE, user.public_key)
        role = user.create_role((("read", "obj/1"),), expires_at=START + 100)
        cert = user.delegate(role, BOB, expires_at=START + 100)
        assert verifier.verify(cert, BOB, "read", "obj/1", now=START) == ALICE

    def test_rights_outside_role_rejected(self, rng):
        user = DssaPrincipal(ALICE, rng=rng)
        verifier = DssaVerifier()
        verifier.register(ALICE, user.public_key)
        role = user.create_role((("read", "obj/1"),), expires_at=START + 100)
        cert = user.delegate(role, BOB, expires_at=START + 100)
        with pytest.raises(AuthorizationDenied):
            verifier.verify(cert, BOB, "read", "obj/2", now=START)

    def test_wrong_delegate_rejected(self, rng):
        user = DssaPrincipal(ALICE, rng=rng)
        verifier = DssaVerifier()
        verifier.register(ALICE, user.public_key)
        role = user.create_role((("read", "obj/1"),), expires_at=START + 100)
        cert = user.delegate(role, BOB, expires_at=START + 100)
        with pytest.raises(AuthorizationDenied):
            verifier.verify(
                cert, PrincipalId("carol"), "read", "obj/1", now=START
            )

    def test_expired_certificates_rejected(self, rng):
        user = DssaPrincipal(ALICE, rng=rng)
        verifier = DssaVerifier()
        verifier.register(ALICE, user.public_key)
        role = user.create_role((("read", "obj/1"),), expires_at=START + 1)
        cert = user.delegate(role, BOB, expires_at=START + 1)
        with pytest.raises(AuthorizationDenied):
            verifier.verify(cert, BOB, "read", "obj/1", now=START + 2)

    def test_each_rights_subset_needs_new_role(self, rng):
        """The §5 critique, structurally: distinct subsets, distinct roles."""
        user = DssaPrincipal(ALICE, rng=rng)
        r1 = user.create_role((("read", "obj/1"),), expires_at=START + 100)
        r2 = user.create_role((("read", "obj/2"),), expires_at=START + 100)
        assert (
            r1.certificate.role_public != r2.certificate.role_public
        )
        assert len(user.roles) == 2


class TestAmoeba:
    @pytest.fixture
    def world(self, net):
        clock, network = net
        bank = AmoebaBank(PrincipalId("amoeba-bank"), network, clock)
        bank.create_account("alice", ALICE, {"credits": 100})
        server = AmoebaServer(
            PrincipalId("amoeba-srv"), network, clock,
            bank.principal, "srv-account", "credits", price=2,
        )
        bank.create_account("srv-account", server.principal)
        client = AmoebaClient(ALICE, network, bank.principal, "alice")
        return clock, network, bank, server, client

    def test_prepay_then_serve(self, world):
        clock, network, bank, server, client = world
        client.prepay(server, "credits", 10)
        for _ in range(5):
            assert client.use(server)["served"]
        assert bank.balance_of("alice")["credits"] == 90

    def test_exhausted_prepayment_rejected(self, world):
        clock, network, bank, server, client = world
        client.prepay(server, "credits", 2)
        client.use(server)
        with pytest.raises(InsufficientFundsError):
            client.use(server)

    def test_service_before_prepay_rejected(self, world):
        clock, network, bank, server, client = world
        with pytest.raises(InsufficientFundsError):
            client.use(server)

    def test_false_announcement_rejected(self, world):
        clock, network, bank, server, client = world
        with pytest.raises(AccountingError):
            raise_if_error(
                network.send(
                    ALICE, server.principal, "announce-prepayment",
                    {"amount": 50},
                )
            )

    def test_only_owner_transfers(self, world):
        clock, network, bank, server, client = world
        with pytest.raises(AccountingError):
            raise_if_error(
                network.send(
                    BOB, bank.principal, "transfer",
                    {
                        "from": "alice", "to": "srv-account",
                        "currency": "credits", "amount": 1,
                    },
                )
            )


class TestGrapevine:
    @pytest.fixture
    def world(self, net):
        clock, network = net
        registry = GrapevineRegistry(PrincipalId("registry"), network, clock)
        registry.create_group("staff", (ALICE,))
        end = GrapevineEndServer(
            PrincipalId("gv-end"), network, clock, registry.principal, "staff"
        )
        end.register_operation("read", lambda who, payload: {"ok": True})
        return clock, network, registry, end

    def test_member_allowed(self, world):
        clock, network, registry, end = world
        reply = raise_if_error(
            network.send(ALICE, end.principal, "request", {"operation": "read"})
        )
        assert reply["ok"]

    def test_non_member_denied(self, world):
        clock, network, registry, end = world
        with pytest.raises(AuthorizationDenied):
            raise_if_error(
                network.send(BOB, end.principal, "request", {"operation": "read"})
            )

    def test_every_request_hits_registry(self, world):
        clock, network, registry, end = world
        before = network.metrics.snapshot()
        for _ in range(5):
            network.send(ALICE, end.principal, "request", {"operation": "read"})
        delta = network.metrics.delta_since(before)
        assert delta.messages_to(registry.principal) == 5

    def test_revocation_immediate(self, world):
        clock, network, registry, end = world
        network.send(ALICE, end.principal, "request", {"operation": "read"})
        registry.remove_member("staff", ALICE)
        with pytest.raises(AuthorizationDenied):
            raise_if_error(
                network.send(ALICE, end.principal, "request", {"operation": "read"})
            )


class TestPlainCapability:
    @pytest.fixture
    def world(self, net, rng):
        clock, network = net
        server = PlainCapabilityServer(
            PrincipalId("cap-srv"), network, clock, rng=rng
        )
        server.add_owner(ALICE)
        server.register_operation("read", lambda who, payload: {"data": b"D"})
        return clock, network, server

    def test_issue_and_use(self, world):
        clock, network, server = world
        token = network.send(
            ALICE, server.principal, "issue",
            {"operations": ["read"], "target": "f", "expires_at": None},
        )["token"]
        reply = raise_if_error(
            network.send(
                BOB, server.principal, "request",
                {"token": token, "operation": "read", "target": "f"},
            )
        )
        assert reply["data"] == b"D"

    def test_eavesdropper_steals_capability(self, world):
        """§3.1's attack succeeds against the traditional design."""
        clock, network, server = world
        mallory = Eavesdropper()
        token = network.send(
            ALICE, server.principal, "issue",
            {"operations": ["read"], "target": "f", "expires_at": None},
        )["token"]
        mallory.attach(network)
        network.send(
            BOB, server.principal, "request",
            {"token": token, "operation": "read", "target": "f"},
        )
        stolen = mallory.last_of_type("request").payload["token"]
        reply = raise_if_error(
            network.send(
                mallory.principal, server.principal, "request",
                {"token": stolen, "operation": "read", "target": "f"},
            )
        )
        assert reply["data"] == b"D"  # the theft works here

    def test_scope_enforced(self, world):
        clock, network, server = world
        token = network.send(
            ALICE, server.principal, "issue",
            {"operations": ["read"], "target": "f", "expires_at": None},
        )["token"]
        with pytest.raises(AuthorizationDenied):
            raise_if_error(
                network.send(
                    BOB, server.principal, "request",
                    {"token": token, "operation": "write", "target": "f"},
                )
            )

    def test_expiry(self, world):
        clock, network, server = world
        token = network.send(
            ALICE, server.principal, "issue",
            {
                "operations": ["read"], "target": "f",
                "expires_at": clock.now() + 1,
            },
        )["token"]
        clock.advance(2)
        with pytest.raises(AuthorizationDenied):
            raise_if_error(
                network.send(
                    BOB, server.principal, "request",
                    {"token": token, "operation": "read", "target": "f"},
                )
            )

    def test_non_owner_cannot_issue(self, world):
        clock, network, server = world
        with pytest.raises(AuthorizationDenied):
            raise_if_error(
                network.send(
                    BOB, server.principal, "issue",
                    {"operations": ["read"], "target": "f", "expires_at": None},
                )
            )
