"""The Kerberos substrate: tickets, KDC exchanges, AP sessions (§6.2)."""

import pytest

from repro.clock import SimulatedClock
from repro.core.restrictions import Grantee, Quota
from repro.crypto.keys import SymmetricKey
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    AuthenticatorError,
    ReplayError,
    TicketError,
    UnknownPrincipalError,
)
from repro.kerberos import (
    ApAcceptor,
    Credentials,
    KerberosClient,
    KeyDistributionCenter,
    PrincipalDatabase,
    Ticket,
    TicketBody,
    make_ap_request,
    tgs_principal,
)
from repro.net.network import Network

START = 1_000_000.0


@pytest.fixture
def setup(rng):
    clock = SimulatedClock(START)
    network = Network(clock, rng=rng)
    kdc = KeyDistributionCenter(network, clock, rng=rng)
    return clock, network, kdc


def make_user(kdc, network, clock, name, rng):
    principal = PrincipalId(name)
    key = kdc.database.register(principal)
    return (
        principal,
        key,
        KerberosClient(principal, key, network, clock, rng=rng),
    )


class TestDatabase:
    def test_register_and_lookup(self):
        db = PrincipalDatabase()
        key = db.register(PrincipalId("x"))
        assert db.key_of(PrincipalId("x")) == key
        assert db.knows(PrincipalId("x"))

    def test_unknown_principal(self):
        db = PrincipalDatabase()
        with pytest.raises(UnknownPrincipalError):
            db.key_of(PrincipalId("ghost"))

    def test_wrong_realm_rejected(self):
        db = PrincipalDatabase(realm="A.ORG")
        with pytest.raises(UnknownPrincipalError):
            db.register(PrincipalId("x", "B.ORG"))

    def test_remove(self):
        db = PrincipalDatabase()
        db.register(PrincipalId("x"))
        db.remove(PrincipalId("x"))
        assert not db.knows(PrincipalId("x"))


class TestTickets:
    def test_seal_open_round_trip(self, rng):
        server_key = SymmetricKey.generate(rng=rng)
        body = TicketBody(
            client=PrincipalId("alice"),
            server=PrincipalId("server"),
            session_key=SymmetricKey.generate(rng=rng),
            auth_time=1.0,
            expires_at=100.0,
            authorization_data=(Quota(currency="c", limit=5),),
        )
        ticket = Ticket.seal(body, server_key, rng=rng)
        opened = ticket.open(server_key)
        assert opened == body

    def test_wrong_key_rejected(self, rng):
        server_key = SymmetricKey.generate(rng=rng)
        body = TicketBody(
            client=PrincipalId("alice"),
            server=PrincipalId("server"),
            session_key=SymmetricKey.generate(rng=rng),
            auth_time=1.0,
            expires_at=100.0,
        )
        ticket = Ticket.seal(body, server_key, rng=rng)
        with pytest.raises(TicketError):
            ticket.open(SymmetricKey.generate(rng=rng))

    def test_session_key_confidential(self, rng):
        """§6.2: the session key is never sent in the clear."""
        server_key = SymmetricKey.generate(rng=rng)
        session = SymmetricKey.generate(rng=rng)
        body = TicketBody(
            client=PrincipalId("alice"),
            server=PrincipalId("server"),
            session_key=session,
            auth_time=1.0,
            expires_at=100.0,
        )
        ticket = Ticket.seal(body, server_key, rng=rng)
        assert session.secret not in ticket.blob


class TestAsExchange:
    def test_login_yields_tgt(self, setup, rng):
        clock, network, kdc = setup
        _, _, client = make_user(kdc, network, clock, "alice", rng)
        tgt = client.login()
        assert tgt.server == tgs_principal()
        assert tgt.expires_at > clock.now()

    def test_tgt_restrictable_at_login(self, setup, rng):
        """§6.3: initial authentication is itself a proxy grant."""
        clock, network, kdc = setup
        _, _, client = make_user(kdc, network, clock, "alice", rng)
        client.login(authorization_data=(Quota(currency="c", limit=1),))
        tgt_ticket = client.tgt.ticket
        body = tgt_ticket.open(kdc.database.key_of(tgs_principal()))
        assert body.authorization_data == (Quota(currency="c", limit=1),)

    def test_unknown_client_rejected(self, setup, rng):
        clock, network, kdc = setup
        ghost = PrincipalId("ghost")
        client = KerberosClient(
            ghost, SymmetricKey.generate(rng=rng), network, clock, rng=rng
        )
        with pytest.raises(UnknownPrincipalError):
            client.login()


class TestTgsExchange:
    def test_service_ticket(self, setup, rng):
        clock, network, kdc = setup
        _, _, client = make_user(kdc, network, clock, "alice", rng)
        server = PrincipalId("fileserver")
        server_key = kdc.database.register(server)
        creds = client.get_ticket(server)
        body = creds.ticket.open(server_key)
        assert body.client == client.principal
        assert body.session_key == creds.session_key

    def test_restrictions_added_never_removed(self, setup, rng):
        """§6.2: authorization-data accumulates through the TGS."""
        clock, network, kdc = setup
        _, _, client = make_user(kdc, network, clock, "alice", rng)
        server = PrincipalId("fileserver")
        server_key = kdc.database.register(server)
        client.login(authorization_data=(Quota(currency="a", limit=1),))
        creds = client.get_ticket(
            server,
            additional_restrictions=(Quota(currency="b", limit=2),),
        )
        body = creds.ticket.open(server_key)
        currencies = [r.to_wire()["currency"] for r in body.authorization_data]
        assert currencies == ["a", "b"]

    def test_ticket_caching(self, setup, rng):
        clock, network, kdc = setup
        _, _, client = make_user(kdc, network, clock, "alice", rng)
        server = PrincipalId("s")
        kdc.database.register(server)
        before = network.metrics.snapshot()
        client.get_ticket(server)
        client.get_ticket(server)  # cached, no new KDC traffic
        delta = network.metrics.delta_since(before)
        # login (2) + tgs (2) for the first call only.
        assert delta.messages == 4

    def test_ticket_lifetime_capped_by_tgt(self, setup, rng):
        clock, network, kdc = setup
        _, _, client = make_user(kdc, network, clock, "alice", rng)
        server = PrincipalId("s")
        kdc.database.register(server)
        client.login(till=clock.now() + 100)
        creds = client.get_ticket(server, till=clock.now() + 10_000)
        assert creds.expires_at <= clock.now() + 100

    def test_unknown_server_rejected(self, setup, rng):
        clock, network, kdc = setup
        _, _, client = make_user(kdc, network, clock, "alice", rng)
        with pytest.raises(UnknownPrincipalError):
            client.get_ticket(PrincipalId("no-such-server"))


class TestApExchange:
    @pytest.fixture
    def ap_setup(self, setup, rng):
        clock, network, kdc = setup
        _, _, client = make_user(kdc, network, clock, "alice", rng)
        server = PrincipalId("server")
        server_key = kdc.database.register(server)
        acceptor = ApAcceptor(server, server_key, clock)
        return clock, client, server, acceptor

    def test_accept(self, ap_setup, rng):
        clock, client, server, acceptor = ap_setup
        creds = client.get_ticket(server)
        session = acceptor.accept(make_ap_request(creds, clock, rng=rng))
        assert session.client == client.principal
        assert session.presenter == client.principal
        assert not session.is_proxy_session

    def test_replayed_authenticator_rejected(self, ap_setup, rng):
        clock, client, server, acceptor = ap_setup
        creds = client.get_ticket(server)
        request = make_ap_request(creds, clock, rng=rng)
        acceptor.accept(request)
        with pytest.raises(ReplayError):
            acceptor.accept(request)

    def test_skewed_authenticator_rejected(self, ap_setup, rng):
        clock, client, server, acceptor = ap_setup
        creds = client.get_ticket(server)
        request = make_ap_request(creds, clock, rng=rng)
        clock.advance(acceptor.max_skew + 1)
        with pytest.raises(AuthenticatorError):
            acceptor.accept(request)

    def test_expired_ticket_rejected(self, ap_setup, rng):
        clock, client, server, acceptor = ap_setup
        creds = client.get_ticket(server, till=clock.now() + 10)
        clock.advance(11)
        with pytest.raises(TicketError):
            acceptor.accept(make_ap_request(creds, clock, rng=rng))

    def test_wrong_server_ticket_rejected(self, ap_setup, rng):
        clock, client, server, acceptor = ap_setup
        creds = client.get_ticket(server)
        other_acceptor = ApAcceptor(
            PrincipalId("other"), SymmetricKey.generate(rng=rng), clock
        )
        with pytest.raises(TicketError):
            other_acceptor.accept(make_ap_request(creds, clock, rng=rng))

    def test_subkey_becomes_session_key(self, ap_setup, rng):
        clock, client, server, acceptor = ap_setup
        creds = client.get_ticket(server)
        subkey = SymmetricKey.generate(rng=rng)
        session = acceptor.accept(
            make_ap_request(creds, clock, subkey=subkey, rng=rng)
        )
        assert session.session_key == subkey

    def test_third_party_cannot_present_plain_ticket(self, ap_setup, rng):
        clock, client, server, acceptor = ap_setup
        creds = client.get_ticket(server)
        with pytest.raises(AuthenticatorError):
            acceptor.accept(
                make_ap_request(
                    creds, clock, presenter=PrincipalId("mallory"), rng=rng
                )
            )

    def test_named_grantee_may_present_proxy_ticket(self, ap_setup, rng):
        clock, client, server, acceptor = ap_setup
        bob = PrincipalId("bob")
        creds = client.get_ticket(server)
        # Simulate a proxy ticket: authorization-data names bob.
        proxy_creds = Credentials(
            ticket=creds.ticket,
            session_key=creds.session_key,
            client=client.principal,
            expires_at=creds.expires_at,
        )
        # A plain ticket has no grantee restriction, so bob is rejected
        # (covered above); now test via TGS-issued restrictions:
        restricted = client.get_ticket(
            server,
            additional_restrictions=(Grantee(principals=(bob,)),),
            use_cache=False,
        )
        session = acceptor.accept(
            make_ap_request(restricted, clock, presenter=bob, rng=rng)
        )
        assert session.client == client.principal
        assert session.presenter == bob
        assert session.is_proxy_session
