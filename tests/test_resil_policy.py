"""Retry policies, timeouts, and the circuit-breaker state machine."""

import pytest

from repro.crypto.rng import Rng
from repro.resil import (
    NO_RETRY,
    BreakerPolicy,
    CircuitBreaker,
    RetryPolicy,
    Timeout,
)


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 4
        assert policy.timeout == Timeout()
        assert policy.breaker == BreakerPolicy()

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        delays = [policy.delay(n) for n in range(5)]
        assert delays[:3] == pytest.approx([0.1, 0.2, 0.4])
        # Capped at max_delay from attempt 3 on.
        assert delays[3] == pytest.approx(0.5)
        assert delays[4] == pytest.approx(0.5)

    def test_jitter_stays_within_bounds_and_is_seeded(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        first = [policy.delay(0, Rng(seed=b"j")) for _ in range(10)]
        second = [policy.delay(0, Rng(seed=b"j")) for _ in range(10)]
        assert first == second  # same seed, same jitter
        for value in first:
            assert 1.0 <= value <= 1.5

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        assert policy.delay(0) == pytest.approx(1.0)

    def test_budgets_override_per_message_type(self):
        policy = RetryPolicy(max_attempts=4, budgets={"as-request": 7})
        assert policy.attempts_for("as-request") == 7
        assert policy.attempts_for("request") == 4

    def test_budget_floor_is_one_attempt(self):
        policy = RetryPolicy(budgets={"request": 0})
        assert policy.attempts_for("request") == 1

    def test_no_retry_sentinel(self):
        assert NO_RETRY.max_attempts == 1


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        for _ in range(2):
            breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow(0.0)

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3))
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_after_cooldown_single_probe(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown=10.0)
        )
        breaker.record_failure(100.0)
        assert breaker.half_open_at() == pytest.approx(110.0)
        assert not breaker.allow(105.0)
        assert breaker.allow(110.0)  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        # Only one probe may be in flight.
        assert not breaker.allow(110.0)

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown=10.0)
        )
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow(10.0)

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown=10.0)
        )
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.record_failure(10.0)
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.half_open_at() == pytest.approx(20.0)
        assert not breaker.allow(15.0)
        assert breaker.allow(20.0)

    def test_closed_breaker_has_no_half_open_time(self):
        assert CircuitBreaker().half_open_at() == float("-inf")
