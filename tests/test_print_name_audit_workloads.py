"""Print server (quota currency), name server (Fig. 3 message 0),
audit log (§3.4), and workload generators."""

import pytest

from repro.audit import AuditLog
from repro.core.restrictions import Grantee, Quota
from repro.crypto.rng import Rng
from repro.errors import ServiceError
from repro.kerberos.proxy_support import grant_via_credentials
from repro.services.nameserver import lookup
from repro.services.printserver import PAGES
from repro.testbed import Realm
from repro.workloads import (
    Zipf,
    delegation_subsets,
    file_workload,
    membership_checks,
    payment_workload,
)


@pytest.fixture
def world():
    realm = Realm(seed=b"print-test")
    alice = realm.user("alice")
    ps = realm.print_server("printer")
    return realm, alice, ps


class TestPrintServer:
    def test_allocate_and_print(self, world):
        realm, alice, ps = world
        client = alice.client_for(ps.principal)
        client.request("allocate", args={"pages": 10})
        out = client.request(
            "print", "report.ps", amounts={PAGES: 4}
        )
        assert out["remaining"] == 6
        assert ps.jobs[0]["pages"] == 4

    def test_insufficient_allocation(self, world):
        realm, alice, ps = world
        client = alice.client_for(ps.principal)
        client.request("allocate", args={"pages": 2})
        with pytest.raises(ServiceError):
            client.request("print", "big.ps", amounts={PAGES: 3})

    def test_quota_restriction_caps_delegated_printing(self, world):
        """§7.4: a quota restriction caps a delegated job."""
        realm, alice, ps = world
        bob = realm.user("bob")
        alice.client_for(ps.principal).request(
            "allocate", args={"pages": 100}
        )
        creds = alice.kerberos.get_ticket(ps.principal)
        proxy = grant_via_credentials(
            creds,
            (Grantee(principals=(bob.principal,)), Quota(currency=PAGES, limit=5)),
            realm.clock.now(),
        )
        client = bob.client_for(ps.principal)
        out = client.request(
            "print", "small.ps", amounts={PAGES: 5}, proxy=proxy
        )
        assert out["remaining"] == 95
        from repro.errors import RestrictionViolation

        with pytest.raises(RestrictionViolation):
            client.request(
                "print", "big.ps", amounts={PAGES: 6}, proxy=proxy
            )

    def test_job_records_owner_and_submitter(self, world):
        realm, alice, ps = world
        bob = realm.user("bob")
        alice.client_for(ps.principal).request("allocate", args={"pages": 10})
        creds = alice.kerberos.get_ticket(ps.principal)
        proxy = grant_via_credentials(
            creds, (Grantee(principals=(bob.principal,)),), realm.clock.now()
        )
        bob.client_for(ps.principal).request(
            "print", "doc.ps", amounts={PAGES: 1}, proxy=proxy
        )
        job = ps.jobs[-1]
        assert job["owner"] == str(alice.principal)
        assert job["submitted_by"] == str(bob.principal)

    def test_zero_pages_rejected(self, world):
        realm, alice, ps = world
        client = alice.client_for(ps.principal)
        with pytest.raises(ServiceError):
            client.request("print", "empty.ps", amounts={})


class TestNameServer:
    def test_lookup_record(self):
        realm = Realm(seed=b"ns-test")
        ns = realm.name_server()
        fs = realm.file_server("files")
        azs = realm.authorization_server("authz")
        ns.publish(fs.principal, authorization_server=azs.principal)
        alice = realm.user("alice")
        record = lookup(
            realm.network, alice.principal, ns.principal, fs.principal
        )
        assert record["authorization_server"] == azs.principal.to_wire()

    def test_missing_record(self):
        realm = Realm(seed=b"ns-test2")
        ns = realm.name_server()
        alice = realm.user("alice")
        with pytest.raises(ServiceError):
            lookup(
                realm.network, alice.principal, ns.principal,
                realm.principal("unknown"),
            )


class TestAuditLog:
    def _verified(self, realm):
        from repro.core.evaluation import RequestContext
        from repro.kerberos.proxy_support import endorse

        alice = realm.user("a-user")
        bob = realm.user("b-user")
        fs = realm.file_server("audit-files")
        creds = alice.kerberos.get_ticket(fs.principal)
        proxy = grant_via_credentials(
            creds, (Grantee(principals=(bob.principal,)),), realm.clock.now()
        )
        carol = realm.user("c-user")
        endorsed = endorse(
            proxy, bob.kerberos.get_ticket(fs.principal), carol.principal,
            (), realm.clock.now(), realm.clock.now() + 100,
        )
        wire = endorsed.presentation(
            fs.principal, realm.clock.now(), "read", claimant=carol.principal
        )
        return fs, carol, alice, bob, fs.acceptor.accept(
            wire,
            RequestContext(
                server=fs.principal, operation="read",
                claimant=carol.principal,
            ),
        )

    def test_records_delegation_chain(self):
        realm = Realm(seed=b"audit-test")
        fs, carol, alice, bob, verified = self._verified(realm)
        log = AuditLog()
        record = log.record(
            realm.clock.now(), fs.principal, verified, "read", "doc/x"
        )
        assert record.grantor == alice.principal
        assert record.intermediates == (bob.principal,)
        assert record.claimant == carol.principal
        assert str(bob.principal) in record.describe()

    def test_involving_queries(self):
        realm = Realm(seed=b"audit-test2")
        fs, carol, alice, bob, verified = self._verified(realm)
        log = AuditLog()
        log.record(realm.clock.now(), fs.principal, verified, "read", None)
        for principal in (alice, bob, carol):
            assert len(log.involving(principal.principal)) == 1
        assert len(log.involving(realm.principal("stranger"))) == 0

    def test_anonymous_uses(self):
        from repro.core.verification import VerifiedProxy

        log = AuditLog()
        log.record(
            0.0,
            Realm(seed=b"x").principal("s"),
            VerifiedProxy(
                grantor=Realm(seed=b"x").principal("g"),
                claimant=None,
                audit_trail=(),
                expires_at=1.0,
                bearer=True,
                chain_length=2,
            ),
            "op",
            None,
        )
        assert len(log.anonymous_uses()) == 1


class TestWorkloads:
    def test_zipf_skews_to_low_ranks(self):
        z = Zipf(100, s=1.2, rng=Rng(seed=b"z"))
        samples = [z.sample() for _ in range(2000)]
        assert all(0 <= s < 100 for s in samples)
        head = sum(1 for s in samples if s < 10)
        assert head > len(samples) * 0.4  # heavy head

    def test_file_workload_mix(self):
        ops = file_workload(
            500, n_files=20, read_fraction=0.8, rng=Rng(seed=b"f")
        )
        assert len(ops) == 500
        reads = sum(1 for op in ops if op.operation == "read")
        assert 300 < reads < 490
        assert all(op.size > 0 for op in ops if op.operation == "write")

    def test_payment_workload(self):
        payments = payment_workload(
            200, n_clients=10, n_merchants=5, rng=Rng(seed=b"p")
        )
        assert len(payments) == 200
        assert all(0 <= p.payor < 10 for p in payments)
        assert all(0 <= p.payee < 5 for p in payments)
        assert all(p.amount >= 1 for p in payments)

    def test_membership_checks(self):
        checks = membership_checks(100, 10, rng=Rng(seed=b"m"))
        assert len(checks) == 100

    def test_delegation_subsets(self):
        subsets = delegation_subsets(50, 20, subset_size=3, rng=Rng(seed=b"d"))
        assert len(subsets) == 50
        assert all(len(s) == 3 for s in subsets)

    def test_deterministic_with_seed(self):
        a = file_workload(50, rng=Rng(seed=b"same"))
        b = file_workload(50, rng=Rng(seed=b"same"))
        assert a == b
