"""End-to-end trace correlation: wire stamping, retries, postings, CLI.

One logical request must stay one trace across the whole fabric: the
sending span's context rides the message envelope, retried attempts
become child spans of the same trace, ledger postings record the trace
that caused them, and histogram exemplars point back at it.
"""

import pytest

from repro.clock import SimulatedClock
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.net import Network
from repro.net.message import Message
from repro.net.service import Service
from repro.obs.context import TraceContext
from repro.obs.telemetry import NO_TELEMETRY, Telemetry
from repro.resil import ResilientChannel, ResponseCache, RetryPolicy, Timeout

ALICE = PrincipalId("alice")
SERVER = PrincipalId("server")
REPLICA = PrincipalId("server-2")


@pytest.fixture
def clock():
    return SimulatedClock(1000.0)


@pytest.fixture
def rng():
    return Rng(seed=b"trace-propagation")


@pytest.fixture
def telemetry(clock):
    return Telemetry(clock=clock)


@pytest.fixture
def network(clock, rng, telemetry):
    return Network(clock, rng=rng, telemetry=telemetry)


class PingService(Service):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0
        self.seen_traceparents = []

    def op_ping(self, message: Message) -> dict:
        self.calls += 1
        self.seen_traceparents.append(message.traceparent)
        return {"pong": self.calls}


class TestWireStamping:
    def test_send_stamps_the_net_send_spans_context(
        self, network, clock, telemetry
    ):
        service = PingService(SERVER, network, clock)
        with telemetry.span("client.call") as caller:
            network.send(ALICE, SERVER, "ping", {})
        (header,) = service.seen_traceparents
        context = TraceContext.parse(header)
        assert context.trace_id == caller.trace_id
        (net_send,) = telemetry.tracer.find("net.send")
        assert context.span_id == net_send.hex_id
        # The receiver's handler span joined the same trace.
        (handle,) = telemetry.tracer.find("rpc.handle")
        assert handle.trace_id == caller.trace_id

    def test_null_telemetry_stamps_nothing(self, clock, rng):
        network = Network(clock, rng=rng)  # NO_TELEMETRY default
        service = PingService(SERVER, network, clock)
        network.send(ALICE, SERVER, "ping", {})
        assert service.seen_traceparents == [None]

    def test_traceparent_is_envelope_only_no_wire_bytes(self):
        plain = Message(
            source=ALICE, destination=SERVER, msg_type="ping",
            payload={"x": 1},
        )
        stamped = Message(
            source=ALICE, destination=SERVER, msg_type="ping",
            payload={"x": 1},
            traceparent="00-" + "a" * 32 + "-" + "b" * 16 + "-01",
        )
        assert stamped.wire_size() == plain.wire_size()

    def test_reply_carries_the_request_context(self):
        header = "00-" + "a" * 32 + "-" + "b" * 16 + "-01"
        request = Message(
            source=ALICE, destination=SERVER, msg_type="ping",
            payload={}, traceparent=header,
        )
        assert request.reply({"ok": True}).traceparent == header

    def test_cross_tracer_service_adopts_the_wire_context(
        self, network, clock, telemetry
    ):
        # A service instrumented by a *different* tracer — another realm
        # in a federation — must still join the sender's trace.
        their_telemetry = Telemetry(clock=clock)
        PingService(SERVER, network, clock, telemetry=their_telemetry)
        with telemetry.span("client.call") as caller:
            network.send(ALICE, SERVER, "ping", {})
        (handle,) = their_telemetry.tracer.find("rpc.handle")
        assert handle.trace_id == caller.trace_id
        assert handle.parent_id is None  # no local parent over there
        (net_send,) = telemetry.tracer.find("net.send")
        assert handle.remote_parent == net_send.hex_id


class TestResilientAttempts:
    def _channel(self, network, **kwargs):
        kwargs.setdefault("timeout", Timeout(seconds=1.0))
        kwargs.setdefault("jitter", 0.0)
        return ResilientChannel(network, policy=RetryPolicy(**kwargs))

    def test_retries_are_child_spans_of_one_trace(
        self, network, clock, telemetry
    ):
        channel = self._channel(network, max_attempts=6)
        PingService(SERVER, network, clock)
        network.blackhole(SERVER, until=clock.now() + 2.5)
        channel.send(ALICE, SERVER, "ping", {})

        (send_span,) = telemetry.tracer.find("resil.send")
        attempts = telemetry.tracer.find("resil.attempt")
        assert len(attempts) >= 2
        assert {a.trace_id for a in attempts} == {send_span.trace_id}
        assert all(a.parent_id == send_span.span_id for a in attempts)
        numbers = [a.attributes["attempt"] for a in attempts]
        assert numbers == list(range(1, len(attempts) + 1))
        # Lost attempts say so (and record the post-failure breaker
        # state); the final one succeeded.
        for lost in attempts[:-1]:
            assert lost.attributes["outcome"] == "lost"
            assert lost.attributes["reason"] == "MessageDroppedError"
            assert "breaker" in lost.attributes
        assert attempts[-1].attributes["outcome"] == "ok"
        # Every wire send of the resend sequence shares the trace too.
        sends = telemetry.tracer.find("net.send")
        assert {s.trace_id for s in sends} == {send_span.trace_id}

    def test_failover_attempt_names_the_replica(
        self, network, clock, telemetry
    ):
        channel = self._channel(network, max_attempts=6)
        cache = ResponseCache(clock)
        PingService(SERVER, network, clock, dedupe=cache)
        PingService(REPLICA, network, clock, dedupe=cache, endpoint=REPLICA)
        channel.add_replica(SERVER, REPLICA)
        network.blackhole(SERVER)
        channel.send(ALICE, SERVER, "ping", {})

        attempts = telemetry.tracer.find("resil.attempt")
        flipped = [a for a in attempts if a.attributes.get("failover")]
        assert flipped
        assert flipped[-1].attributes["endpoint"] == str(REPLICA)
        assert flipped[-1].attributes["outcome"] == "ok"

    def test_message_trace_marks_resends_and_failovers(
        self, network, clock, telemetry
    ):
        channel = self._channel(network, max_attempts=6)
        PingService(SERVER, network, clock)
        network.blackhole(SERVER, until=clock.now() + 2.5)
        channel.send(ALICE, SERVER, "ping", {})
        trace_text = telemetry.render_message_trace()
        assert "[attempt 2" in trace_text


class TestLedgerCorrelation:
    def test_postings_record_the_trace_that_caused_them(self):
        from repro.testbed import Realm

        telemetry = Telemetry()
        realm = Realm(seed=b"trace-ledger", telemetry=telemetry)
        payor = realm.user("payor")
        payee = realm.user("payee")
        bank = realm.accounting_server("bank")
        bank.create_account("payor", payor.principal, {"dollars": 100})
        bank.create_account("payee", payee.principal)
        payor_client = payor.accounting_client(bank.principal)
        payee_client = payee.accounting_client(bank.principal)

        with telemetry.run("clearing") as run_span:
            check = payor_client.write_check(
                "payor", payee.principal, "dollars", 5
            )
            payee_client.deposit_check(check, "payee")

        in_trace = [
            r
            for r in bank.ledger.journal
            if r.trace_id == run_span.trace_id
        ]
        assert in_trace, "no posting recorded the clearing trace"
        # The span events name the same postings, in causal position.
        events = [
            e
            for s in telemetry.tracer.spans_in_trace(run_span.trace_id)
            for e in s.events
            if e.name == "ledger.post"
        ]
        assert {e.attributes["posting_id"] for e in events} >= {
            r.posting_id for r in in_trace
        }

    def test_untraced_postings_have_no_trace_id(self):
        from repro.testbed import Realm

        realm = Realm(seed=b"trace-ledger-off")
        user = realm.user("payor")
        bank = realm.accounting_server("bank")
        bank.create_account("payor", user.principal, {"dollars": 100})
        bank.create_account("other", realm.user("other").principal)
        client = user.accounting_client(bank.principal)
        client.transfer("payor", "other", "dollars", 1)
        assert all(r.trace_id is None for r in bank.ledger.journal)


class TestExemplars:
    def test_observe_attaches_the_current_trace(self, telemetry):
        with telemetry.span("work") as span:
            telemetry.observe("lat", 0.05, buckets=(0.1, 1.0))
        text = telemetry.prometheus()
        assert f'# {{trace_id="{span.trace_id}"}} 0.05' in text

    def test_no_exemplar_outside_any_span(self, telemetry):
        telemetry.observe("lat", 0.05, buckets=(0.1, 1.0))
        assert "trace_id=" not in telemetry.prometheus()


class TestForensicAutoDump:
    def test_failing_chaos_campaign_dumps_offending_traces(self):
        from repro.resil.chaos import CampaignSpec, run_campaign

        # 90% request loss overwhelms even the campaign retry budget:
        # some units must fail, and each failure must arrive with its
        # causal trace attached.
        spec = CampaignSpec(figure="fig1", seed=7, units=6, drop_rate=0.9)
        report = run_campaign(spec)
        assert report.exit_code() != 0
        failed = [u for u in report.units if not u.ok]
        assert failed
        assert all(len(u.trace_id) == 32 for u in failed)
        # The baseline realm runs untraced.
        assert all(u.trace_id == "" for u in report.baseline_units)
        assert report.forensics
        rendered = report.render()
        assert "forensic traces" in rendered
        assert failed[0].trace_id in report.forensics[0]

    def test_healthy_campaign_has_no_forensics(self):
        from repro.resil.chaos import CampaignSpec, run_campaign

        spec = CampaignSpec(figure="fig1", seed=7, units=4, drop_rate=0.2)
        report = run_campaign(spec)
        assert report.exit_code() == 0
        assert report.forensics == []
        # Traced on the faulted arm all the same — every unit has an id.
        assert all(len(u.trace_id) == 32 for u in report.units)

    def test_clean_fuzz_keeps_store_bounded_and_no_forensics(self):
        from repro.ledger.fuzz import run_fuzz

        report = run_fuzz(seed=3, episodes=12, banks=2)
        assert report.ok
        assert report.forensics == []


class TestCli:
    def test_trace_follow_renders_a_waterfall(self, capsys):
        from repro.__main__ import main

        import re

        main(["trace", "fig1"])
        out = capsys.readouterr().out
        assert "traces recorded" in out
        match = re.search(r"^\s+([0-9a-f]{32})\b", out, re.MULTILINE)
        assert match, "no trace id listed in the report"
        trace_id = match.group(1)

        main(["trace", "fig1", "--follow", trace_id[:10]])
        followed = capsys.readouterr().out
        assert f"trace {trace_id}" in followed
        assert "run:fig1" in followed

    def test_trace_follow_unknown_id_exits_with_known_ids(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="no trace matches"):
            main(["trace", "fig1", "--follow", "f" * 32])

    def test_forensics_validate_and_render(self, capsys, tmp_path):
        from repro.__main__ import main

        dump = tmp_path / "spans.jsonl"
        main(["trace", "fig1", "--jsonl", str(dump)])
        capsys.readouterr()

        with pytest.raises(SystemExit) as excinfo:
            main(["forensics", "--from", str(dump), "--validate"])
        assert excinfo.value.code == 0
        assert "schema ok" in capsys.readouterr().out

        with pytest.raises(SystemExit) as excinfo:
            main(["forensics", "--from", str(dump)])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        trace_id = out.split("traces (slowest first):")[1].split()[0]

        with pytest.raises(SystemExit) as excinfo:
            main(["forensics", "--from", str(dump), "--trace", trace_id[:8]])
        assert excinfo.value.code == 0
        assert f"trace {trace_id}" in capsys.readouterr().out

    def test_forensics_flags_a_corrupt_dump(self, capsys, tmp_path):
        import json

        from repro.__main__ import main

        dump = tmp_path / "bad.jsonl"
        record = {
            "span_id": 1,
            "parent_id": 99,  # unresolved parent
            "run_id": None,
            "trace_id": "a" * 32,
            "name": "s",
            "start": 0.0,
            "end": 1.0,
            "status": "ok",
            "attributes": {},
            "events": [],
        }
        dump.write_text(json.dumps(record) + "\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["forensics", "--from", str(dump), "--validate"])
        assert excinfo.value.code == 1
        assert "does not resolve" in capsys.readouterr().out
