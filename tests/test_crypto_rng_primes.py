"""Random generation and primality testing."""

import pytest

from repro.crypto.primes import (
    generate_prime,
    generate_safe_prime,
    is_probable_prime,
)
from repro.crypto.rng import Rng


class TestRng:
    def test_seeded_is_deterministic(self):
        a = Rng(seed=b"s").bytes(64)
        b = Rng(seed=b"s").bytes(64)
        assert a == b

    def test_different_seeds_differ(self):
        assert Rng(seed=b"x").bytes(32) != Rng(seed=b"y").bytes(32)

    def test_unseeded_differs_across_draws(self):
        rng = Rng()
        assert rng.bytes(32) != rng.bytes(32)

    def test_stream_position_advances(self):
        rng = Rng(seed=b"s")
        assert rng.bytes(16) != rng.bytes(16)

    def test_int_below_in_range(self):
        rng = Rng(seed=b"r")
        for bound in (1, 2, 7, 100, 2**40):
            for _ in range(50):
                assert 0 <= rng.int_below(bound) < bound

    def test_int_below_covers_values(self):
        rng = Rng(seed=b"cover")
        seen = {rng.int_below(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_int_bits_has_top_bit(self):
        rng = Rng(seed=b"bits")
        for bits in (8, 16, 64, 200):
            value = rng.int_bits(bits)
            assert value.bit_length() == bits

    def test_odd_int_bits_odd(self):
        rng = Rng(seed=b"odd")
        assert all(rng.odd_int_bits(32) % 2 == 1 for _ in range(20))

    def test_fork_independent_and_deterministic(self):
        a = Rng(seed=b"s").fork(b"child").bytes(16)
        b = Rng(seed=b"s").fork(b"child").bytes(16)
        c = Rng(seed=b"s").fork(b"other").bytes(16)
        assert a == b
        assert a != c

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Rng().bytes(-1)

    def test_zero_bound_rejected(self):
        with pytest.raises(ValueError):
            Rng().int_below(0)


class TestPrimes:
    @pytest.mark.parametrize(
        "n", [2, 3, 5, 7, 11, 101, 7919, 104729, 2**61 - 1]
    )
    def test_known_primes(self, n):
        assert is_probable_prime(n)

    @pytest.mark.parametrize(
        "n", [0, 1, 4, 9, 15, 7917, 104730, 2**61 - 3, 561, 41041]
    )
    def test_known_composites_and_carmichael(self, n):
        # 561 and 41041 are Carmichael numbers (Fermat pseudoprimes).
        assert not is_probable_prime(n)

    def test_generate_prime_bits_and_primality(self):
        rng = Rng(seed=b"p")
        p = generate_prime(128, rng=rng)
        assert p.bit_length() == 128
        assert is_probable_prime(p)

    def test_generated_primes_distinct(self):
        rng = Rng(seed=b"pp")
        assert generate_prime(64, rng=rng) != generate_prime(64, rng=rng)

    def test_small_bits_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(8)

    def test_safe_prime_structure(self):
        rng = Rng(seed=b"sp")
        p = generate_safe_prime(64, rng=rng)
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)
