"""Network taps and fault injection interacting with the meters.

Satellite coverage for the observability PR: the tap sees exactly the
bytes the meter counts, drops are counted (and attributed) rather than
delivered, seeded runs reproduce, and the snapshot-delta rename keeps its
semantics.
"""

import pytest

from repro.clock import SimulatedClock
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.errors import MessageDroppedError
from repro.net.network import Network
from repro.obs import Telemetry

ALICE = PrincipalId("alice")
BOB = PrincipalId("bob")
CAROL = PrincipalId("carol")


def build_network(seed=b"net-obs", telemetry=None):
    network = Network(
        SimulatedClock(0.0), rng=Rng(seed=seed), telemetry=telemetry
    )
    network.register(BOB, lambda message: {"echo": message.payload})
    network.register(CAROL, lambda message: {"ok": True})
    return network


class TestTaps:
    def test_tap_sees_exact_wire_bytes(self):
        telemetry = Telemetry()
        network = build_network(telemetry=telemetry)
        seen = []
        network.add_tap(lambda message: seen.append(message))
        network.send(ALICE, BOB, "ping", {"n": 1})
        # Request and response both crossed the wire, in order.
        assert [m.msg_type for m in seen] == ["ping", "ping-reply"]
        tapped = sum(m.wire_size() for m in seen)
        assert tapped == network.metrics.bytes
        assert tapped == telemetry.metrics.counter(
            "network_bytes_total"
        ).total()

    def test_removed_tap_stops_seeing(self):
        network = build_network()
        seen = []
        tap = lambda message: seen.append(message)  # noqa: E731
        network.add_tap(tap)
        network.send(ALICE, BOB, "ping", {})
        network.remove_tap(tap)
        network.send(ALICE, BOB, "ping", {})
        assert len(seen) == 2


class TestDrops:
    def test_blackholed_request_counted_not_delivered(self):
        telemetry = Telemetry()
        network = build_network(telemetry=telemetry)
        delivered = []
        network.register(BOB, lambda m: delivered.append(m) or {})
        network.blackhole(BOB)
        with pytest.raises(MessageDroppedError):
            network.send(ALICE, BOB, "ping", {})
        assert delivered == []
        assert network.metrics.dropped == 1
        # Attribution: who lost what.
        snapshot = network.metrics.snapshot()
        assert snapshot.dropped_by_pair == {(str(ALICE), str(BOB)): 1}
        assert snapshot.dropped_by_type == {"ping": 1}
        assert snapshot.drops_between(ALICE, BOB) == 1
        assert snapshot.drops_between(ALICE, CAROL) == 0
        assert telemetry.metrics.counter("network_dropped_total").value(
            reason="blackhole", msg_type="ping"
        ) == 1
        # The request was still metered (it reached the wire).
        assert snapshot.messages == 1

    def test_dropped_send_span_is_marked(self):
        telemetry = Telemetry()
        network = build_network(telemetry=telemetry)
        network.blackhole(BOB)
        with pytest.raises(MessageDroppedError):
            network.send(ALICE, BOB, "ping", {})
        (span,) = telemetry.tracer.find("net.send")
        assert span.status == "error"
        assert span.attributes["dropped"] is True
        assert span.attributes["drop_reason"] == "blackhole"
        assert "DROPPED (blackhole)" in telemetry.render_message_trace()

    def test_heal_restores_delivery(self):
        network = build_network()
        network.blackhole(BOB)
        with pytest.raises(MessageDroppedError):
            network.send(ALICE, BOB, "ping", {})
        network.heal(BOB)
        assert network.send(ALICE, BOB, "ping", {"n": 2})["echo"] == {"n": 2}

    def test_random_drops_reproduce_under_the_same_seed(self):
        def outcomes(seed):
            network = build_network(seed=seed)
            network.set_drop_probability(0.4)
            results = []
            for i in range(30):
                try:
                    network.send(ALICE, BOB, "ping", {"i": i})
                    results.append("ok")
                except MessageDroppedError:
                    results.append("drop")
            return results, network.metrics.dropped

        # Identical seed: identical fate for every message.
        first, dropped_first = outcomes(b"seed-a")
        again, dropped_again = outcomes(b"seed-a")
        assert first == again
        assert dropped_first == dropped_again
        assert "drop" in first and "ok" in first
        # A different seed draws differently.
        other, _ = outcomes(b"seed-b")
        assert other != first


class TestSnapshotDelta:
    def test_delta_to_reads_chronologically(self):
        network = build_network()
        before = network.metrics.snapshot()
        network.send(ALICE, BOB, "ping", {})
        after = network.metrics.snapshot()
        delta = before.delta_to(after)
        assert delta.messages == 2  # request + response
        assert delta.bytes > 0
        assert delta.by_type == {"ping": 1, "ping-reply": 1}

    def test_delta_since_matches_delta_to(self):
        network = build_network()
        before = network.metrics.snapshot()
        network.send(ALICE, BOB, "ping", {})
        assert (
            network.metrics.delta_since(before).messages
            == before.delta_to(network.metrics.snapshot()).messages
        )

    def test_deprecated_delta_alias_is_gone(self):
        # delta_to is the API; the backwards-reading alias was removed.
        network = build_network()
        before = network.metrics.snapshot()
        assert not hasattr(before, "delta")

    def test_drop_attribution_survives_the_delta(self):
        network = build_network()
        network.blackhole(CAROL)
        before = network.metrics.snapshot()
        network.send(ALICE, BOB, "ping", {})
        with pytest.raises(MessageDroppedError):
            network.send(ALICE, CAROL, "ping", {})
        delta = network.metrics.delta_since(before)
        assert delta.dropped == 1
        assert delta.drops_between(ALICE, CAROL) == 1
        assert delta.drops_between(ALICE, BOB) == 0
