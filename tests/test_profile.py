"""Span folding: flame-graph stacks, call trees, speedscope export."""

from repro.obs import Telemetry, load_spans_jsonl, spans_to_jsonl
from repro.obs.figures import run_figure
from repro.obs.profile import (
    folded_stacks,
    frame_name,
    render_call_tree,
    self_times,
    speedscope_document,
)
from repro.obs.trace import Span

import pytest


def make_span(span_id, parent_id, name, start, end, trace_id="t" * 32,
              **attributes):
    span = Span(
        span_id=span_id,
        parent_id=parent_id,
        run_id=None,
        name=name,
        start=start,
        attributes=attributes,
        trace_id=trace_id,
    )
    span.end = end
    return span


@pytest.fixture(scope="module")
def fig5_spans():
    telemetry = Telemetry(capture_crypto=True)
    try:
        run_figure("fig5", telemetry)
    finally:
        telemetry.release_crypto()
    return telemetry.tracer.finished_spans()


class TestFrameNames:
    def test_detail_attributes_join_the_name(self):
        span = make_span(1, None, "net.send", 0.0, 1.0, msg_type="read")
        assert frame_name(span) == "net.send:read"

    def test_missing_detail_attributes_are_skipped(self):
        span = make_span(1, None, "rpc.handle", 0.0, 1.0, msg_type="read")
        assert frame_name(span) == "rpc.handle:read"

    def test_unknown_span_names_pass_through(self):
        assert frame_name(make_span(1, None, "custom", 0.0, 1.0)) == "custom"


class TestSelfTimes:
    def test_children_subtract_from_parents(self):
        parent = make_span(1, None, "a", 0.0, 10.0)
        child = make_span(2, 1, "b", 2.0, 5.0)
        selfs = self_times([parent, child])
        assert selfs[1] == pytest.approx(7.0)
        assert selfs[2] == pytest.approx(3.0)

    def test_self_time_never_goes_negative(self):
        parent = make_span(1, None, "a", 0.0, 1.0)
        child = make_span(2, 1, "b", 0.0, 5.0)
        assert self_times([parent, child])[1] == 0.0

    def test_unfinished_spans_are_ignored(self):
        open_span = Span(
            span_id=3, parent_id=None, run_id=None, name="open", start=0.0
        )
        assert 3 not in self_times([open_span])


class TestFoldedStacks:
    def test_paths_weighted_by_self_time_microseconds(self):
        parent = make_span(1, None, "a", 0.0, 10.0)
        child = make_span(2, 1, "b", 2.0, 5.0)
        lines = folded_stacks([parent, child])
        assert lines == ["a 7000000", "a;b 3000000"]

    def test_zero_weight_paths_are_dropped_in_time_mode(self):
        instant = make_span(1, None, "a", 1.0, 1.0)
        assert folded_stacks([instant]) == []
        assert folded_stacks([instant], weight="count") == ["a 1"]

    def test_identical_paths_accumulate(self):
        spans = [
            make_span(1, None, "a", 0.0, 1.0),
            make_span(2, None, "a", 5.0, 7.0),
        ]
        assert folded_stacks(spans) == ["a 3000000"]

    def test_weight_must_be_time_or_count(self):
        with pytest.raises(ValueError):
            folded_stacks([], weight="bytes")

    def test_output_is_sorted_and_deterministic(self, fig5_spans):
        first = folded_stacks(fig5_spans)
        assert first == sorted(first)
        assert first == folded_stacks(list(reversed(fig5_spans)))

    def test_round_trips_through_jsonl(self, fig5_spans):
        dumped = spans_to_jsonl(fig5_spans)
        reloaded = load_spans_jsonl(dumped)
        assert folded_stacks(reloaded) == folded_stacks(fig5_spans)
        assert folded_stacks(reloaded, weight="count") == folded_stacks(
            fig5_spans, weight="count"
        )

    def test_fig5_stacks_show_the_clearing_hop(self, fig5_spans):
        text = "\n".join(folded_stacks(fig5_spans))
        assert "run:fig5" in text
        assert "net.send:request;rpc.handle" in text


class TestCallTree:
    def test_counts_totals_and_selfs_render(self):
        parent = make_span(1, None, "a", 0.0, 10.0)
        child = make_span(2, 1, "b", 2.0, 5.0)
        tree = render_call_tree([parent, child])
        lines = tree.splitlines()
        assert "count" in lines[0]
        assert any("a" in line and "10.000000" in line for line in lines)
        assert any("  b" in line for line in lines)

    def test_fig5_tree_nests_by_indentation(self, fig5_spans):
        tree = render_call_tree(fig5_spans)
        assert "run:fig5" in tree
        assert "    fig.step" in tree  # indented under the run root


class TestSpeedscope:
    def test_document_structure(self, fig5_spans):
        doc = speedscope_document(fig5_spans, name="fig5")
        assert doc["$schema"].startswith("https://www.speedscope.app/")
        assert doc["name"] == "fig5"
        assert doc["shared"]["frames"]
        for profile in doc["profiles"]:
            assert profile["type"] == "evented"
            assert profile["unit"] == "seconds"
            assert profile["startValue"] <= profile["endValue"]

    def test_events_nest_and_balance(self, fig5_spans):
        doc = speedscope_document(fig5_spans)
        for profile in doc["profiles"]:
            depth = 0
            for event in profile["events"]:
                depth += 1 if event["type"] == "O" else -1
                assert depth >= 0
            assert depth == 0

    def test_frames_are_shared_across_profiles(self):
        spans = [
            make_span(1, None, "a", 0.0, 1.0, trace_id="1" * 32),
            make_span(2, None, "a", 0.0, 1.0, trace_id="2" * 32),
        ]
        doc = speedscope_document(spans)
        assert len(doc["profiles"]) == 2
        assert len(doc["shared"]["frames"]) == 1
