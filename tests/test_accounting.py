"""Accounting servers: accounts, checks, clearing, holds (§4, Fig. 5)."""

import pytest

from repro.errors import (
    AccountingError,
    AuthorizationDenied,
    CheckError,
    InsufficientFundsError,
    ReplayError,
    UnknownAccountError,
)
from repro.services.accounting import SETTLEMENT_PREFIX
from repro.services.checks import Check
from repro.testbed import Realm


@pytest.fixture
def world():
    realm = Realm(seed=b"acct-test")
    alice = realm.user("alice")
    bob = realm.user("bob")
    bank = realm.accounting_server("bank")
    bank.create_account("alice", alice.principal, {"dollars": 100, "pages": 50})
    bank.create_account("bob", bob.principal)
    return realm, alice, bob, bank


def non_settlement_total(server, currency):
    return sum(
        account.balance(currency) + account.held_total(currency)
        for name, account in server.accounts.items()
        if not name.startswith(SETTLEMENT_PREFIX)
    )


class TestAccounts:
    def test_multi_currency_balances(self, world):
        realm, alice, bob, bank = world
        balances = alice.accounting_client(bank.principal).balance("alice")
        assert balances == {"dollars": 100, "pages": 50}

    def test_open_account(self, world):
        realm, alice, bob, bank = world
        carol = realm.user("carol")
        client = carol.accounting_client(bank.principal)
        account = client.open_account("carol")
        assert account.account == "carol"
        assert client.balance("carol") == {}

    def test_duplicate_account_rejected(self, world):
        realm, alice, bob, bank = world
        client = alice.accounting_client(bank.principal)
        with pytest.raises(AccountingError):
            client.open_account("alice")

    def test_balance_requires_ownership(self, world):
        realm, alice, bob, bank = world
        with pytest.raises(AuthorizationDenied):
            bob.accounting_client(bank.principal).balance("alice")

    def test_unknown_account(self, world):
        realm, alice, bob, bank = world
        with pytest.raises(UnknownAccountError):
            alice.accounting_client(bank.principal).balance("ghost")

    def test_transfer(self, world):
        """Quota-by-transfer (§4): funds move between accounts."""
        realm, alice, bob, bank = world
        client = alice.accounting_client(bank.principal)
        client.transfer("alice", "bob", "pages", 20)
        assert client.balance("alice")["pages"] == 30
        assert bob.accounting_client(bank.principal).balance("bob") == {
            "pages": 20
        }

    def test_transfer_needs_funds(self, world):
        realm, alice, bob, bank = world
        client = alice.accounting_client(bank.principal)
        with pytest.raises(InsufficientFundsError):
            client.transfer("alice", "bob", "dollars", 1000)

    def test_transfer_needs_ownership(self, world):
        realm, alice, bob, bank = world
        with pytest.raises(AuthorizationDenied):
            bob.accounting_client(bank.principal).transfer(
                "alice", "bob", "dollars", 1
            )


class TestSameServerChecks:
    def test_clearing_moves_funds(self, world):
        realm, alice, bob, bank = world
        check = alice.accounting_client(bank.principal).write_check(
            "alice", bob.principal, "dollars", 30
        )
        result = bob.accounting_client(bank.principal).deposit_check(
            check, "bob"
        )
        assert result["paid"] == 30
        assert bank.accounts["alice"].balance("dollars") == 70
        assert bank.accounts["bob"].balance("dollars") == 30

    def test_conservation(self, world):
        realm, alice, bob, bank = world
        before = non_settlement_total(bank, "dollars")
        check = alice.accounting_client(bank.principal).write_check(
            "alice", bob.principal, "dollars", 30
        )
        bob.accounting_client(bank.principal).deposit_check(check, "bob")
        assert non_settlement_total(bank, "dollars") == before

    def test_duplicate_deposit_rejected(self, world):
        """§4: a paid check number is remembered until expiry."""
        realm, alice, bob, bank = world
        check = alice.accounting_client(bank.principal).write_check(
            "alice", bob.principal, "dollars", 10
        )
        client = bob.accounting_client(bank.principal)
        client.deposit_check(check, "bob")
        with pytest.raises(ReplayError):
            client.deposit_check(check, "bob")

    def test_partial_amount(self, world):
        """'The payee transfers up to that limit.'"""
        realm, alice, bob, bank = world
        check = alice.accounting_client(bank.principal).write_check(
            "alice", bob.principal, "dollars", 30
        )
        result = bob.accounting_client(bank.principal).deposit_check(
            check, "bob", amount=12
        )
        assert result["paid"] == 12
        assert bank.accounts["alice"].balance("dollars") == 88

    def test_over_limit_rejected(self, world):
        realm, alice, bob, bank = world
        check = alice.accounting_client(bank.principal).write_check(
            "alice", bob.principal, "dollars", 30
        )
        from repro.errors import RestrictionViolation

        with pytest.raises(RestrictionViolation):
            bob.accounting_client(bank.principal).deposit_check(
                check, "bob", amount=31
            )

    def test_non_payee_cannot_deposit(self, world):
        realm, alice, bob, bank = world
        carol = realm.user("carol")
        bank.create_account("carol", carol.principal)
        check = alice.accounting_client(bank.principal).write_check(
            "alice", bob.principal, "dollars", 10
        )
        from repro.errors import RestrictionViolation

        with pytest.raises(RestrictionViolation):
            carol.accounting_client(bank.principal).deposit_check(
                check, "carol"
            )

    def test_bounced_check_stays_cashable(self, world):
        """A failed clearing must not burn the check number (§4)."""
        realm, alice, bob, bank = world
        check = alice.accounting_client(bank.principal).write_check(
            "alice", bob.principal, "dollars", 90
        )
        client = bob.accounting_client(bank.principal)
        # Drain alice below the check amount.
        alice.accounting_client(bank.principal).transfer(
            "alice", "bob", "dollars", 50
        )
        with pytest.raises(InsufficientFundsError):
            client.deposit_check(check, "bob")
        # Refund alice; the same check must now clear.
        bob.accounting_client(bank.principal).transfer(
            "bob", "alice", "dollars", 50
        )
        result = client.deposit_check(check, "bob")
        assert result["paid"] == 90

    def test_expired_check_rejected(self, world):
        realm, alice, bob, bank = world
        check = alice.accounting_client(bank.principal).write_check(
            "alice", bob.principal, "dollars", 10, lifetime=10.0
        )
        realm.clock.advance(11.0)
        with pytest.raises(Exception):
            bob.accounting_client(bank.principal).deposit_check(check, "bob")

    def test_check_wire_round_trip(self, world):
        realm, alice, bob, bank = world
        check = alice.accounting_client(bank.principal).write_check(
            "alice", bob.principal, "dollars", 10
        )
        again = Check.from_wire(check.to_wire())
        result = bob.accounting_client(bank.principal).deposit_check(
            again, "bob"
        )
        assert result["paid"] == 10

    def test_zero_amount_check_rejected(self, world):
        realm, alice, bob, bank = world
        with pytest.raises(CheckError):
            alice.accounting_client(bank.principal).write_check(
                "alice", bob.principal, "dollars", 0
            )


class TestCrossServerChecks:
    @pytest.fixture
    def two_banks(self, world):
        realm, alice, bob, bank = world
        bank2 = realm.accounting_server("bank2")
        carol = realm.user("carol")
        bank2.create_account("carol", carol.principal)
        return realm, alice, carol, bank, bank2

    def test_fig5_clearing(self, two_banks):
        realm, alice, carol, bank, bank2 = two_banks
        check = alice.accounting_client(bank.principal).write_check(
            "alice", carol.principal, "dollars", 25
        )
        result = carol.accounting_client(bank2.principal).deposit_check(
            check, "carol"
        )
        assert result["cleared"]
        assert bank.accounts["alice"].balance("dollars") == 75
        assert bank2.accounts["carol"].balance("dollars") == 25
        # Interbank settlement recorded at the payor's server.
        settlement = bank.accounts[f"{SETTLEMENT_PREFIX}bank2"]
        assert settlement.balance("dollars") == 25

    def test_cross_server_conservation(self, two_banks):
        realm, alice, carol, bank, bank2 = two_banks
        before = non_settlement_total(bank, "dollars") + non_settlement_total(
            bank2, "dollars"
        )
        check = alice.accounting_client(bank.principal).write_check(
            "alice", carol.principal, "dollars", 25
        )
        carol.accounting_client(bank2.principal).deposit_check(check, "carol")
        after = non_settlement_total(bank, "dollars") + non_settlement_total(
            bank2, "dollars"
        )
        assert after == before

    def test_duplicate_cross_server_deposit_rejected(self, two_banks):
        realm, alice, carol, bank, bank2 = two_banks
        check = alice.accounting_client(bank.principal).write_check(
            "alice", carol.principal, "dollars", 10
        )
        client = carol.accounting_client(bank2.principal)
        client.deposit_check(check, "carol")
        with pytest.raises(ReplayError):
            client.deposit_check(check, "carol")

    def test_multi_hop_clearing(self, two_banks):
        """'Subsequent accounting servers repeat the process' (§4)."""
        realm, alice, carol, bank, bank2 = two_banks
        bank3 = realm.accounting_server("bank3")
        # bank2 routes collections on bank through bank3.
        bank2.routes[bank.principal] = bank3.principal
        check = alice.accounting_client(bank.principal).write_check(
            "alice", carol.principal, "dollars", 10
        )
        result = carol.accounting_client(bank2.principal).deposit_check(
            check, "carol"
        )
        assert result["cleared"]
        assert bank2.accounts["carol"].balance("dollars") == 10
        # bank3 presented to bank: its settlement account there grew.
        assert bank.accounts[f"{SETTLEMENT_PREFIX}bank3"].balance(
            "dollars"
        ) == 10
        # bank2's claim is on bank3.
        assert bank3.accounts[f"{SETTLEMENT_PREFIX}bank2"].balance(
            "dollars"
        ) == 10


class TestCertifiedChecks:
    def test_certification_places_hold(self, world):
        realm, alice, bob, bank = world
        fs = realm.file_server("shop")
        client = alice.accounting_client(bank.principal)
        check = client.write_check("alice", bob.principal, "dollars", 40)
        certification = client.certify_check(check, fs.principal)
        assert certification.grantor == bank.principal
        assert bank.accounts["alice"].balance("dollars") == 60
        assert bank.accounts["alice"].holds[check.number].amount == 40

    def test_certified_check_clears_from_hold(self, world):
        realm, alice, bob, bank = world
        fs = realm.file_server("shop")
        client = alice.accounting_client(bank.principal)
        check = client.write_check("alice", bob.principal, "dollars", 40)
        client.certify_check(check, fs.principal)
        # Even if alice spends her whole remaining balance...
        client.transfer("alice", "bob", "dollars", 60)
        # ...the certified check still clears.
        result = bob.accounting_client(bank.principal).deposit_check(
            check, "bob"
        )
        assert result["paid"] == 40
        assert check.number not in bank.accounts["alice"].holds

    def test_partial_clear_returns_remainder(self, world):
        realm, alice, bob, bank = world
        fs = realm.file_server("shop")
        client = alice.accounting_client(bank.principal)
        check = client.write_check("alice", bob.principal, "dollars", 40)
        client.certify_check(check, fs.principal)
        bob.accounting_client(bank.principal).deposit_check(
            check, "bob", amount=25
        )
        assert bank.accounts["alice"].balance("dollars") == 75
        assert bank.accounts["bob"].balance("dollars") == 25

    def test_double_certification_rejected(self, world):
        realm, alice, bob, bank = world
        fs = realm.file_server("shop")
        client = alice.accounting_client(bank.principal)
        check = client.write_check("alice", bob.principal, "dollars", 10)
        client.certify_check(check, fs.principal)
        with pytest.raises(CheckError):
            client.certify_check(check, fs.principal)

    def test_certification_needs_funds(self, world):
        realm, alice, bob, bank = world
        fs = realm.file_server("shop")
        client = alice.accounting_client(bank.principal)
        check = client.write_check("alice", bob.principal, "dollars", 500)
        with pytest.raises(InsufficientFundsError):
            client.certify_check(check, fs.principal)

    def test_cancel_after_expiry_returns_funds(self, world):
        realm, alice, bob, bank = world
        fs = realm.file_server("shop")
        client = alice.accounting_client(bank.principal)
        check = client.write_check(
            "alice", bob.principal, "dollars", 40, lifetime=10.0
        )
        client.certify_check(check, fs.principal)
        realm.clock.advance(11.0)
        result = client.cancel_certified_check("alice", check.number)
        assert result["returned"] == 40
        assert bank.accounts["alice"].balance("dollars") == 100

    def test_cancel_before_expiry_rejected(self, world):
        realm, alice, bob, bank = world
        fs = realm.file_server("shop")
        client = alice.accounting_client(bank.principal)
        check = client.write_check("alice", bob.principal, "dollars", 40)
        client.certify_check(check, fs.principal)
        with pytest.raises(CheckError):
            client.cancel_certified_check("alice", check.number)

    def test_certification_verifiable_at_end_server(self, world):
        """The payee's end-server can verify the certification proxy."""
        realm, alice, bob, bank = world
        fs = realm.file_server("shop")
        client = alice.accounting_client(bank.principal)
        check = client.write_check("alice", bob.principal, "dollars", 40)
        certification = client.certify_check(check, fs.principal)
        from repro.core.evaluation import RequestContext

        wire = certification.presentation(
            fs.principal,
            realm.clock.now(),
            "verify-certification",
            target=f"check:{check.number}",
        )
        verified = fs.acceptor.accept(
            wire,
            RequestContext(
                server=fs.principal,
                operation="verify-certification",
                target=f"check:{check.number}",
            ),
        )
        assert verified.grantor == bank.principal
