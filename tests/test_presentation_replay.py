"""Presentation wire forms and replay caches."""

import pytest

from repro.clock import SimulatedClock
from repro.core.presentation import (
    PossessionProof,
    PresentedProxy,
    make_possession_proof,
    present,
    request_digest,
)
from repro.core.proxy import grant_conventional
from repro.core.replay import AcceptOnceRegistry, AuthenticatorCache
from repro.crypto.keys import SymmetricKey
from repro.encoding.identifiers import PrincipalId

ALICE = PrincipalId("alice")
SERVER = PrincipalId("server")


class TestRequestDigest:
    def test_deterministic(self):
        assert request_digest("read", "x") == request_digest("read", "x")

    def test_distinguishes_operation_target_payload(self):
        base = request_digest("read", "x", b"p")
        assert request_digest("write", "x", b"p") != base
        assert request_digest("read", "y", b"p") != base
        assert request_digest("read", "x", b"q") != base

    def test_none_target_distinct_from_empty(self):
        assert request_digest("op", None) != request_digest("op", "")


class TestPresentationWire:
    def test_round_trip(self, rng):
        shared = SymmetricKey.generate(rng=rng)
        p = grant_conventional(ALICE, shared, (), 0.0, 100.0, rng=rng)
        presented = present(p, SERVER, 1.0, "read", target="t", claimant=ALICE)
        again = PresentedProxy.from_wire(presented.to_wire())
        assert again == presented

    def test_no_proof_round_trip(self, rng):
        shared = SymmetricKey.generate(rng=rng)
        p = grant_conventional(ALICE, shared, (), 0.0, 100.0, rng=rng)
        presented = present(
            p, SERVER, 1.0, "read", prove_possession=False
        )
        again = PresentedProxy.from_wire(presented.to_wire())
        assert again.proof is None

    def test_proxy_key_never_on_wire(self, rng):
        """§3.1: presentation carries certificates, never the key."""
        from repro.encoding.canonical import encode

        shared = SymmetricKey.generate(rng=rng)
        p = grant_conventional(ALICE, shared, (), 0.0, 100.0, rng=rng)
        wire_bytes = encode(present(p, SERVER, 1.0, "read").to_wire())
        assert p.proxy_key.secret not in wire_bytes

    def test_proofs_unique_even_at_same_instant(self, rng):
        shared = SymmetricKey.generate(rng=rng)
        p = grant_conventional(ALICE, shared, (), 0.0, 100.0, rng=rng)
        a = make_possession_proof(p, SERVER, 1.0, b"d" * 32)
        b = make_possession_proof(p, SERVER, 1.0, b"d" * 32)
        assert a.replay_key() != b.replay_key()


class TestAcceptOnceRegistry:
    def test_first_registration_true(self):
        registry = AcceptOnceRegistry(SimulatedClock(0.0))
        assert registry.register(ALICE, "id", 100.0)

    def test_duplicate_false(self):
        registry = AcceptOnceRegistry(SimulatedClock(0.0))
        registry.register(ALICE, "id", 100.0)
        assert not registry.register(ALICE, "id", 100.0)

    def test_expires(self):
        clock = SimulatedClock(0.0)
        registry = AcceptOnceRegistry(clock)
        registry.register(ALICE, "id", 10.0)
        clock.advance(11.0)
        assert registry.register(ALICE, "id", 100.0)

    def test_len_excludes_expired(self):
        clock = SimulatedClock(0.0)
        registry = AcceptOnceRegistry(clock)
        registry.register(ALICE, "a", 10.0)
        registry.register(ALICE, "b", 1000.0)
        clock.advance(11.0)
        assert len(registry) == 1

    def test_transaction_rolls_back_on_error(self):
        registry = AcceptOnceRegistry(SimulatedClock(0.0))
        with pytest.raises(RuntimeError):
            with registry.transaction():
                registry.register(ALICE, "ck", 100.0)
                raise RuntimeError("payment failed")
        # The check number must be usable again (§4: only paid checks
        # are recorded).
        assert registry.register(ALICE, "ck", 100.0)

    def test_transaction_commits_on_success(self):
        registry = AcceptOnceRegistry(SimulatedClock(0.0))
        with registry.transaction():
            registry.register(ALICE, "ck", 100.0)
        assert not registry.register(ALICE, "ck", 100.0)

    def test_nested_transactions(self):
        registry = AcceptOnceRegistry(SimulatedClock(0.0))
        with registry.transaction():
            registry.register(ALICE, "outer", 100.0)
            with pytest.raises(RuntimeError):
                with registry.transaction():
                    registry.register(ALICE, "inner", 100.0)
                    raise RuntimeError
        assert not registry.register(ALICE, "outer", 100.0)
        assert registry.register(ALICE, "inner", 100.0)


class TestAuthenticatorCache:
    def test_first_seen(self):
        cache = AuthenticatorCache(SimulatedClock(0.0))
        assert cache.register(b"digest")

    def test_duplicate(self):
        cache = AuthenticatorCache(SimulatedClock(0.0))
        cache.register(b"digest")
        assert not cache.register(b"digest")

    def test_window_expiry(self):
        clock = SimulatedClock(0.0)
        cache = AuthenticatorCache(clock, window=10.0)
        cache.register(b"digest")
        clock.advance(11.0)
        assert cache.register(b"digest")

    def test_len(self):
        clock = SimulatedClock(0.0)
        cache = AuthenticatorCache(clock, window=10.0)
        cache.register(b"a")
        cache.register(b"b")
        assert len(cache) == 2
        clock.advance(11.0)
        assert len(cache) == 0
