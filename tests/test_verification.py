"""The end-server verification engine: the system's trust boundary."""

import dataclasses

import pytest

from repro.clock import SimulatedClock
from repro.core.evaluation import RequestContext
from repro.core.presentation import PresentedProxy, present
from repro.core.proxy import (
    cascade,
    delegate_cascade,
    grant_conventional,
    grant_hybrid,
    grant_public,
)
from repro.core.restrictions import (
    Authorized,
    AuthorizedEntry,
    Grantee,
    IssuedFor,
    Quota,
)
from repro.core.verification import (
    ProxyVerifier,
    PublicKeyCrypto,
    SharedKeyCrypto,
)
from repro.crypto import schnorr
from repro.crypto.dh import TEST_GROUP
from repro.crypto.keys import SymmetricKey
from repro.crypto.rng import Rng
from repro.crypto.signature import SchnorrSigner
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    ProxyExpiredError,
    ProxyVerificationError,
    ReplayError,
    RestrictionViolation,
)

ALICE = PrincipalId("alice")
BOB = PrincipalId("bob")
CAROL = PrincipalId("carol")
SERVER = PrincipalId("server")
START = 1000.0


@pytest.fixture
def clock():
    return SimulatedClock(START)


@pytest.fixture
def shared(rng):
    return SymmetricKey.generate(rng=rng)


@pytest.fixture
def verifier(clock, shared):
    return ProxyVerifier(
        server=SERVER,
        crypto=SharedKeyCrypto({ALICE: shared}),
        clock=clock,
    )


def req(**kwargs):
    defaults = dict(server=SERVER, operation="read")
    defaults.update(kwargs)
    return RequestContext(**defaults)


class TestBearerVerification:
    def test_simple_bearer(self, clock, shared, verifier, rng):
        p = grant_conventional(ALICE, shared, (), START, START + 100, rng=rng)
        result = verifier.verify(
            present(p, SERVER, clock.now(), "read"), req()
        )
        assert result.grantor == ALICE
        assert result.bearer
        assert result.chain_length == 1
        assert result.audit_trail == ()

    def test_unknown_grantor_rejected(self, clock, verifier, rng):
        other_key = SymmetricKey.generate(rng=rng)
        p = grant_conventional(BOB, other_key, (), START, START + 100, rng=rng)
        with pytest.raises(ProxyVerificationError):
            verifier.verify(present(p, SERVER, clock.now(), "read"), req())

    def test_wrong_shared_key_rejected(self, clock, rng, shared):
        impostor_key = SymmetricKey.generate(rng=rng)
        p = grant_conventional(
            ALICE, impostor_key, (), START, START + 100, rng=rng
        )
        verifier = ProxyVerifier(
            server=SERVER, crypto=SharedKeyCrypto({ALICE: shared}), clock=SimulatedClock(START)
        )
        with pytest.raises(ProxyVerificationError):
            verifier.verify(present(p, SERVER, START, "read"), req())

    def test_expired_proxy_rejected(self, clock, shared, verifier, rng):
        p = grant_conventional(ALICE, shared, (), START, START + 10, rng=rng)
        presented = present(p, SERVER, clock.now(), "read")
        clock.advance(11)
        with pytest.raises(ProxyExpiredError):
            verifier.verify(presented, req())

    def test_future_issue_rejected(self, clock, shared, verifier, rng):
        p = grant_conventional(
            ALICE, shared, (), START + 500, START + 600, rng=rng
        )
        with pytest.raises(ProxyVerificationError):
            verifier.verify(present(p, SERVER, clock.now(), "read"), req())

    def test_empty_chain_rejected(self, verifier):
        with pytest.raises(ProxyVerificationError):
            verifier.verify(
                PresentedProxy(certificates=()), req()
            )

    def test_neither_proof_nor_claimant_rejected(
        self, clock, shared, verifier, rng
    ):
        p = grant_conventional(ALICE, shared, (), START, START + 100, rng=rng)
        presented = present(
            p, SERVER, clock.now(), "read", prove_possession=False
        )
        with pytest.raises(ProxyVerificationError):
            verifier.verify(presented, req())


class TestPossessionProof:
    def test_proof_for_other_server_rejected(
        self, clock, shared, verifier, rng
    ):
        p = grant_conventional(ALICE, shared, (), START, START + 100, rng=rng)
        presented = present(p, PrincipalId("elsewhere"), clock.now(), "read")
        with pytest.raises(ProxyVerificationError):
            verifier.verify(presented, req())

    def test_stale_proof_rejected(self, clock, shared, verifier, rng):
        p = grant_conventional(ALICE, shared, (), START, START + 10_000, rng=rng)
        presented = present(p, SERVER, clock.now(), "read")
        clock.advance(verifier.freshness_window + 1)
        with pytest.raises(ProxyVerificationError):
            verifier.verify(presented, req())

    def test_replayed_proof_rejected(self, clock, shared, verifier, rng):
        """§2/§3.1: an eavesdropped presentation cannot be replayed."""
        p = grant_conventional(ALICE, shared, (), START, START + 100, rng=rng)
        presented = present(p, SERVER, clock.now(), "read")
        verifier.verify(presented, req())
        with pytest.raises(ReplayError):
            verifier.verify(presented, req())

    def test_proof_signed_by_wrong_key_rejected(
        self, clock, shared, verifier, rng
    ):
        p = grant_conventional(ALICE, shared, (), START, START + 100, rng=rng)
        q = grant_conventional(ALICE, shared, (), START, START + 100, rng=rng)
        # Present p's certificates with a proof made using q's proxy key.
        wrong = present(q, SERVER, clock.now(), "read")
        forged = PresentedProxy(
            certificates=p.certificates, proof=wrong.proof
        )
        with pytest.raises(ProxyVerificationError):
            verifier.verify(forged, req())

    def test_digest_binding(self, clock, shared, verifier, rng):
        from repro.core.presentation import request_digest

        p = grant_conventional(ALICE, shared, (), START, START + 100, rng=rng)
        presented = present(p, SERVER, clock.now(), "read", target="a")
        with pytest.raises(ProxyVerificationError):
            verifier.verify(
                presented,
                req(target="b"),
                expected_digest=request_digest("read", "b"),
            )


class TestRestrictionEnforcement:
    def test_authorized_enforced(self, clock, shared, verifier, rng):
        p = grant_conventional(
            ALICE,
            shared,
            (Authorized(entries=(AuthorizedEntry("x", ("read",)),)),),
            START, START + 100, rng=rng,
        )
        verifier.verify(
            present(p, SERVER, clock.now(), "read", target="x"),
            req(target="x"),
        )
        with pytest.raises(RestrictionViolation):
            verifier.verify(
                present(p, SERVER, clock.now(), "write", target="x"),
                req(operation="write", target="x"),
            )

    def test_issued_for_enforced(self, clock, shared, verifier, rng):
        p = grant_conventional(
            ALICE, shared,
            (IssuedFor(servers=(PrincipalId("elsewhere"),)),),
            START, START + 100, rng=rng,
        )
        with pytest.raises(RestrictionViolation):
            verifier.verify(present(p, SERVER, clock.now(), "read"), req())

    def test_quota_enforced_across_links(self, clock, shared, verifier, rng):
        p = grant_conventional(
            ALICE, shared, (Quota(currency="c", limit=100),),
            START, START + 100, rng=rng,
        )
        p2 = cascade(p, (Quota(currency="c", limit=10),), START, START + 100, rng=rng)
        verifier.verify(
            present(p2, SERVER, clock.now(), "read"),
            req(amounts={"c": 10}),
        )
        with pytest.raises(RestrictionViolation):
            verifier.verify(
                present(p2, SERVER, clock.now(), "read"),
                req(amounts={"c": 50}),  # within link 1 but not link 2
            )

    def test_issuer_mode_skips_end_server_restrictions(
        self, clock, shared, verifier, rng
    ):
        p = grant_conventional(
            ALICE, shared,
            (Authorized(entries=(AuthorizedEntry("x", ("read",)),)),),
            START, START + 100, rng=rng,
        )
        # operation not covered by the authorized list, but issuer mode
        # propagates instead of evaluating (§7.9).
        verifier.verify(
            present(p, SERVER, clock.now(), "obtain-ticket"),
            req(operation="obtain-ticket"),
            issuer_mode=True,
        )

    def test_issuer_mode_still_checks_issued_for(
        self, clock, shared, verifier, rng
    ):
        p = grant_conventional(
            ALICE, shared,
            (IssuedFor(servers=(PrincipalId("elsewhere"),)),),
            START, START + 100, rng=rng,
        )
        with pytest.raises(RestrictionViolation):
            verifier.verify(
                present(p, SERVER, clock.now(), "op"),
                req(operation="op"),
                issuer_mode=True,
            )


class TestDelegateVerification:
    def test_named_claimant_passes(self, clock, shared, verifier, rng):
        p = grant_conventional(
            ALICE, shared, (Grantee(principals=(BOB,)),),
            START, START + 100, rng=rng,
        )
        presented = present(
            p, SERVER, clock.now(), "read", prove_possession=False
        )
        result = verifier.verify(presented, req(claimant=BOB))
        assert result.claimant == BOB
        assert not result.bearer

    def test_wrong_claimant_fails(self, clock, shared, verifier, rng):
        p = grant_conventional(
            ALICE, shared, (Grantee(principals=(BOB,)),),
            START, START + 100, rng=rng,
        )
        presented = present(
            p, SERVER, clock.now(), "read", prove_possession=False
        )
        with pytest.raises(RestrictionViolation):
            verifier.verify(presented, req(claimant=CAROL))

    def test_wire_claimant_not_trusted(self, clock, shared, verifier, rng):
        """The attacker-controlled wire claimant must be ignored."""
        p = grant_conventional(
            ALICE, shared, (Grantee(principals=(BOB,)),),
            START, START + 100, rng=rng,
        )
        presented = present(
            p, SERVER, clock.now(), "read",
            prove_possession=False, claimant=BOB,  # asserted, not proven
        )
        # Server-side session layer authenticated nobody:
        with pytest.raises(ProxyVerificationError):
            verifier.verify(presented, req(claimant=None))

    def test_possession_alone_insufficient_for_delegate(
        self, clock, shared, verifier, rng
    ):
        """Stealing a delegate proxy's key doesn't help without identity."""
        p = grant_conventional(
            ALICE, shared, (Grantee(principals=(BOB,)),),
            START, START + 100, rng=rng,
        )
        presented = present(p, SERVER, clock.now(), "read")  # PoP only
        with pytest.raises(RestrictionViolation):
            verifier.verify(presented, req(claimant=None))


class TestCascadeVerification:
    def test_bearer_cascade_chain(self, clock, shared, verifier, rng):
        p = grant_conventional(ALICE, shared, (), START, START + 100, rng=rng)
        p2 = cascade(p, (), START, START + 100, rng=rng)
        p3 = cascade(p2, (), START, START + 100, rng=rng)
        result = verifier.verify(
            present(p3, SERVER, clock.now(), "read"), req()
        )
        assert result.chain_length == 3
        assert result.grantor == ALICE
        assert result.audit_trail == ()  # bearer cascades are anonymous

    def test_old_key_cannot_use_new_chain(self, clock, shared, verifier, rng):
        """After cascading, the original key does not satisfy the new chain."""
        p = grant_conventional(ALICE, shared, (), START, START + 100, rng=rng)
        p2 = cascade(p, (Quota(currency="c", limit=1),), START, START + 100, rng=rng)
        # Proof made with p's key but p2's certificates.
        stale = present(p, SERVER, clock.now(), "read")
        forged = PresentedProxy(
            certificates=p2.certificates, proof=stale.proof
        )
        with pytest.raises(ProxyVerificationError):
            verifier.verify(forged, req())

    def test_truncated_chain_detected(self, clock, shared, verifier, rng):
        """Dropping the re-restricted link leaves a proof that can't verify."""
        p = grant_conventional(ALICE, shared, (), START, START + 100, rng=rng)
        p2 = cascade(p, (Quota(currency="c", limit=1),), START, START + 100, rng=rng)
        # Present only the root cert, but sign with the cascaded key.
        proof_presented = present(p2, SERVER, clock.now(), "read")
        forged = PresentedProxy(
            certificates=p.certificates, proof=proof_presented.proof
        )
        with pytest.raises(ProxyVerificationError):
            verifier.verify(forged, req())

    def test_max_chain_length(self, clock, shared, rng):
        verifier = ProxyVerifier(
            server=SERVER,
            crypto=SharedKeyCrypto({ALICE: shared}),
            clock=clock,
            max_chain_length=3,
        )
        p = grant_conventional(ALICE, shared, (), START, START + 100, rng=rng)
        for _ in range(3):
            p = cascade(p, (), START, START + 100, rng=rng)
        with pytest.raises(ProxyVerificationError):
            verifier.verify(present(p, SERVER, clock.now(), "read"), req())

    def test_delegate_cascade_builds_audit_trail(
        self, clock, shared, verifier, rng
    ):
        """§3.4: delegate cascades record intermediates."""
        bob_identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        verifier.crypto.add_shared_key  # (shared-key context)
        # Bob's identity must be resolvable: register a shared key for him.
        bob_shared = SymmetricKey.generate(rng=rng)
        verifier.crypto.add_shared_key(BOB, bob_shared)

        p = grant_conventional(
            ALICE, shared, (Grantee(principals=(BOB,)),),
            START, START + 100, rng=rng,
        )
        from repro.crypto.signature import HmacSigner

        p2 = delegate_cascade(
            p, BOB, HmacSigner(key=bob_shared), CAROL,
            (), START, START + 100, rng=rng, group=TEST_GROUP,
        )
        presented = present(
            p2, SERVER, clock.now(), "read", prove_possession=True
        )
        result = verifier.verify(presented, req(claimant=CAROL))
        assert result.audit_trail == (BOB,)
        assert result.grantor == ALICE


class TestPublicKeyVerification:
    def test_public_chain(self, clock, rng):
        identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        crypto = PublicKeyCrypto(
            directory={ALICE: SchnorrSigner(identity).verifier()}
        )
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        p = grant_public(
            ALICE, SchnorrSigner(identity), (), START, START + 100,
            rng=rng, group=TEST_GROUP,
        )
        p2 = cascade(p, (), START, START + 100, rng=rng)
        result = verifier.verify(
            present(p2, SERVER, clock.now(), "read"), req()
        )
        assert result.grantor == ALICE

    def test_hybrid_binding(self, clock, rng):
        identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        server_key = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        crypto = PublicKeyCrypto(
            directory={ALICE: SchnorrSigner(identity).verifier()},
            own_schnorr=server_key,
        )
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        p = grant_hybrid(
            ALICE, SchnorrSigner(identity), SERVER, server_key.public,
            (), START, START + 100, rng=rng,
        )
        result = verifier.verify(
            present(p, SERVER, clock.now(), "read"), req()
        )
        assert result.grantor == ALICE

    def test_hybrid_binding_wrong_server_rejected(self, clock, rng):
        """§6.1: the hybrid proxy key is locked to one end-server."""
        identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        server_key = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        crypto = PublicKeyCrypto(
            directory={ALICE: SchnorrSigner(identity).verifier()},
            own_schnorr=server_key,
        )
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        p = grant_hybrid(
            ALICE, SchnorrSigner(identity), PrincipalId("elsewhere"),
            server_key.public, (), START, START + 100, rng=rng,
        )
        with pytest.raises(ProxyVerificationError):
            verifier.verify(present(p, SERVER, clock.now(), "read"), req())

    def test_revocation_by_directory_removal(self, clock, rng):
        """§3.1: revoking the grantor's rights kills derived capabilities."""
        identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        crypto = PublicKeyCrypto(
            directory={ALICE: SchnorrSigner(identity).verifier()}
        )
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        p = grant_public(
            ALICE, SchnorrSigner(identity), (), START, START + 100,
            rng=rng, group=TEST_GROUP,
        )
        verifier.verify(present(p, SERVER, clock.now(), "read"), req())
        crypto.remove_principal(ALICE)
        with pytest.raises(ProxyVerificationError):
            verifier.verify(present(p, SERVER, clock.now(), "read"), req())


class TestTampering:
    def test_loosened_restriction_rejected(self, clock, shared, verifier, rng):
        p = grant_conventional(
            ALICE, shared, (Quota(currency="c", limit=1),),
            START, START + 100, rng=rng,
        )
        loosened_cert = dataclasses.replace(
            p.certificates[0],
            restrictions=(Quota(currency="c", limit=10**9),),
        )
        forged = PresentedProxy(
            certificates=(loosened_cert,),
            proof=present(p, SERVER, clock.now(), "read").proof,
        )
        with pytest.raises(ProxyVerificationError):
            verifier.verify(forged, req(amounts={"c": 10**6}))

    def test_extended_expiry_rejected(self, clock, shared, verifier, rng):
        p = grant_conventional(ALICE, shared, (), START, START + 10, rng=rng)
        extended_cert = dataclasses.replace(
            p.certificates[0], expires_at=START + 10_000
        )
        forged = PresentedProxy(
            certificates=(extended_cert,),
            proof=present(p, SERVER, clock.now(), "read").proof,
        )
        with pytest.raises(ProxyVerificationError):
            verifier.verify(forged, req())

    def test_swapped_grantor_rejected(self, clock, shared, verifier, rng):
        p = grant_conventional(ALICE, shared, (), START, START + 100, rng=rng)
        renamed = dataclasses.replace(p.certificates[0], grantor=BOB)
        verifier.crypto.add_shared_key(BOB, shared)
        forged = PresentedProxy(
            certificates=(renamed,),
            proof=present(p, SERVER, clock.now(), "read").proof,
        )
        with pytest.raises(ProxyVerificationError):
            verifier.verify(forged, req())
