"""The resilient channel: retries, dedupe, breakers, failover."""

import pytest

from repro.clock import SystemClock
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    CircuitOpenError,
    MessageDroppedError,
    RetriesExhaustedError,
)
from repro.net import LatencyModel, Network
from repro.net.message import Message
from repro.net.service import Service
from repro.resil import (
    ResilientChannel,
    ResponseCache,
    RetryPolicy,
    Timeout,
)
from repro.resil.dedupe import RID_KEY
from repro.resil.policy import BreakerPolicy

ALICE = PrincipalId("alice")
SERVER = PrincipalId("server")
REPLICA = PrincipalId("server-2")


class PingService(Service):
    """Counts how many times each operation actually executed."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0

    def op_ping(self, message: Message) -> dict:
        self.calls += 1
        return {"pong": self.calls}


@pytest.fixture
def network(clock, rng):
    return Network(clock, rng=rng)


def make_channel(network, **policy_kwargs):
    policy_kwargs.setdefault("timeout", Timeout(seconds=1.0))
    return ResilientChannel(network, policy=RetryPolicy(**policy_kwargs))


class TestRetries:
    def test_recovers_from_a_transient_outage(self, network, clock):
        channel = make_channel(network, max_attempts=6, jitter=0.0)
        service = PingService(SERVER, network, clock)
        # The outage outlasts the first attempts but not the budget: the
        # charged timeouts + backoff walk the clock past the window.
        network.blackhole(SERVER, until=clock.now() + 2.5)
        reply = channel.send(ALICE, SERVER, "ping", {})
        assert reply["pong"] == 1
        assert service.calls == 1
        assert channel.stats.retries >= 1
        assert channel.stats.exhausted == 0

    def test_exhausts_and_reports_attempts(self, network, clock):
        channel = make_channel(network, max_attempts=2)
        PingService(SERVER, network, clock)
        network.blackhole(SERVER)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            channel.send(ALICE, SERVER, "ping", {})
        assert excinfo.value.attempts == 2
        assert channel.stats.exhausted == 1
        assert isinstance(excinfo.value.__cause__, MessageDroppedError)

    def test_service_errors_are_not_retried(self, network, clock):
        from repro.net.message import is_error

        channel = make_channel(network, max_attempts=5)
        PingService(SERVER, network, clock)
        reply = channel.send(ALICE, SERVER, "no-such-op", {})
        # The error travelled as a successful response: no retries.
        assert is_error(reply)
        assert channel.stats.retries == 0

    def test_message_type_budgets(self, network, clock):
        channel = make_channel(
            network, max_attempts=1, budgets={"ping": 3}
        )
        PingService(SERVER, network, clock)
        network.blackhole(SERVER)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            channel.send(ALICE, SERVER, "ping", {})
        assert excinfo.value.attempts == 3


class TestReplaySafety:
    def test_lost_reply_resend_is_deduplicated(self, clock, rng):
        network = Network(
            clock, latency=LatencyModel(base=0.25, jitter=0.0), rng=rng
        )
        channel = make_channel(network, max_attempts=4, jitter=0.0)
        cache = ResponseCache(clock)
        service = PingService(SERVER, network, clock, dedupe=cache)
        # The reply of the first attempt is lost mid-exchange; the resend
        # must not run the handler twice.
        network.blackhole(SERVER, since=clock.now() + 0.4, until=clock.now() + 1.2)
        reply = channel.send(ALICE, SERVER, "ping", {})
        assert reply["pong"] == 1
        assert service.calls == 1
        assert cache.hits == 1

    def test_distinct_logical_sends_get_distinct_rids(self, network, clock):
        channel = make_channel(network)
        cache = ResponseCache(clock)
        seen = []
        service = PingService(SERVER, network, clock, dedupe=cache)
        network.add_tap(
            lambda message: message.destination == SERVER
            and seen.append(message.payload[RID_KEY])
        )
        assert channel.send(ALICE, SERVER, "ping", {})["pong"] == 1
        assert channel.send(ALICE, SERVER, "ping", {})["pong"] == 2
        assert service.calls == 2
        assert cache.hits == 0
        assert len(set(seen)) == 2

    def test_unstamped_messages_bypass_the_cache(self, network, clock):
        cache = ResponseCache(clock)
        service = PingService(SERVER, network, clock, dedupe=cache)
        network.send(ALICE, SERVER, "ping", {})
        network.send(ALICE, SERVER, "ping", {})
        assert service.calls == 2
        assert cache.hits == 0


class TestFailover:
    def test_routes_to_replica_when_primary_breaker_opens(
        self, network, clock
    ):
        channel = make_channel(network, max_attempts=6, jitter=0.0)
        cache = ResponseCache(clock)
        primary = PingService(SERVER, network, clock, dedupe=cache)
        replica = PingService(
            REPLICA, network, clock, dedupe=cache, endpoint=REPLICA
        )
        channel.add_replica(SERVER, REPLICA)
        network.blackhole(SERVER)
        reply = channel.send(ALICE, SERVER, "ping", {})
        assert reply["pong"] == 1
        assert replica.calls == 1
        assert primary.calls == 0
        assert channel.stats.failovers >= 1
        assert channel.stats.breaker_opens == 1

    def test_primary_preferred_when_healthy(self, network, clock):
        channel = make_channel(network)
        primary = PingService(SERVER, network, clock)
        replica = PingService(REPLICA, network, clock, endpoint=REPLICA)
        channel.add_replica(SERVER, REPLICA)
        channel.send(ALICE, SERVER, "ping", {})
        assert primary.calls == 1
        assert replica.calls == 0
        assert channel.stats.failovers == 0


class TestBreakers:
    def test_authority_unreachable_tracks_breaker_state(
        self, network, clock
    ):
        channel = make_channel(network, max_attempts=4, jitter=0.0)
        PingService(SERVER, network, clock)
        assert not channel.authority_unreachable(SERVER)
        network.blackhole(SERVER)
        with pytest.raises(RetriesExhaustedError):
            channel.send(ALICE, SERVER, "ping", {})
        assert channel.authority_unreachable(SERVER)
        # Past the cooldown the breaker would admit a probe again.
        clock.advance(60.0)
        assert not channel.authority_unreachable(SERVER)

    def test_open_breaker_fails_fast_on_a_real_clock(self):
        clock = SystemClock()
        network = Network(clock)
        channel = ResilientChannel(
            network,
            policy=RetryPolicy(
                max_attempts=1,
                breaker=BreakerPolicy(failure_threshold=1, cooldown=60.0),
            ),
        )
        PingService(SERVER, network, clock)
        network.blackhole(SERVER)
        with pytest.raises(RetriesExhaustedError):
            channel.send(ALICE, SERVER, "ping", {})
        # The breaker is open and a real clock cannot be advanced: the
        # next send is refused locally, without touching the wire.
        with pytest.raises(CircuitOpenError):
            channel.send(ALICE, SERVER, "ping", {})
        assert channel.stats.circuit_rejections >= 1


class TestNetworkSurface:
    def test_delegates_everything_else_to_the_network(self, network, clock):
        channel = make_channel(network)
        PingService(SERVER, network, clock)
        assert channel.knows(SERVER)
        before = channel.metrics.snapshot().messages
        channel.send(ALICE, SERVER, "ping", {})
        assert channel.metrics.snapshot().messages == before + 2
