"""Shared fixtures.

Expensive key material (RSA) is generated once per session with a fixed
seed; everything else is cheap enough to build per test.  All fixtures are
deterministic so failures reproduce exactly.
"""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.crypto import rsa as rsa_mod
from repro.crypto import schnorr as schnorr_mod
from repro.crypto.dh import TEST_GROUP
from repro.crypto.keys import KeyPair, SymmetricKey
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.testbed import Realm

#: Fixed epoch for simulated clocks: far from zero so expiry arithmetic
#: never goes negative.
START = 1_000_000.0


@pytest.fixture
def clock():
    return SimulatedClock(START)


@pytest.fixture
def rng():
    return Rng(seed=b"test-rng")


@pytest.fixture(scope="session")
def rsa_keypair():
    """One 1024-bit RSA keypair for the whole run (keygen is the slow part)."""
    return KeyPair.generate(bits=1024, rng=Rng(seed=b"rsa-fixture"))


@pytest.fixture(scope="session")
def rsa_keypair_other():
    return KeyPair.generate(bits=1024, rng=Rng(seed=b"rsa-fixture-2"))


@pytest.fixture
def schnorr_key(rng):
    return schnorr_mod.generate_keypair(TEST_GROUP, rng=rng)


@pytest.fixture
def symmetric_key(rng):
    return SymmetricKey.generate(rng=rng)


@pytest.fixture
def alice():
    return PrincipalId("alice")


@pytest.fixture
def bob():
    return PrincipalId("bob")


@pytest.fixture
def carol():
    return PrincipalId("carol")


@pytest.fixture
def server():
    return PrincipalId("server")


@pytest.fixture
def realm():
    """A fresh single-realm deployment on a simulated network."""
    return Realm(seed=b"test-realm")
