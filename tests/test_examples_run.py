"""Every example script must run to completion (guards the deliverable)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.name for p in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"
    assert "FAIL" not in result.stdout


def test_guided_tour_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "audit trail" in result.stdout
