"""RSA signatures and OAEP encryption (substrate for §6.1)."""

import pytest

from repro.crypto import rsa
from repro.crypto.rng import Rng
from repro.errors import CryptoError, SignatureError


@pytest.fixture(scope="module")
def key():
    return rsa.generate_keypair(bits=1024, rng=Rng(seed=b"rsa-module"))


class TestKeygen:
    def test_modulus_size(self, key):
        assert key.n.bit_length() == 1024

    def test_public_half(self, key):
        assert key.public.n == key.n
        assert key.public.e == 65537

    def test_keygen_rejects_tiny_moduli(self):
        with pytest.raises(ValueError):
            rsa.generate_keypair(bits=256)

    def test_wire_round_trip(self, key):
        pub = rsa.RsaPublicKey.from_wire(key.public.to_wire())
        assert pub == key.public

    def test_fingerprint_stable_and_short(self, key):
        assert key.public.fingerprint() == key.public.fingerprint()
        assert len(key.public.fingerprint()) == 16


class TestSignatures:
    def test_sign_verify(self, key):
        sig = rsa.sign(key, b"message")
        rsa.verify(key.public, b"message", sig)  # no raise

    def test_wrong_message_rejected(self, key):
        sig = rsa.sign(key, b"message")
        with pytest.raises(SignatureError):
            rsa.verify(key.public, b"other", sig)

    def test_tampered_signature_rejected(self, key):
        sig = bytearray(rsa.sign(key, b"m"))
        sig[3] ^= 0x40
        with pytest.raises(SignatureError):
            rsa.verify(key.public, b"m", bytes(sig))

    def test_wrong_key_rejected(self, key):
        other = rsa.generate_keypair(bits=1024, rng=Rng(seed=b"other-key"))
        sig = rsa.sign(key, b"m")
        with pytest.raises(SignatureError):
            rsa.verify(other.public, b"m", sig)

    def test_wrong_length_rejected(self, key):
        with pytest.raises(SignatureError):
            rsa.verify(key.public, b"m", b"\x01" * 10)

    def test_out_of_range_signature_rejected_before_exponentiation(self, key):
        # A correctly-sized signature whose integer value is >= n must be
        # rejected by the range guard, not fed to the modular
        # exponentiation (cheap DoS hardening, mirrors Schnorr's checks).
        too_big = (key.n + 1).to_bytes(key.public.byte_length, "big")
        with pytest.raises(SignatureError, match="out of range"):
            rsa.verify(key.public, b"m", too_big)
        exactly_n = key.n.to_bytes(key.public.byte_length, "big")
        with pytest.raises(SignatureError, match="out of range"):
            rsa.verify(key.public, b"m", exactly_n)

    def test_empty_message_signable(self, key):
        sig = rsa.sign(key, b"")
        rsa.verify(key.public, b"", sig)


class TestEncryption:
    def test_round_trip(self, key):
        rng = Rng(seed=b"enc")
        box = rsa.encrypt(key.public, b"proxy-key-material", rng=rng)
        assert rsa.decrypt(key, box) == b"proxy-key-material"

    def test_randomized(self, key):
        a = rsa.encrypt(key.public, b"same")
        b = rsa.encrypt(key.public, b"same")
        assert a != b
        assert rsa.decrypt(key, a) == rsa.decrypt(key, b)

    def test_tampering_detected(self, key):
        box = bytearray(rsa.encrypt(key.public, b"secret"))
        box[10] ^= 1
        with pytest.raises(CryptoError):
            rsa.decrypt(key, bytes(box))

    def test_wrong_key_fails(self, key):
        other = rsa.generate_keypair(bits=1024, rng=Rng(seed=b"other-enc"))
        box = rsa.encrypt(key.public, b"secret")
        with pytest.raises(CryptoError):
            rsa.decrypt(other, box)

    def test_too_long_plaintext_rejected(self, key):
        max_len = key.byte_length - 2 * 32 - 2
        with pytest.raises(CryptoError):
            rsa.encrypt(key.public, b"x" * (max_len + 1))

    def test_max_length_plaintext_ok(self, key):
        max_len = key.byte_length - 2 * 32 - 2
        data = b"y" * max_len
        assert rsa.decrypt(key, rsa.encrypt(key.public, data)) == data

    def test_empty_plaintext(self, key):
        assert rsa.decrypt(key, rsa.encrypt(key.public, b"")) == b""
