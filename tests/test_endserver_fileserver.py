"""The end-server framework and the file server (§3.5 hybrid authorization)."""

import pytest

from repro.acl import AclEntry, Anyone, Compound, GroupSubject, SinglePrincipal
from repro.core.restrictions import (
    Authorized,
    AuthorizedEntry,
    ForUseByGroup,
    Grantee,
    Quota,
)
from repro.errors import (
    AuthorizationDenied,
    RestrictionViolation,
    ServiceError,
)
from repro.kerberos.proxy_support import grant_via_credentials
from repro.testbed import Realm


@pytest.fixture
def world():
    realm = Realm(seed=b"endserver-test")
    alice = realm.user("alice")
    bob = realm.user("bob")
    fs = realm.file_server("files")
    fs.grant_owner(alice.principal)
    fs.put("doc/a.txt", b"contents A")
    fs.put("doc/b.txt", b"contents B")
    return realm, alice, bob, fs


class TestDirectAccess:
    def test_owner_reads(self, world):
        realm, alice, bob, fs = world
        out = alice.client_for(fs.principal).request("read", "doc/a.txt")
        assert out["data"] == b"contents A"

    def test_stranger_denied(self, world):
        realm, alice, bob, fs = world
        with pytest.raises(AuthorizationDenied):
            bob.client_for(fs.principal).request("read", "doc/a.txt")

    def test_no_session_no_proxy_denied(self, world):
        realm, alice, bob, fs = world
        client = alice.client_for(fs.principal)
        with pytest.raises(AuthorizationDenied):
            client.request("read", "doc/a.txt", with_session=False)

    def test_write_and_stat(self, world):
        realm, alice, bob, fs = world
        client = alice.client_for(fs.principal)
        client.request(
            "write", "doc/new.txt",
            args={"data": b"hello"}, amounts={"bytes": 5},
        )
        out = client.request("stat", "doc/new.txt")
        assert out == {"exists": True, "size": 5}

    def test_write_underdeclared_bytes_rejected(self, world):
        realm, alice, bob, fs = world
        client = alice.client_for(fs.principal)
        with pytest.raises(ServiceError):
            client.request(
                "write", "doc/x", args={"data": b"hello"},
                amounts={"bytes": 1},
            )

    def test_delete_and_list(self, world):
        realm, alice, bob, fs = world
        client = alice.client_for(fs.principal)
        assert client.request("delete", "doc/a.txt") == {"deleted": True}
        assert client.request("list", "doc/")["paths"] == ["doc/b.txt"]

    def test_unknown_operation(self, world):
        realm, alice, bob, fs = world
        with pytest.raises(ServiceError):
            alice.client_for(fs.principal).request("frobnicate", "x")

    def test_read_missing_file(self, world):
        realm, alice, bob, fs = world
        with pytest.raises(ServiceError):
            alice.client_for(fs.principal).request("read", "nope")


class TestCapabilityPath:
    def _capability(self, realm, alice, fs, entries):
        creds = alice.kerberos.get_ticket(fs.principal)
        return grant_via_credentials(
            creds, (Authorized(entries=entries),), realm.clock.now()
        )

    def test_capability_conveys_owner_rights(self, world):
        realm, alice, bob, fs = world
        cap = self._capability(
            realm, alice, fs, (AuthorizedEntry("doc/a.txt", ("read",)),)
        )
        out = bob.client_for(fs.principal).request(
            "read", "doc/a.txt", proxy=cap
        )
        assert out["data"] == b"contents A"

    def test_capability_scope_enforced(self, world):
        realm, alice, bob, fs = world
        cap = self._capability(
            realm, alice, fs, (AuthorizedEntry("doc/a.txt", ("read",)),)
        )
        client = bob.client_for(fs.principal)
        with pytest.raises(RestrictionViolation):
            client.request("read", "doc/b.txt", proxy=cap)
        with pytest.raises(RestrictionViolation):
            client.request("delete", "doc/a.txt", proxy=cap)

    def test_anonymous_bearer_presentation(self, world):
        """A bearer capability works with no session at all (§3.1)."""
        realm, alice, bob, fs = world
        cap = self._capability(
            realm, alice, fs, (AuthorizedEntry("doc/a.txt", ("read",)),)
        )
        out = bob.client_for(fs.principal).request(
            "read", "doc/a.txt", proxy=cap, anonymous=True
        )
        assert out["data"] == b"contents A"

    def test_capability_from_unprivileged_grantor_useless(self, world):
        """The proxy conveys the *grantor's* rights — bob has none."""
        realm, alice, bob, fs = world
        creds = bob.kerberos.get_ticket(fs.principal)
        cap = grant_via_credentials(
            creds,
            (Authorized(entries=(AuthorizedEntry("doc/a.txt", ("read",)),)),),
            realm.clock.now(),
        )
        carol = realm.user("carol")
        with pytest.raises(AuthorizationDenied):
            carol.client_for(fs.principal).request(
                "read", "doc/a.txt", proxy=cap
            )

    def test_revocation_via_acl_change(self, world):
        """§3.1: revoking the grantor's access kills all derived capabilities."""
        realm, alice, bob, fs = world
        cap = self._capability(
            realm, alice, fs, (AuthorizedEntry("doc/a.txt", ("read",)),)
        )
        client = bob.client_for(fs.principal)
        client.request("read", "doc/a.txt", proxy=cap)
        fs.acl.remove_subject(SinglePrincipal(alice.principal))
        with pytest.raises(AuthorizationDenied):
            client.request("read", "doc/a.txt", proxy=cap)


class TestDelegatePath:
    def test_delegate_proxy_requires_named_claimant(self, world):
        realm, alice, bob, fs = world
        creds = alice.kerberos.get_ticket(fs.principal)
        proxy = grant_via_credentials(
            creds, (Grantee(principals=(bob.principal,)),), realm.clock.now()
        )
        out = bob.client_for(fs.principal).request(
            "read", "doc/a.txt", proxy=proxy
        )
        assert out["data"] == b"contents A"
        carol = realm.user("carol")
        with pytest.raises(RestrictionViolation):
            carol.client_for(fs.principal).request(
                "read", "doc/a.txt", proxy=proxy
            )


class TestCompoundPrincipals:
    def test_user_and_host_required(self, world):
        """§3.5: concurrence of user and host credentials."""
        realm, alice, bob, fs = world
        host = realm.user("workstation-7")
        fs.put("secure/keys", b"root key material")
        fs.acl.add(
            AclEntry(
                subject=Compound(
                    subjects=(
                        SinglePrincipal(bob.principal),
                        SinglePrincipal(host.principal),
                    )
                ),
                operations=("read",),
                targets=("secure/*",),
            )
        )
        client = bob.client_for(fs.principal)
        # Bob alone: denied.
        with pytest.raises(AuthorizationDenied):
            client.request("read", "secure/keys")
        # Bob plus the host's proxy vouching for him: allowed.
        host_creds = host.kerberos.get_ticket(fs.principal)
        host_proxy = grant_via_credentials(
            host_creds,
            (Grantee(principals=(bob.principal,)),),
            realm.clock.now(),
        )
        out = client.request("read", "secure/keys", proxy=host_proxy)
        assert out["data"] == b"root key material"


class TestSessionRestrictions:
    def test_authenticator_restrictions_bind_session(self, world):
        """§6.2: restrictions in the authenticator narrow the session."""
        realm, alice, bob, fs = world
        client = alice.client_for(fs.principal)
        client.establish_session(
            additional_restrictions=(
                Authorized(entries=(AuthorizedEntry("doc/b.txt", ("read",)),)),
            )
        )
        assert client.request("read", "doc/b.txt")["data"] == b"contents B"
        with pytest.raises(RestrictionViolation):
            client.request("read", "doc/a.txt")

    def test_quota_in_session(self, world):
        realm, alice, bob, fs = world
        client = alice.client_for(fs.principal)
        client.establish_session(
            additional_restrictions=(Quota(currency="bytes", limit=3),)
        )
        with pytest.raises(RestrictionViolation):
            client.request(
                "write", "doc/big", args={"data": b"xxxxx"},
                amounts={"bytes": 5},
            )


class TestGroupAcl:
    def test_group_entry_via_group_proxy(self, world):
        realm, alice, bob, fs = world
        gs = realm.group_server("groups")
        gid = gs.create_group("staff", (bob.principal,))
        fs.acl.add(
            AclEntry(subject=GroupSubject(gid), operations=("read",))
        )
        g, gproxy = bob.group_client(gs.principal).get_group_proxy(
            "staff", fs.principal
        )
        out = bob.client_for(fs.principal).request(
            "read", "doc/a.txt", group_proxies=[(g, gproxy)]
        )
        assert out["data"] == b"contents A"

    def test_non_member_cannot_get_proxy(self, world):
        realm, alice, bob, fs = world
        gs = realm.group_server("groups")
        gs.create_group("staff", (bob.principal,))
        carol = realm.user("carol")
        with pytest.raises(AuthorizationDenied):
            carol.group_client(gs.principal).get_group_proxy(
                "staff", fs.principal
            )

    def test_for_use_by_group_restriction(self, world):
        """§7.2: a proxy usable only by asserting a group membership."""
        realm, alice, bob, fs = world
        gs = realm.group_server("groups")
        gid = gs.create_group("auditors", (bob.principal,))
        creds = alice.kerberos.get_ticket(fs.principal)
        proxy = grant_via_credentials(
            creds,
            (ForUseByGroup(groups=(gid,)),),
            realm.clock.now(),
        )
        client = bob.client_for(fs.principal)
        with pytest.raises(RestrictionViolation):
            client.request("read", "doc/a.txt", proxy=proxy)
        g, gproxy = bob.group_client(gs.principal).get_group_proxy(
            "auditors", fs.principal
        )
        out = client.request(
            "read", "doc/a.txt", proxy=proxy, group_proxies=[(g, gproxy)]
        )
        assert out["data"] == b"contents A"
