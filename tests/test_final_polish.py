"""Final coverage polish: name-server keys, audit corners, latency model,
identifier ordering, and service wiring details."""

import pytest

from repro.clock import SimulatedClock
from repro.crypto.rng import Rng
from repro.encoding.identifiers import AccountId, GroupId, PrincipalId
from repro.net.network import LatencyModel
from repro.testbed import Realm


class TestNameServerKeys:
    def test_public_key_record(self):
        """§6.1: end-server public keys via the name server."""
        from repro.crypto import schnorr
        from repro.crypto.dh import TEST_GROUP
        from repro.services.nameserver import lookup

        realm = Realm(seed=b"ns-keys")
        ns = realm.name_server()
        fs = realm.file_server("files")
        key = schnorr.generate_keypair(TEST_GROUP)
        ns.publish(fs.principal, public_key=key.public.to_wire())
        alice = realm.user("alice")
        record = lookup(
            realm.network, alice.principal, ns.principal, fs.principal
        )
        recovered = schnorr.SchnorrPublicKey.from_wire(record["public_key"])
        assert recovered == key.public

    def test_record_overwrite(self):
        from repro.services.nameserver import lookup

        realm = Realm(seed=b"ns-overwrite")
        ns = realm.name_server()
        fs = realm.file_server("files")
        a1 = realm.authorization_server("a1")
        a2 = realm.authorization_server("a2")
        ns.publish(fs.principal, authorization_server=a1.principal)
        ns.publish(fs.principal, authorization_server=a2.principal)
        alice = realm.user("alice")
        record = lookup(
            realm.network, alice.principal, ns.principal, fs.principal
        )
        assert record["authorization_server"] == a2.principal.to_wire()


class TestLatencyModel:
    def test_zero_jitter_deterministic(self):
        model = LatencyModel(base=0.002, jitter=0.0)
        rng = Rng(seed=b"lat")
        assert model.sample(rng) == 0.002

    def test_jitter_bounded(self):
        model = LatencyModel(base=0.001, jitter=0.004)
        rng = Rng(seed=b"lat2")
        for _ in range(100):
            sample = model.sample(rng)
            assert 0.001 <= sample <= 0.005


class TestAuditCorners:
    def test_describe_bearer(self):
        from repro.audit import AuditLog
        from repro.core.verification import VerifiedProxy

        log = AuditLog()
        record = log.record(
            5.0,
            PrincipalId("srv"),
            VerifiedProxy(
                grantor=PrincipalId("g"),
                claimant=None,
                audit_trail=(),
                expires_at=10.0,
                bearer=True,
                chain_length=1,
            ),
            "op",
            None,
        )
        text = record.describe()
        assert "<bearer>" in text
        assert "via" not in text

    def test_len_counts(self):
        from repro.audit import AuditLog
        from repro.core.verification import VerifiedProxy

        log = AuditLog()
        assert len(log) == 0
        for i in range(3):
            log.record(
                float(i),
                PrincipalId("srv"),
                VerifiedProxy(
                    grantor=PrincipalId("g"),
                    claimant=None,
                    audit_trail=(),
                    expires_at=10.0,
                    bearer=True,
                    chain_length=1,
                ),
                "op",
                None,
            )
        assert len(log) == 3


class TestIdentifierOrdering:
    def test_sortable_collections(self):
        principals = sorted(
            [PrincipalId("b"), PrincipalId("a"), PrincipalId("a", "Z.ORG")]
        )
        assert principals[0].name == "a"
        groups = sorted(
            [
                GroupId(server=PrincipalId("s"), group="y"),
                GroupId(server=PrincipalId("s"), group="x"),
            ]
        )
        assert groups[0].group == "x"
        accounts = sorted(
            [
                AccountId(server=PrincipalId("s"), account="2"),
                AccountId(server=PrincipalId("s"), account="1"),
            ]
        )
        assert accounts[0].account == "1"


class TestRealmWiring:
    def test_print_server_with_accounting_via_testbed(self):
        """End-to-end quota-by-transfer with testbed-constructed parts."""
        from repro.kerberos.client import KerberosClient
        from repro.services.accounting import AccountingClient
        from repro.services.printserver import PAGES

        realm = Realm(seed=b"wiring")
        alice = realm.user("alice")
        bank = realm.accounting_server("bank")
        ps = realm.print_server("printer")
        bank.create_account("alice", alice.principal, {PAGES: 20})
        bank.create_account("printer", ps.principal)
        ps_kerberos = KerberosClient(
            ps.principal,
            realm.kdc.database.key_of(ps.principal),
            realm.network,
            realm.clock,
        )
        ps.accounting = AccountingClient(ps_kerberos, bank.principal)
        ps.account_name = "printer"

        alice.accounting_client(bank.principal).transfer(
            "alice", "printer", PAGES, 5
        )
        client = alice.client_for(ps.principal)
        client.request("allocate", args={"pages": 5})
        out = client.request("print", "memo.ps", amounts={PAGES: 2})
        assert out["remaining"] == 3

    def test_realm_clock_is_shared_by_services(self):
        realm = Realm(seed=b"clock-shared")
        fs = realm.file_server("files")
        bank = realm.accounting_server("bank")
        assert fs.clock is realm.clock
        assert bank.clock is realm.clock

    def test_simulated_time_advances_with_traffic(self):
        realm = Realm(seed=b"time-moves")
        alice = realm.user("alice")
        fs = realm.file_server("files")
        fs.grant_owner(alice.principal)
        fs.put("doc", b"x")
        before = realm.clock.now()
        alice.client_for(fs.principal).request("read", "doc")
        assert realm.clock.now() > before
