"""Static policy queries and chain-level helpers."""

import pytest

from repro.core.chain import (
    audit_trail,
    chain_grantor,
    describe,
    effective_expiry,
    effective_quota,
    named_grantees,
    total_restrictions,
)
from repro.core.policy import (
    allowed_exercisers,
    is_narrower,
    may_perform,
    may_use_at,
    quota_limit,
    required_groups,
)
from repro.core.proxy import cascade, delegate_cascade, grant_conventional
from repro.core.restrictions import (
    Authorized,
    AuthorizedEntry,
    ForUseByGroup,
    Grantee,
    IssuedFor,
    LimitRestriction,
    Quota,
)
from repro.crypto.keys import SymmetricKey
from repro.crypto.signature import HmacSigner
from repro.encoding.identifiers import GroupId, PrincipalId

ALICE = PrincipalId("alice")
BOB = PrincipalId("bob")
SERVER = PrincipalId("server")
OTHER = PrincipalId("other")
STAFF = GroupId(server=PrincipalId("gs"), group="staff")


class TestPolicy:
    def test_may_use_at(self):
        restrictions = (IssuedFor(servers=(SERVER,)),)
        assert may_use_at(restrictions, SERVER)
        assert not may_use_at(restrictions, OTHER)

    def test_may_use_at_unrestricted(self):
        assert may_use_at((), OTHER)

    def test_may_perform(self):
        restrictions = (
            Authorized(entries=(AuthorizedEntry("f/*", ("read",)),)),
        )
        assert may_perform(restrictions, "read", "f/x")
        assert not may_perform(restrictions, "write", "f/x")
        assert not may_perform(restrictions, "read", "g/x")

    def test_quota_limit_min_wins(self):
        restrictions = (
            Quota(currency="c", limit=100),
            Quota(currency="c", limit=7),
            Quota(currency="d", limit=1),
        )
        assert quota_limit(restrictions, "c") == 7
        assert quota_limit(restrictions, "d") == 1
        assert quota_limit(restrictions, "e") is None

    def test_limit_restriction_scoping(self):
        scoped = LimitRestriction(
            servers=(SERVER,), restrictions=(Quota(currency="c", limit=3),)
        )
        assert quota_limit((scoped,), "c", server=SERVER) == 3
        assert quota_limit((scoped,), "c", server=OTHER) is None
        # Server-agnostic queries are conservative: nested applies.
        assert quota_limit((scoped,), "c", server=None) == 3

    def test_allowed_exercisers(self):
        assert allowed_exercisers(()) is None
        assert allowed_exercisers((Grantee(principals=(BOB,)),)) == (BOB,)

    def test_required_groups(self):
        r = ForUseByGroup(groups=(STAFF,))
        assert required_groups((r,)) == (r,)

    def test_is_narrower(self):
        loose = (Quota(currency="c", limit=10),)
        tight = loose + (IssuedFor(servers=(SERVER,)),)
        assert is_narrower(tight, loose)
        assert not is_narrower(loose, tight)
        assert is_narrower(loose, loose)


class TestChainHelpers:
    @pytest.fixture
    def chain(self, rng):
        shared = SymmetricKey.generate(rng=rng)
        p = grant_conventional(
            ALICE, shared,
            (Quota(currency="c", limit=100), Grantee(principals=(BOB,))),
            0.0, 1000.0, rng=rng,
        )
        bob_shared = SymmetricKey.generate(rng=rng)
        p2 = delegate_cascade(
            p, BOB, HmacSigner(key=bob_shared), PrincipalId("carol"),
            (Quota(currency="c", limit=10),), 0.0, 500.0, rng=rng,
        )
        return p2.certificates

    def test_grantor(self, chain):
        assert chain_grantor(chain) == ALICE

    def test_audit_trail(self, chain):
        assert audit_trail(chain) == (BOB,)

    def test_effective_expiry(self, chain):
        assert effective_expiry(chain) == 500.0

    def test_effective_quota(self, chain):
        assert effective_quota(chain, "c") == 10
        assert effective_quota(chain, "zzz") is None

    def test_named_grantees_final_link(self, chain):
        assert named_grantees(chain) == (PrincipalId("carol"),)

    def test_total_restrictions_in_order(self, chain):
        types = [r.to_wire()["type"] for r in total_restrictions(chain)]
        assert types == ["quota", "grantee", "grantee", "quota"]

    def test_describe_notation(self, chain):
        text = describe(chain)
        lines = text.splitlines()
        assert len(lines) == 2
        assert "Kproxy1" in lines[0]
        assert str(ALICE) in lines[0]
        assert "delegate" in lines[1]

    def test_describe_cascade_signs_with_previous_key(self, rng):
        shared = SymmetricKey.generate(rng=rng)
        p = grant_conventional(ALICE, shared, (), 0.0, 1000.0, rng=rng)
        p2 = cascade(p, (Quota(currency="x", limit=1),), 0.0, 1000.0, rng=rng)
        lines = describe(p2.certificates).splitlines()
        assert "Kproxy1" in lines[1]  # Fig. 4: signed by previous proxy key
