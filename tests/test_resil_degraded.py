"""Degraded-mode authorization: cached proxies during authority outages.

The paper's availability argument (§3.1–3.2): proxies verify *offline*,
so an authorization-server outage must not stop clients holding
still-fresh credentials — and must stop them again the moment those
credentials expire or are revoked.
"""

import pytest

from repro.acl import AclEntry, SinglePrincipal
from repro.errors import RetriesExhaustedError
from repro.kerberos.proxy_support import grant_via_credentials
from repro.resil.degraded import ProxyCache
from repro.testbed import Realm


@pytest.fixture
def deployment():
    realm = Realm(seed=b"degraded-tests", resilience=True)
    fs = realm.file_server("files")
    fs.put("doc", b"data")
    authz = realm.authorization_server("authz")
    fs.acl.add(AclEntry(subject=SinglePrincipal(authz.principal)))
    user = realm.user("bob")
    authz.database_for(fs.principal).add(
        AclEntry(subject=SinglePrincipal(user.principal), operations=("read",))
    )
    azc = user.resilient_authorization_client(authz.principal)
    azc.service.establish_session()
    client = user.client_for(fs.principal)
    return realm, fs, authz, azc, client


class TestProxyCache:
    def test_put_get_roundtrip(self):
        realm = Realm(seed=b"cache-unit")
        alice = realm.user("alice")
        fs = realm.file_server("files")
        creds = alice.kerberos.get_ticket(fs.principal)
        proxy = grant_via_credentials(creds, (), realm.clock.now())
        cache = ProxyCache(realm.clock)
        cache.put(fs.principal, ("read",), ("*",), proxy)
        assert cache.get(fs.principal, ("read",), ("*",)) is proxy
        # A different request shape misses.
        assert cache.get(fs.principal, ("write",), ("*",)) is None

    def test_expires_with_the_tightest_certificate(self):
        realm = Realm(seed=b"cache-unit")
        alice = realm.user("alice")
        fs = realm.file_server("files")
        creds = alice.kerberos.get_ticket(fs.principal)
        proxy = grant_via_credentials(
            creds, (), realm.clock.now(), realm.clock.now() + 100.0
        )
        cache = ProxyCache(realm.clock)
        cache.put(fs.principal, ("read",), ("*",), proxy)
        realm.clock.advance(101.0)
        assert cache.get(fs.principal, ("read",), ("*",)) is None
        assert len(cache) == 0

    def test_revoke_all_and_per_server(self):
        realm = Realm(seed=b"cache-unit")
        alice = realm.user("alice")
        fs = realm.file_server("files")
        other = realm.file_server("other")
        creds = alice.kerberos.get_ticket(fs.principal)
        proxy = grant_via_credentials(creds, (), realm.clock.now())
        cache = ProxyCache(realm.clock)
        cache.put(fs.principal, ("read",), ("*",), proxy)
        cache.put(other.principal, ("read",), ("*",), proxy)
        assert cache.revoke(end_server=fs.principal) == 1
        assert cache.get(fs.principal, ("read",), ("*",)) is None
        assert cache.get(other.principal, ("read",), ("*",)) is not None
        assert cache.revoke() == 1
        assert len(cache) == 0


class TestDegradedAuthorization:
    def test_cached_proxy_served_while_authority_down(self, deployment):
        realm, fs, authz, azc, client = deployment
        azc.authorize(fs.principal, ("read",))
        realm.network.blackhole(authz.principal)
        proxy = azc.authorize(fs.principal, ("read",))
        assert azc.degraded_grants == 1
        # The grant still works: verification is offline (§3.1).
        assert client.request("read", "doc", proxy=proxy)["data"] == b"data"

    def test_degraded_grants_are_flagged_in_the_audit_log(self, deployment):
        realm, fs, authz, azc, client = deployment
        azc.authorize(fs.principal, ("read",))
        realm.network.blackhole(authz.principal)
        proxy = azc.authorize(fs.principal, ("read",))
        client.request("read", "doc", proxy=proxy)
        record = fs.audit.all()[-1]
        assert record.degraded
        assert "[degraded]" in record.describe()

    def test_healthy_grants_are_not_flagged(self, deployment):
        realm, fs, authz, azc, client = deployment
        proxy = azc.authorize(fs.principal, ("read",))
        client.request("read", "doc", proxy=proxy)
        record = fs.audit.all()[-1]
        assert not record.degraded
        assert "[degraded]" not in record.describe()

    def test_no_cache_entry_means_the_outage_is_fatal(self, deployment):
        realm, fs, authz, azc, client = deployment
        realm.network.blackhole(authz.principal)
        with pytest.raises(RetriesExhaustedError):
            azc.authorize(fs.principal, ("read",))

    def test_expired_cache_entry_is_refused(self, deployment):
        realm, fs, authz, azc, client = deployment
        azc.authorize(fs.principal, ("read",))
        realm.network.blackhole(authz.principal)
        # Outlive the issued proxy (authz default lifetime 3600s): the
        # degraded path must not resurrect expired credentials.
        realm.clock.advance(4000.0)
        with pytest.raises(RetriesExhaustedError):
            azc.authorize(fs.principal, ("read",))

    def test_revoked_cache_entry_is_refused(self, deployment):
        realm, fs, authz, azc, client = deployment
        azc.authorize(fs.principal, ("read",))
        azc.cache.revoke()
        realm.network.blackhole(authz.principal)
        with pytest.raises(RetriesExhaustedError):
            azc.authorize(fs.principal, ("read",))

    def test_recovery_clears_the_degraded_marking(self, deployment):
        realm, fs, authz, azc, client = deployment
        azc.authorize(fs.principal, ("read",))
        realm.network.blackhole(authz.principal)
        azc.authorize(fs.principal, ("read",))
        realm.network.heal(authz.principal)
        # Wait out the breaker cooldown, then authorize for real again.
        realm.clock.advance(120.0)
        proxy = azc.authorize(fs.principal, ("read",))
        assert azc.degraded_grants == 1  # unchanged
        client.request("read", "doc", proxy=proxy)
        assert not fs.audit.all()[-1].degraded
