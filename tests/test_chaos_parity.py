"""Chaos-parity: faulted campaigns must reach fault-free outcomes.

Each campaign runs a figure workload twice on identically-seeded realms —
once healthy, once under injected faults — and compares application-level
outcomes unit by unit.  With retries on, the resilient fabric must turn
every fault into latency, never divergence; with retries off, the same
faults must visibly lose work (the control arm proves the campaigns
actually bite).
"""

import pytest

from repro.resil.chaos import CampaignSpec, run_campaign


def campaign(**kwargs):
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("units", 12)
    return run_campaign(CampaignSpec(**kwargs))


class TestRecoveryParity:
    def test_fig4_recovers_from_request_loss(self):
        report = campaign(figure="fig4", drop_rate=0.2)
        assert report.unrecoverable == 0
        assert report.parity
        assert report.exit_code() == 0
        assert report.stats["retries"] >= 1

    def test_fig5_checks_clear_exactly_once_despite_lost_replies(self):
        report = campaign(
            figure="fig5", drop_rate=0.1, response_drop_rate=0.15
        )
        assert report.unrecoverable == 0
        assert report.parity
        # Lost replies were resent and deduplicated — the balances prove
        # no check cleared twice (parity covers the finale balances).
        assert report.dedupe_hits >= 1
        assert report.finale == report.baseline_finale

    def test_fig1_offline_verification_survives_kdc_loss(self):
        report = campaign(figure="fig1", drop_rate=0.2, kill_primary=True)
        assert report.unrecoverable == 0
        assert report.parity
        assert report.stats["failovers"] >= 1

    def test_without_retries_the_same_faults_lose_work(self):
        resilient = campaign(figure="fig4", drop_rate=0.2)
        control = campaign(figure="fig4", drop_rate=0.2, retry=False)
        assert resilient.unrecoverable == 0
        assert control.unrecoverable >= 1
        # The control arm never fails the campaign: it is the baseline
        # that shows what the resilience layer is for.
        assert control.exit_code() == 0


class TestDegradedCampaign:
    def test_fig3_outage_serves_cached_grants_flagged_degraded(self):
        report = campaign(
            figure="fig3", drop_rate=0.1, outage=(5.0, 400.0)
        )
        assert report.unrecoverable == 0
        assert report.parity
        assert report.degraded_client >= 1
        assert report.degraded_server >= 1
        assert report.stats["breaker_opens"] >= 1

    def test_fig3_without_faults_never_degrades(self):
        report = campaign(figure="fig3")
        assert report.unrecoverable == 0
        assert report.degraded_client == 0
        assert report.degraded_server == 0


class TestSpecValidation:
    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(CampaignSpec(figure="fig9"))

    def test_fault_description(self):
        spec = CampaignSpec(
            figure="fig4",
            drop_rate=0.2,
            response_drop_rate=0.1,
            outage=(5.0, 65.0),
            kill_primary=True,
        )
        text = spec.describe_faults()
        assert "request-drop 20%" in text
        assert "response-drop 10%" in text
        assert "outage" in text
        assert "killed" in text
        assert CampaignSpec(figure="fig4").describe_faults() == "none"
