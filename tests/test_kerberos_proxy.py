"""Kerberos-carried proxies and the TGS proxy exchange (§6.2–§6.3)."""

import pytest

from repro.clock import SimulatedClock
from repro.core.evaluation import RequestContext
from repro.core.proxy import cascade
from repro.core.restrictions import (
    AcceptOnce,
    Authorized,
    AuthorizedEntry,
    Grantee,
    Quota,
)
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    KerberosError,
    ProxyExpiredError,
    ReplayError,
    TicketError,
)
from repro.kerberos import (
    ApAcceptor,
    Credentials,
    KerberosClient,
    KerberosProxy,
    KerberosProxyAcceptor,
    KeyDistributionCenter,
    grant_via_credentials,
    make_ap_request,
)
from repro.kerberos.proxy_support import endorse
from repro.net.network import Network

START = 1_000_000.0


@pytest.fixture
def world(rng):
    clock = SimulatedClock(START)
    network = Network(clock, rng=rng)
    kdc = KeyDistributionCenter(network, clock, rng=rng)
    alice = PrincipalId("alice")
    alice_key = kdc.database.register(alice)
    server = PrincipalId("server")
    server_key = kdc.database.register(server)
    client = KerberosClient(alice, alice_key, network, clock, rng=rng)
    acceptor = KerberosProxyAcceptor(server, server_key, clock)
    return clock, network, kdc, client, server, server_key, acceptor


def req(server, **kwargs):
    defaults = dict(server=server, operation="read")
    defaults.update(kwargs)
    return RequestContext(**defaults)


class TestGrantViaCredentials:
    def test_accepted_by_end_server(self, world):
        clock, _, _, client, server, _, acceptor = world
        creds = client.get_ticket(server)
        kproxy = grant_via_credentials(creds, (), clock.now())
        wire = kproxy.presentation(server, clock.now(), "read")
        verified = acceptor.accept(wire, req(server))
        assert verified.grantor == client.principal

    def test_proxy_capped_by_ticket_lifetime(self, world):
        clock, _, _, client, server, _, acceptor = world
        creds = client.get_ticket(server, till=clock.now() + 50)
        kproxy = grant_via_credentials(
            creds, (), clock.now(), expires_at=clock.now() + 10_000
        )
        assert kproxy.proxy.expires_at <= clock.now() + 50

    def test_expired_ticket_rejected(self, world, rng):
        clock, _, _, client, server, _, acceptor = world
        creds = client.get_ticket(server, till=clock.now() + 10)
        kproxy = grant_via_credentials(creds, (), clock.now())
        wire = kproxy.presentation(server, clock.now(), "read")
        clock.advance(11)
        with pytest.raises((TicketError, ProxyExpiredError)):
            acceptor.accept(wire, req(server))

    def test_restrictions_enforced(self, world):
        clock, _, _, client, server, _, acceptor = world
        creds = client.get_ticket(server)
        kproxy = grant_via_credentials(
            creds,
            (Authorized(entries=(AuthorizedEntry("a", ("read",)),)),),
            clock.now(),
        )
        from repro.errors import RestrictionViolation

        wire = kproxy.presentation(server, clock.now(), "write", target="a")
        with pytest.raises(RestrictionViolation):
            acceptor.accept(
                wire, req(server, operation="write", target="a")
            )

    def test_ticket_authdata_applies(self, world):
        """Restrictions on the grantor's own ticket bind the proxy too."""
        clock, _, _, client, server, _, acceptor = world
        creds = client.get_ticket(
            server,
            additional_restrictions=(Quota(currency="c", limit=1),),
            use_cache=False,
        )
        kproxy = grant_via_credentials(creds, (), clock.now())
        from repro.errors import RestrictionViolation

        wire = kproxy.presentation(server, clock.now(), "read")
        with pytest.raises(RestrictionViolation):
            acceptor.accept(
                wire, req(server, amounts={"c": 5})
            )

    def test_cascaded_proxy_accepted(self, world):
        clock, _, _, client, server, _, acceptor = world
        creds = client.get_ticket(server)
        kproxy = grant_via_credentials(creds, (), clock.now())
        inner = cascade(
            kproxy.proxy, (Quota(currency="c", limit=5),),
            clock.now(), clock.now() + 100,
        )
        wire = kproxy.handoff(inner).presentation(
            server, clock.now(), "read"
        )
        verified = acceptor.accept(wire, req(server, amounts={"c": 3}))
        assert verified.chain_length == 2

    def test_transferable_round_trip(self, world):
        clock, _, _, client, server, _, acceptor = world
        creds = client.get_ticket(server)
        kproxy = grant_via_credentials(creds, (), clock.now())
        again = KerberosProxy.from_transferable(kproxy.transferable())
        wire = again.presentation(server, clock.now(), "read")
        acceptor.accept(wire, req(server))


class TestEndorsement:
    def test_endorsed_chain_verifies_with_both_tickets(self, world, rng):
        clock, network, kdc, client, server, _, acceptor = world
        bob = PrincipalId("bob")
        bob_key = kdc.database.register(bob)
        bob_client = KerberosClient(bob, bob_key, network, clock, rng=rng)

        creds = client.get_ticket(server)
        kproxy = grant_via_credentials(
            creds,
            (Grantee(principals=(bob,)), AcceptOnce(identifier="ck-1")),
            clock.now(),
        )
        carol = PrincipalId("carol")
        bob_creds = bob_client.get_ticket(server)
        endorsed = endorse(
            kproxy, bob_creds, carol, (), clock.now(), clock.now() + 100,
            rng=rng,
        )
        assert len(endorsed.tickets) == 2
        wire = endorsed.presentation(
            server, clock.now(), "read", claimant=carol
        )
        verified = acceptor.accept(wire, req(server, claimant=carol))
        assert verified.audit_trail == (bob,)  # Fig. 5's paper trail

    def test_accept_once_fires_through_endorsement(self, world, rng):
        clock, network, kdc, client, server, _, acceptor = world
        bob = PrincipalId("bob")
        bob_key = kdc.database.register(bob)
        bob_client = KerberosClient(bob, bob_key, network, clock, rng=rng)
        creds = client.get_ticket(server)
        kproxy = grant_via_credentials(
            creds,
            (Grantee(principals=(bob,)), AcceptOnce(identifier="ck-2")),
            clock.now(),
        )
        carol = PrincipalId("carol")
        endorsed = endorse(
            kproxy, bob_client.get_ticket(server), carol, (),
            clock.now(), clock.now() + 100, rng=rng,
        )
        wire = endorsed.presentation(server, clock.now(), "read", claimant=carol)
        acceptor.accept(wire, req(server, claimant=carol))
        wire2 = endorsed.presentation(server, clock.now(), "read", claimant=carol)
        with pytest.raises(ReplayError):
            acceptor.accept(wire2, req(server, claimant=carol))


class TestTgsProxy:
    """§6.3: a proxy for the ticket-granting service fans out."""

    def test_grantee_obtains_ticket_in_grantor_name(self, world, rng):
        clock, network, kdc, client, server, server_key, _ = world
        bob = PrincipalId("bob")
        bob_key = kdc.database.register(bob)
        bob_client = KerberosClient(bob, bob_key, network, clock, rng=rng)
        bob_client.login()

        tgt = client.login()
        tgs_proxy = grant_via_credentials(
            Credentials(
                ticket=tgt.ticket,
                session_key=tgt.session_key,
                client=client.principal,
                expires_at=tgt.expires_at,
            ),
            (Authorized(entries=(AuthorizedEntry("*", ("read",)),)),),
            clock.now(),
        )
        creds = bob_client.redeem_tgs_proxy(
            tgt.ticket, tgs_proxy.proxy, server
        )
        assert creds.client == client.principal
        body = creds.ticket.open(server_key)
        types = [r.to_wire()["type"] for r in body.authorization_data]
        assert "authorized" in types  # identical restrictions carried
        assert "grantee" in types  # pinned to bob

    def test_grantee_can_establish_session(self, world, rng):
        clock, network, kdc, client, server, server_key, _ = world
        bob = PrincipalId("bob")
        bob_key = kdc.database.register(bob)
        bob_client = KerberosClient(bob, bob_key, network, clock, rng=rng)
        bob_client.login()

        tgt = client.login()
        tgs_proxy = grant_via_credentials(
            Credentials(
                ticket=tgt.ticket,
                session_key=tgt.session_key,
                client=client.principal,
                expires_at=tgt.expires_at,
            ),
            (),
            clock.now(),
        )
        creds = bob_client.redeem_tgs_proxy(tgt.ticket, tgs_proxy.proxy, server)
        acceptor = ApAcceptor(server, server_key, clock)
        session = acceptor.accept(
            make_ap_request(creds, clock, presenter=bob, rng=rng)
        )
        assert session.client == client.principal
        assert session.presenter == bob

    def test_third_party_cannot_redeem(self, world, rng):
        """The TGS reply is sealed under the proxy key — only its holder
        can recover the new session key."""
        clock, network, kdc, client, server, _, _ = world
        mallory = PrincipalId("mallory")
        mallory_key = kdc.database.register(mallory)
        mallory_client = KerberosClient(
            mallory, mallory_key, network, clock, rng=rng
        )
        mallory_client.login()

        tgt = client.login()
        tgs_proxy = grant_via_credentials(
            Credentials(
                ticket=tgt.ticket,
                session_key=tgt.session_key,
                client=client.principal,
                expires_at=tgt.expires_at,
            ),
            (),
            clock.now(),
        )
        # Mallory saw the certificates (e.g. on the wire) but not the
        # proxy key.
        stolen = tgs_proxy.proxy.without_key()
        with pytest.raises(Exception):
            mallory_client.redeem_tgs_proxy(tgt.ticket, stolen, server)
