"""Cached-vs-uncached parity: the fast path must be invisible.

The verification caches may only change *speed*.  These tests replay the
paper's figure protocols with the caches on and off and assert the
observable behaviour is byte-identical, then attack a verifier with hot
caches to show that expiry, replay suppression, revocation, and
restriction evaluation are exactly as strict as on a cold path.
"""

import pytest

from repro.clock import SimulatedClock
from repro.core.evaluation import RequestContext
from repro.core.presentation import present
from repro.core.proxy import cascade, grant_conventional, grant_public
from repro.core.restrictions import Authorized, AuthorizedEntry, Quota
from repro.core.vcache import DEFAULT_CONFIG, DISABLED_CONFIG, override
from repro.core.verification import (
    ProxyVerifier,
    PublicKeyCrypto,
    SharedKeyCrypto,
)
from repro.crypto.dh import TEST_GROUP
from repro.crypto.keys import SymmetricKey
from repro.crypto.rng import Rng
from repro.crypto.schnorr import generate_keypair
from repro.crypto.signature import SchnorrSigner
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    ProxyExpiredError,
    ProxyVerificationError,
    ReplayError,
    RestrictionViolation,
)
from repro.obs.figures import FIGURES, run_figure

START = 1_000_000.0
ALICE = PrincipalId("alice")
SERVER = PrincipalId("server")


# ---------------------------------------------------------------------------
# Figure replays: byte-identical traces with caches on and off
# ---------------------------------------------------------------------------

def _figure_views(figure, config):
    with override(config):
        telemetry = run_figure(figure)
    # The trees are compared byte-for-byte *except* the cache's own
    # telemetry events (vcache.*): they introspect the cache itself, so
    # they exist precisely when the cache does.  Everything else — spans,
    # timings, protocol events — must be identical.
    tree = "\n".join(
        line
        for line in telemetry.render_tree().splitlines()
        if "* vcache." not in line
    )
    return (telemetry.render_message_trace(), tree)


@pytest.mark.parametrize("figure", sorted(FIGURES))
def test_figure_trace_parity(figure):
    cached_trace, cached_tree = _figure_views(figure, DEFAULT_CONFIG)
    uncached_trace, uncached_tree = _figure_views(figure, DISABLED_CONFIG)
    assert cached_trace == uncached_trace
    assert cached_tree == uncached_tree


@pytest.mark.parametrize("figure", sorted(FIGURES))
def test_figure_trace_parity_batched_vs_sequential(figure):
    """Batched stage-1/2 verification must also be trace-invisible: the
    same figure replayed with ``batch_verify`` on and off renders
    byte-identical deterministic views."""
    import dataclasses

    batch_off = dataclasses.replace(DEFAULT_CONFIG, batch_verify=False)
    on_trace, on_tree = _figure_views(figure, DEFAULT_CONFIG)
    off_trace, off_tree = _figure_views(figure, batch_off)
    assert on_trace == off_trace
    assert on_tree == off_tree


# ---------------------------------------------------------------------------
# VerifiedProxy parity on repeat presentations
# ---------------------------------------------------------------------------

def _hmac_setup(restrictions=(), links=3, seed=b"parity-hmac"):
    rng = Rng(seed=seed)
    clock = SimulatedClock(START)
    shared = SymmetricKey.generate(rng=rng)
    proxy = grant_conventional(
        ALICE, shared, restrictions, START, START + 3600, rng
    )
    for i in range(links - 1):
        proxy = cascade(
            proxy,
            (Quota(currency=f"hop{i}", limit=100),),
            START,
            START + 3600,
            rng,
        )
    return clock, SharedKeyCrypto({ALICE: shared}), proxy


def _schnorr_setup(seed=b"parity-schnorr"):
    rng = Rng(seed=seed)
    clock = SimulatedClock(START)
    identity = generate_keypair(TEST_GROUP, rng=rng)
    proxy = grant_public(
        ALICE,
        SchnorrSigner(identity),
        (),
        START,
        START + 3600,
        rng,
        group=TEST_GROUP,
    )
    proxy = cascade(proxy, (), START, START + 3600, rng)
    crypto = PublicKeyCrypto(
        directory={ALICE: SchnorrSigner(identity).verifier()}
    )
    return clock, crypto, proxy


@pytest.mark.parametrize(
    "setup", [_hmac_setup, _schnorr_setup], ids=["hmac", "schnorr"]
)
def test_verified_proxy_identical_cached_and_uncached(setup):
    clock, crypto, proxy = setup()
    context = RequestContext(server=SERVER, operation="read")
    results = []
    for config in (DEFAULT_CONFIG, DISABLED_CONFIG):
        with override(config):
            verifier = ProxyVerifier(
                server=SERVER, crypto=crypto, clock=clock
            )
            # Two rounds so the cached verifier answers from a hot cache
            # on its second pass.
            for _ in range(2):
                results.append(
                    verifier.verify(
                        present(proxy, SERVER, clock.now(), "read"), context
                    )
                )
    assert len(set(results)) == 1  # VerifiedProxy is frozen and comparable


# ---------------------------------------------------------------------------
# Security parity: hot caches must reject exactly what cold paths reject
# ---------------------------------------------------------------------------

def _warm(verifier, clock, proxy, context, operation="read", target=None):
    return verifier.verify(
        present(proxy, SERVER, clock.now(), operation, target=target),
        context,
    )


def test_expired_chain_rejected_with_hot_cache():
    clock, crypto, proxy = _hmac_setup()
    context = RequestContext(server=SERVER, operation="read")
    with override(DEFAULT_CONFIG):
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        _warm(verifier, clock, proxy, context)
        assert verifier.chain_cache.stats()["entries"] > 0
        clock.advance(4000.0)  # past the chain's expiry
        with pytest.raises(ProxyExpiredError):
            _warm(verifier, clock, proxy, context)


def test_replayed_presentation_rejected_with_hot_cache():
    clock, crypto, proxy = _hmac_setup()
    context = RequestContext(server=SERVER, operation="read")
    with override(DEFAULT_CONFIG):
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        presented = present(proxy, SERVER, clock.now(), "read")
        verifier.verify(presented, context)
        with pytest.raises(ReplayError):
            verifier.verify(presented, context)


def test_shared_key_revocation_rejected_with_hot_cache():
    clock, crypto, proxy = _hmac_setup()
    context = RequestContext(server=SERVER, operation="read")
    with override(DEFAULT_CONFIG):
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        _warm(verifier, clock, proxy, context)
        crypto.drop_shared_key(ALICE)
        with pytest.raises(ProxyVerificationError):
            _warm(verifier, clock, proxy, context)


def test_directory_revocation_rejected_with_hot_cache():
    clock, crypto, proxy = _schnorr_setup()
    context = RequestContext(server=SERVER, operation="read")
    with override(DEFAULT_CONFIG):
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        _warm(verifier, clock, proxy, context)
        crypto.remove_principal(ALICE)
        with pytest.raises(ProxyVerificationError):
            _warm(verifier, clock, proxy, context)


def test_key_rotation_invalidates_prefix_entries():
    """Rotating the grantor's key changes the cache token, so stale prefix
    entries become unreachable and the old chain fails afresh."""
    clock, crypto, proxy = _hmac_setup()
    context = RequestContext(server=SERVER, operation="read")
    with override(DEFAULT_CONFIG):
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        _warm(verifier, clock, proxy, context)
        _warm(verifier, clock, proxy, context)
        hot_hits = verifier.chain_cache.stats()["hits"]
        assert hot_hits == len(proxy.certificates)
        crypto.add_shared_key(
            ALICE, SymmetricKey.generate(rng=Rng(seed=b"rotated"))
        )
        with pytest.raises(ProxyVerificationError):
            _warm(verifier, clock, proxy, context)
        # The rotated key changed the prefix token: no further hits.
        assert verifier.chain_cache.stats()["hits"] == hot_hits


def test_restriction_violation_rejected_with_hot_cache():
    clock, crypto, proxy = _hmac_setup(
        restrictions=(
            Authorized(entries=(AuthorizedEntry("file", ("read",)),)),
        ),
        links=1,
    )
    with override(DEFAULT_CONFIG):
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        _warm(
            verifier,
            clock,
            proxy,
            RequestContext(server=SERVER, operation="read", target="file"),
            target="file",
        )
        with pytest.raises(RestrictionViolation):
            _warm(
                verifier,
                clock,
                proxy,
                RequestContext(
                    server=SERVER, operation="delete", target="file"
                ),
                operation="delete",
                target="file",
            )


def test_stale_possession_proof_rejected_with_hot_cache():
    clock, crypto, proxy = _hmac_setup()
    context = RequestContext(server=SERVER, operation="read")
    with override(DEFAULT_CONFIG):
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        _warm(verifier, clock, proxy, context)
        stale = present(proxy, SERVER, clock.now(), "read")
        clock.advance(verifier.freshness_window + 1.0)
        with pytest.raises(ProxyVerificationError):
            verifier.verify(stale, context)
