"""WAL framing, snapshots, and the durability store primitives.

The byte format (``repro.ledger.wal``) must round-trip cleanly, stop at
the first torn record, and never reuse a record boundary; the store
(``repro.durability``) must compact, recover snapshot-then-WAL, and
report problems instead of silently dropping state.
"""

import os

import pytest

from repro.durability import DurabilityStore
from repro.ledger import wal
from repro.ledger.posting import (
    CREDIT,
    DEBIT,
    HOLD,
    Leg,
    Posting,
    usage_charge,
)
from repro.encoding.identifiers import PrincipalId


class TestFraming:
    def test_round_trip_many_records(self, tmp_path):
        path = str(tmp_path / "wal.log")
        payloads = [{"kind": "t", "data": {"n": i}} for i in range(20)]
        for payload in payloads:
            wal.append_record(path, payload)
        records, torn = wal.read_records(path)
        assert records == payloads
        assert torn == 0

    def test_missing_file_is_empty_log(self, tmp_path):
        assert wal.read_records(str(tmp_path / "absent.log")) == ([], 0)

    def test_oversized_record_rejected(self):
        with pytest.raises(wal.WalError):
            wal.frame({"blob": b"x" * (wal.MAX_RECORD + 1)})

    def test_torn_payload_stops_scan(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal.append_record(path, {"n": 1})
        # A crash mid-append: header promises more payload than landed.
        with open(path, "ab") as handle:
            handle.write(wal.frame({"n": 2})[:-3])
        records, torn = wal.read_records(path)
        assert [r["n"] for r in records] == [1]
        assert torn == len(wal.frame({"n": 2})) - 3

    def test_corrupt_crc_stops_scan(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal.append_record(path, {"n": 1})
        wal.append_record(path, {"n": 2})
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last[0] ^ 0xFF]))
        records, torn = wal.read_records(path)
        assert [r["n"] for r in records] == [1]
        assert torn == len(wal.frame({"n": 2}))

    def test_absurd_length_prefix_treated_as_torn(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal.append_record(path, {"n": 1})
        with open(path, "ab") as handle:
            handle.write(wal.HEADER.pack(wal.MAX_RECORD + 1, 0) + b"junk")
        records, torn = wal.read_records(path)
        assert [r["n"] for r in records] == [1]
        assert torn > 0

    def test_truncate_then_append_resumes_cleanly(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal.append_record(path, {"n": 1})
        with open(path, "ab") as handle:
            handle.write(b"\x00\x01half-a-record")
        _, torn = wal.read_records(path)
        wal.truncate(path, torn)
        wal.append_record(path, {"n": 2})
        records, torn = wal.read_records(path)
        assert [r["n"] for r in records] == [1, 2]
        assert torn == 0


class TestSnapshot:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "snapshot.bin")
        wal.write_snapshot(path, {"components": {"x": {"a": 1}}})
        assert wal.read_snapshot(path) == {"components": {"x": {"a": 1}}}

    def test_missing_is_none(self, tmp_path):
        assert wal.read_snapshot(str(tmp_path / "absent.bin")) is None

    def test_garbage_is_none(self, tmp_path):
        path = str(tmp_path / "snapshot.bin")
        with open(path, "wb") as handle:
            handle.write(b"not a framed record")
        assert wal.read_snapshot(path) is None

    def test_replace_is_atomic_no_tmp_left(self, tmp_path):
        path = str(tmp_path / "snapshot.bin")
        wal.write_snapshot(path, {"v": 1})
        wal.write_snapshot(path, {"v": 2})
        assert wal.read_snapshot(path) == {"v": 2}
        assert not os.path.exists(path + ".tmp")


class TestPostingWire:
    def test_transfer_round_trip(self):
        posting = usage_charge("alice", "revenue", "dollars", 30)
        again = wal.posting_from_wire(wal.posting_to_wire(posting))
        assert again == posting

    def test_hold_leg_round_trip(self):
        payee = PrincipalId("carol", "REALM")
        posting = Posting(
            legs=(
                Leg(
                    account="alice",
                    side=DEBIT,
                    currency="dollars",
                    amount=5,
                ),
                Leg(
                    account="alice",
                    side=CREDIT,
                    currency="dollars",
                    amount=5,
                    bucket=HOLD,
                    hold_id="ck-1",
                    hold_payee=payee,
                    hold_expires_at=900.0,
                ),
            ),
            kind="certify",
        )
        again = wal.posting_from_wire(wal.posting_to_wire(posting))
        assert again == posting
        assert again.legs[1].hold_payee == payee


class _Component:
    """A dict-backed component for exercising the store seams."""

    def __init__(self, store):
        self.state = {}
        self.store = store

    def put(self, key, value):
        self.state[key] = value
        self.store.append("put", {"key": key, "value": value})

    def wire(self, store):
        store.handler(
            "put", lambda d: self.state.__setitem__(d["key"], d["value"])
        )
        store.snapshotter(
            "component",
            lambda: dict(self.state),
            lambda s: self.state.update(s),
        )


class TestDurabilityStore:
    def build(self, tmp_path, **kwargs):
        store = DurabilityStore(str(tmp_path / "srv"), **kwargs)
        component = _Component(store)
        component.wire(store)
        return store, component

    def test_recover_replays_wal(self, tmp_path):
        store, component = self.build(tmp_path)
        component.put("a", 1)
        component.put("b", 2)
        # A new process: same directory, empty memory.
        store2, component2 = self.build(tmp_path)
        report = store2.recover()
        assert component2.state == {"a": 1, "b": 2}
        assert report.replayed == {"put": 2}
        assert report.ok

    def test_auto_compaction_folds_wal_into_snapshot(self, tmp_path):
        store, component = self.build(tmp_path, snapshot_every=3)
        for i in range(7):
            component.put(f"k{i}", i)
        assert store.compactions == 2
        # Only the post-compaction tail remains in the log.
        records, _ = wal.read_records(store.wal_path)
        assert len(records) == 1
        store2, component2 = self.build(tmp_path, snapshot_every=3)
        report = store2.recover()
        assert report.snapshot_restored
        assert report.replayed == {"put": 1}
        assert component2.state == {f"k{i}": i for i in range(7)}

    def test_replay_does_not_relog(self, tmp_path):
        store, component = self.build(tmp_path)
        component.put("a", 1)
        size = os.path.getsize(store.wal_path)
        store2, _ = self.build(tmp_path)
        store2.recover()
        assert os.path.getsize(store2.wal_path) == size

    def test_torn_tail_truncated_and_reported(self, tmp_path):
        store, component = self.build(tmp_path)
        component.put("a", 1)
        with open(store.wal_path, "ab") as handle:
            handle.write(b"\x00\x00\x00\x20torn")
        store2, component2 = self.build(tmp_path)
        report = store2.recover()
        assert report.torn_bytes == 8
        assert report.ok
        assert component2.state == {"a": 1}
        # The log is clean again: appends resume on a record boundary.
        component2.put("b", 2)
        records, torn = wal.read_records(store2.wal_path)
        assert torn == 0 and len(records) == 2

    def test_unknown_kind_is_a_problem(self, tmp_path):
        store, component = self.build(tmp_path)
        store.append("mystery", {"x": 1})
        store2, _ = self.build(tmp_path)
        report = store2.recover()
        assert not report.ok
        assert "mystery" in report.problems[0]

    def test_failing_handler_is_a_problem_not_a_crash(self, tmp_path):
        store, component = self.build(tmp_path)
        component.put("a", 1)
        store.append("boom", {})
        store2, component2 = self.build(tmp_path)

        def explode(data):
            raise RuntimeError("bad record")

        store2.handler("boom", explode)
        report = store2.recover()
        assert component2.state == {"a": 1}
        assert any("boom" in p for p in report.problems)

    def test_recovery_counts_toward_next_compaction(self, tmp_path):
        store, component = self.build(tmp_path, snapshot_every=3)
        component.put("a", 1)
        component.put("b", 2)
        store2, component2 = self.build(tmp_path, snapshot_every=3)
        store2.recover()
        component2.put("c", 3)
        # 2 replayed + 1 fresh reaches the threshold.
        assert store2.compactions == 1
