"""End-to-end observability: figure runs, exports, and the no-op default."""

import json

import pytest

from repro.obs import NO_TELEMETRY, Telemetry
from repro.obs.figures import run_figure
from repro.testbed import Realm


@pytest.fixture
def fig3():
    telemetry = Telemetry(capture_crypto=True)
    try:
        yield run_figure("fig3", telemetry)
    finally:
        telemetry.release_crypto()


class TestFig3Trace:
    def test_one_run_three_steps_three_exchanges(self, fig3):
        (root,) = fig3.tracer.roots()
        assert root.name == "run:fig3"
        steps = fig3.tracer.find("fig.step")
        assert [s.attributes["step"] for s in steps] == ["0 (dashed)", "1+2", 3]
        sends = fig3.tracer.find("net.send")
        assert len(sends) == 3  # messages 0-3, one exchange per arrow
        assert all(s.run_id == root.run_id for s in steps + sends)
        # Each figure arrow is a request/response pair.
        assert all(s.attributes["messages"] == 2 for s in sends)

    def test_span_tree_matches_figure_notation(self, fig3):
        tree = fig3.render_tree()
        assert "message 0 (dashed): a-priori knowledge via name server" in tree
        assert "message 1+2" in tree
        assert "{Kproxy}Ksession" in tree
        assert "message 3: present proxy to S" in tree
        assert "verify.chain @files@REPRO.ORG" in tree

    def test_message_trace_lists_the_three_arrows(self, fig3):
        lines = fig3.render_message_trace().splitlines()
        assert len(lines) == 3
        assert "nameserver@REPRO.ORG : lookup" in lines[0]
        assert "authz@REPRO.ORG : request" in lines[1]
        assert "files@REPRO.ORG : request" in lines[2]

    def test_audit_record_rides_the_trace_as_a_span_event(self, fig3):
        events = [
            (span, event)
            for span in fig3.tracer.spans
            for event in span.events
            if event.name == "audit.record"
        ]
        (span, event) = events[-1]
        assert span.run_id is not None  # correlated to the protocol run
        assert event.attributes["server"] == "files@REPRO.ORG"
        assert event.attributes["operation"] == "read"

    def test_prometheus_export_has_hot_path_metrics(self, fig3):
        text = fig3.prometheus()
        assert "# TYPE verify_chain_seconds histogram" in text
        assert "# TYPE network_messages_total counter" in text
        assert fig3.metrics.counter("network_messages_total").total() > 0
        assert fig3.metrics.histogram("verify_chain_seconds").total_count() > 0
        assert fig3.metrics.counter("proxy_verifications_total").value(
            outcome="verified"
        ) > 0
        assert fig3.metrics.counter("signature_operations_total").total() > 0
        assert fig3.metrics.counter("kdc_tickets_issued_total").total() > 0

    def test_jsonl_export_parses(self, fig3):
        records = [
            json.loads(line) for line in fig3.spans_jsonl().splitlines()
        ]
        assert {"net.send", "rpc.handle", "verify.chain"} <= {
            r["name"] for r in records
        }


class TestOtherFigures:
    @pytest.mark.parametrize("name", ["fig1", "fig4", "fig5"])
    def test_every_figure_runs_and_renders(self, name):
        telemetry = run_figure(name)
        assert telemetry.tracer.roots()[0].name == f"run:{name}"
        assert telemetry.render_tree()
        assert "verify.chain" in telemetry.render_tree()

    def test_fig5_shows_nested_endorsement_hops(self):
        telemetry = run_figure("fig5")
        trace = telemetry.render_message_trace()
        # The E2 forward to the payor's server is a nested (indented) hop.
        assert "    " in trace.splitlines()[-1]
        assert "bank-payor@REPRO.ORG" in trace

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            run_figure("fig99")


class TestNoOpDefault:
    """Seed behavior is unchanged when no telemetry is supplied."""

    def _fig3_message_counts(self, telemetry):
        from repro.acl import AclEntry, SinglePrincipal

        realm = Realm(seed=b"parity", telemetry=telemetry)
        fs = realm.file_server("files")
        fs.put("doc", b"data")
        authz = realm.authorization_server("authz")
        fs.acl.add(AclEntry(subject=SinglePrincipal(authz.principal)))
        user = realm.user("client")
        authz.database_for(fs.principal).add(
            AclEntry(
                subject=SinglePrincipal(user.principal), operations=("read",)
            )
        )
        proxy = user.authorization_client(authz.principal).authorize(
            fs.principal, ("read",)
        )
        user.client_for(fs.principal).request("read", "doc", proxy=proxy)
        snapshot = realm.network.metrics.snapshot()
        return snapshot.messages, snapshot.bytes, dict(snapshot.by_type)

    def test_realm_defaults_to_null_telemetry(self):
        realm = Realm(seed=b"plain")
        assert realm.network.telemetry is NO_TELEMETRY
        assert realm.telemetry is NO_TELEMETRY

    def test_message_and_byte_counts_identical_with_and_without(self):
        bare = self._fig3_message_counts(None)
        live = self._fig3_message_counts(Telemetry())
        assert bare == live

    def test_shared_network_telemetry_is_adopted(self):
        telemetry = Telemetry()
        realm_a = Realm(seed=b"shared", telemetry=telemetry)
        realm_b = Realm(
            seed=b"other",
            network=realm_a.network,
            clock=realm_a.clock,
            realm="OTHER.ORG",
        )
        assert realm_b.telemetry is telemetry
