"""Edge cases across subsystems: error paths, malformed inputs, boundaries."""

import dataclasses

import pytest

from repro.clock import SimulatedClock
from repro.core.certificate import (
    HybridKeyBinding,
    PublicKeyBinding,
    SealedKeyBinding,
)
from repro.core.evaluation import RequestContext
from repro.core.presentation import PresentedProxy, present
from repro.core.proxy import grant_conventional
from repro.core.verification import (
    ProxyVerifier,
    PublicKeyCrypto,
    SharedKeyCrypto,
)
from repro.crypto.keys import SymmetricKey
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    AuthorizationDenied,
    ProxyVerificationError,
    ServiceError,
    UnknownAccountError,
)
from repro.testbed import Realm

ALICE = PrincipalId("alice")
SERVER = PrincipalId("server")
START = 1_000_000.0


class TestVerifierEdgeCases:
    @pytest.fixture
    def setup(self, rng):
        shared = SymmetricKey.generate(rng=rng)
        clock = SimulatedClock(START)
        verifier = ProxyVerifier(
            server=SERVER, crypto=SharedKeyCrypto({ALICE: shared}), clock=clock
        )
        proxy = grant_conventional(ALICE, shared, (), START, START + 100, rng)
        return shared, clock, verifier, proxy

    def test_sealed_fingerprint_mismatch_rejected(self, setup, rng):
        shared, clock, verifier, proxy = setup
        cert = proxy.certificates[0]
        bad_binding = SealedKeyBinding(
            box=cert.key_binding.box, fingerprint=b"x" * 16
        )
        forged = dataclasses.replace(cert, key_binding=bad_binding)
        presented = PresentedProxy(
            certificates=(forged,),
            proof=present(proxy, SERVER, clock.now(), "read").proof,
        )
        with pytest.raises(ProxyVerificationError):
            verifier.verify(
                presented, RequestContext(server=SERVER, operation="read")
            )

    def test_unknown_public_binding_scheme(self, setup, rng):
        shared, clock, verifier, proxy = setup
        cert = proxy.certificates[0]
        weird = PublicKeyBinding(scheme="post-quantum", key_wire={"n": 1})
        forged = dataclasses.replace(cert, key_binding=weird)
        presented = PresentedProxy(
            certificates=(forged,),
            proof=present(proxy, SERVER, clock.now(), "read").proof,
        )
        with pytest.raises(ProxyVerificationError):
            verifier.verify(
                presented, RequestContext(server=SERVER, operation="read")
            )

    def test_shared_key_crypto_rejects_hybrid(self, setup):
        shared, clock, verifier, proxy = setup
        with pytest.raises(ProxyVerificationError):
            verifier.crypto.decrypt_hybrid("schnorr-ies", b"box")

    def test_public_crypto_rejects_sealed_root(self, rng):
        crypto = PublicKeyCrypto()
        with pytest.raises(ProxyVerificationError):
            crypto.unseal_root_key(ALICE, b"box")

    def test_public_crypto_without_private_keys(self, rng):
        crypto = PublicKeyCrypto()
        with pytest.raises(ProxyVerificationError):
            crypto.decrypt_hybrid("schnorr-ies", b"box")
        with pytest.raises(ProxyVerificationError):
            crypto.decrypt_hybrid("rsa-oaep", b"box")
        with pytest.raises(ProxyVerificationError):
            crypto.decrypt_hybrid("unknown-scheme", b"box")


class TestEndServerEdgeCases:
    @pytest.fixture
    def world(self):
        realm = Realm(seed=b"edge-endserver")
        alice = realm.user("alice")
        fs = realm.file_server("files")
        fs.grant_owner(alice.principal)
        fs.put("doc", b"data")
        return realm, alice, fs

    def test_unknown_session_id(self, world):
        realm, alice, fs = world
        from repro.net.message import raise_if_error

        with pytest.raises(ServiceError):
            raise_if_error(
                realm.network.send(
                    alice.principal, fs.principal, "request",
                    {
                        "operation": "read", "target": "doc",
                        "session_id": b"bogus-session-id", "args": {},
                        "amounts": {},
                    },
                )
            )

    def test_group_proxy_from_wrong_server_rejected(self, world):
        """A group proxy must be granted by the group's own server (§3.3)."""
        realm, alice, fs = world
        from repro.encoding.identifiers import GroupId
        from repro.kerberos.proxy_support import grant_via_credentials
        from repro.core.restrictions import GroupMembership

        impostor_group = GroupId(
            server=realm.principal("real-group-server"), group="staff"
        )
        # alice (not the group server) mints a proxy claiming membership.
        creds = alice.kerberos.get_ticket(fs.principal)
        fake = grant_via_credentials(
            creds,
            (GroupMembership(groups=(impostor_group,)),),
            realm.clock.now(),
        )
        client = alice.client_for(fs.principal)
        with pytest.raises(ProxyVerificationError):
            client.request(
                "read", "doc", group_proxies=[(impostor_group, fake)]
            )

    def test_malformed_request_payload(self, world):
        realm, alice, fs = world
        from repro.net.message import is_error

        reply = realm.network.send(
            alice.principal, fs.principal, "request", {"no": "operation"}
        )
        assert is_error(reply)

    def test_handler_exception_becomes_error_payload(self, world):
        realm, alice, fs = world

        def broken(request):
            raise ServiceError("deliberate")

        fs.register_operation("boom", broken)
        client = alice.client_for(fs.principal)
        with pytest.raises(ServiceError, match="deliberate"):
            client.request("boom")


class TestAccountingEdgeCases:
    @pytest.fixture
    def world(self):
        realm = Realm(seed=b"edge-acct")
        alice = realm.user("alice")
        bank = realm.accounting_server("bank")
        bank.create_account("alice", alice.principal, {"dollars": 10})
        return realm, alice, bank

    def test_transfer_to_missing_account(self, world):
        realm, alice, bank = world
        with pytest.raises(UnknownAccountError):
            alice.accounting_client(bank.principal).transfer(
                "alice", "ghost", "dollars", 1
            )

    def test_bad_target_format(self, world):
        realm, alice, bank = world
        from repro.net.message import raise_if_error

        client = alice.client_for(bank.principal)
        with pytest.raises(ServiceError):
            client.request("balance", target="not-an-account-target")

    def test_deposit_check_drawn_on_self_via_deposit_op(self, world):
        """Same-server checks must use the debit path, not deposit-check."""
        realm, alice, bank = world
        bob = realm.user("bob")
        bank.create_account("bob", bob.principal)
        check = alice.accounting_client(bank.principal).write_check(
            "alice", bob.principal, "dollars", 1
        )
        from repro.errors import CheckError
        from repro.kerberos.proxy_support import endorse

        creds = bob.kerberos.get_ticket(bank.principal)
        endorsed = endorse(
            check.bundle, creds, bank.principal, (),
            realm.clock.now(), check.expires_at,
        )
        client = bob.client_for(bank.principal)
        with pytest.raises(CheckError):
            client.request(
                "deposit-check",
                target="account:bob",
                args={
                    "bundle": endorsed.transferable(),
                    "payor_server": bank.principal.to_wire(),
                    "payor_account": "alice",
                    "currency": "dollars",
                    "amount": 1,
                    "expires_at": check.expires_at,
                    "payee_account": "bob",
                },
            )

    def test_debit_without_proxy_denied(self, world):
        realm, alice, bank = world
        client = alice.client_for(bank.principal)
        with pytest.raises(AuthorizationDenied):
            client.request(
                "debit", target="account:alice",
                args={
                    "currency": "dollars", "amount": 1,
                    "credit_account": "alice",
                },
                amounts={"dollars": 1},
            )

    def test_mismatched_amount_declaration(self, world):
        realm, alice, bank = world
        bob = realm.user("bob")
        bank.create_account("bob", bob.principal)
        check = alice.accounting_client(bank.principal).write_check(
            "alice", bob.principal, "dollars", 5
        )
        from repro.errors import CheckError
        from repro.services.checks import account_target

        client = bob.client_for(bank.principal)
        with pytest.raises(CheckError):
            client.request(
                "debit",
                target=account_target(check.payor_account),
                args={
                    "currency": "dollars",
                    "amount": 5,
                    "credit_account": "bob",
                },
                amounts={"dollars": 3},  # declared != requested
                proxy=check.bundle,
            )


class TestKerberosEdgeCases:
    def test_tgs_proxy_requires_symmetric_key(self):
        """A Schnorr-keyed proxy cannot ride the TGS proxy exchange."""
        realm = Realm(seed=b"edge-krb")
        alice = realm.user("alice")
        bob = realm.user("bob")
        fs = realm.file_server("files")
        tgt = alice.kerberos.login()
        bob.kerberos.login()

        from repro.core.proxy import grant_public
        from repro.crypto import schnorr
        from repro.crypto.dh import TEST_GROUP
        from repro.crypto.signature import SchnorrSigner
        from repro.errors import ReproError

        identity = schnorr.generate_keypair(TEST_GROUP)
        pk_proxy = grant_public(
            alice.principal, SchnorrSigner(identity), (),
            realm.clock.now(), realm.clock.now() + 100, group=TEST_GROUP,
        )
        with pytest.raises(ReproError):
            bob.kerberos.redeem_tgs_proxy(
                tgt.ticket, pk_proxy, fs.principal
            )

    def test_cross_tgt_reuse_after_expiry(self):
        from repro.testbed import federation

        realms = federation(["XA.ORG", "XB.ORG"], seed=b"edge-cross")
        alice = realms["XA.ORG"].user("alice")
        srv = realms["XB.ORG"].file_server("srv")
        alice.kerberos.get_ticket(srv.principal)
        # Push past every lifetime; the client must transparently redo the
        # whole chain (login, cross TGT, remote TGS).
        realms["XA.ORG"].clock.advance(9 * 3600)
        creds = alice.kerberos.get_ticket(srv.principal)
        assert creds.expires_at > realms["XA.ORG"].clock.now()


class TestMetricsEdgeCases:
    def test_delta_math(self, rng):
        from repro.net import Network

        clock = SimulatedClock(START)
        network = Network(clock, rng=rng)
        network.register(SERVER, lambda m: {"ok": True})
        s0 = network.metrics.snapshot()
        network.send(ALICE, SERVER, "a", {})
        s1 = network.metrics.snapshot()
        network.send(ALICE, SERVER, "b", {})
        delta01 = s0.delta_to(s1)
        delta12 = network.metrics.delta_since(s1)
        assert delta01.messages == 2
        assert delta12.messages == 2
        assert set(delta12.by_type) == {"b", "b-reply"}

    def test_wire_size_positive_and_monotone(self):
        from repro.net.message import Message

        small = Message(
            source=ALICE, destination=SERVER, msg_type="t", payload={}
        )
        big = Message(
            source=ALICE, destination=SERVER, msg_type="t",
            payload={"data": b"x" * 1000},
        )
        assert 0 < small.wire_size() < big.wire_size()
