"""Behavioral tests for the asyncio delivery runtime.

:class:`~repro.net.aio.AioNetwork` promises the synchronous network's
wire semantics behind a thread-safe blocking facade: inline delivery
outside ``serve()`` and for nested handler sends, queued delivery for
client threads, fault legs and unknown-endpoint errors propagated across
the thread boundary, timeouts that compose with the exactly-once
response cache, and a shutdown that leaves neither unanswered senders
nor leaked asyncio tasks behind.
"""

import asyncio
import copy
import threading
import time

import pytest

from repro.clock import SimulatedClock, SystemClock
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    MessageDroppedError,
    NetworkClosedError,
    ReproError,
    RequestTimeoutError,
    ResponseDroppedError,
    UnknownEndpointError,
)
from repro.net.aio import AioNetwork, drive
from repro.net.network import LatencyModel
from repro.net.service import Service
from repro.resil.dedupe import ResponseCache

ALICE = PrincipalId("alice")
ECHO = PrincipalId("echo")
RELAY = PrincipalId("relay")


def simulated_network(**kwargs) -> AioNetwork:
    return AioNetwork(
        SimulatedClock(), rng=Rng(seed=b"aio-runtime-test"), **kwargs
    )


def echo_handler(message):
    return {"echo": message.payload["x"]}


class TestDeliveryPaths:
    def test_send_is_inline_before_serving(self):
        net = simulated_network()
        net.register(ECHO, echo_handler)
        assert net.send(ALICE, ECHO, "ping", {"x": 1}) == {"echo": 1}
        assert net.stats.queued == 0

    def test_client_threads_queue_but_nested_sends_stay_inline(self):
        net = simulated_network()
        threads = {}

        def relay(message):
            threads["relay"] = threading.get_ident()
            inner = net.send(RELAY, ECHO, "ping", {"x": message.payload["x"] + 1})
            return {"relayed": inner["echo"]}

        def echo(message):
            threads["echo"] = threading.get_ident()
            return echo_handler(message)

        net.register(RELAY, relay)
        net.register(ECHO, echo)
        result = drive(net, lambda: net.send(ALICE, RELAY, "ping", {"x": 1}))
        assert result == {"relayed": 2}
        # Only the outer request crossed a queue; the handler's nested
        # send ran inline on the loop thread, as in the sync network.
        assert net.stats.queued == 1
        assert threads["relay"] == threads["echo"]

    def test_unknown_endpoint_raises_through_the_queue(self):
        net = simulated_network()
        net.register(ECHO, echo_handler)

        def body():
            with pytest.raises(UnknownEndpointError):
                net.send(ALICE, PrincipalId("ghost"), "ping", {})
            return net.send(ALICE, ECHO, "ping", {"x": 5})

        assert drive(net, body) == {"echo": 5}

    def test_fault_legs_propagate_across_the_thread_boundary(self):
        net = simulated_network()
        calls = []

        def handler(message):
            calls.append(message.payload["x"])
            return echo_handler(message)

        net.register(ECHO, handler)

        def body():
            net.set_drop_probability(1.0, "request")
            with pytest.raises(MessageDroppedError):
                net.send(ALICE, ECHO, "ping", {"x": 1})
            net.set_drop_probability(0.0, "request")
            net.set_drop_probability(1.0, "response")
            with pytest.raises(ResponseDroppedError):
                net.send(ALICE, ECHO, "ping", {"x": 2})
            net.set_drop_probability(0.0, "response")
            return net.send(ALICE, ECHO, "ping", {"x": 3})

        assert drive(net, body) == {"echo": 3}
        # A dropped request never reached the handler; a dropped response
        # ran it (side effects committed) before the reply was lost.
        assert calls == [2, 3]

    def test_register_while_serving_spawns_a_worker(self):
        net = simulated_network()
        late = PrincipalId("late")

        def body():
            net.register(late, lambda message: {"late": True})
            return net.send(ALICE, late, "ping", {})

        assert drive(net, body) == {"late": True}
        assert net.stats.queued == 1

    def test_busy_inbox_drains_as_batches(self):
        net = simulated_network()

        def slow_echo(message):
            time.sleep(0.02)
            return echo_handler(message)

        net.register(ECHO, slow_echo)

        def burst():
            results = []
            lock = threading.Lock()

            def one(k):
                reply = net.send(ALICE, ECHO, "ping", {"x": k})
                with lock:
                    results.append(reply["echo"])

            workers = [
                threading.Thread(target=one, args=(k,)) for k in range(12)
            ]
            for t in workers:
                t.start()
            for t in workers:
                t.join()
            return results

        results = drive(net, burst)
        assert sorted(results) == list(range(12))
        assert net.stats.queued == 12
        # With a 20 ms handler and 12 concurrent senders, later arrivals
        # pile up behind the busy worker and drain together.
        assert net.stats.batches >= 1
        assert net.stats.batched_messages >= 2
        assert net.stats.max_queue_depth >= 2


class _SlowCounter(Service):
    """Counts invocations; slow enough for a short client timeout."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0

    def op_bump(self, message):
        self.calls += 1
        time.sleep(0.2)
        return {"count": self.calls}


class TestTimeoutsAndShutdown:
    def test_timeout_then_identical_resend_hits_the_dedupe_cache(self):
        clock = SimulatedClock()
        net = AioNetwork(
            clock, rng=Rng(seed=b"aio-timeout"), request_timeout=0.05
        )
        svc = _SlowCounter(
            PrincipalId("counter"), net, clock, dedupe=ResponseCache(clock)
        )
        payload = {"_rid": "r-1", "who": "alice"}

        def body():
            with pytest.raises(RequestTimeoutError):
                net.send(ALICE, svc.principal, "bump", dict(payload))
            # The abandoned delivery still runs to completion server-side
            # (its reply is discarded, like a response lost on the wire).
            time.sleep(0.4)
            net.request_timeout = 10.0
            return net.send(ALICE, svc.principal, "bump", dict(payload))

        reply = drive(net, body)
        # The byte-identical resend was answered from the response cache:
        # the handler's side effects committed exactly once.
        assert reply == {"count": 1}
        assert svc.calls == 1
        assert svc.dedupe.hits == 1
        assert net.stats.timeouts == 1

    def test_serve_exit_leaves_no_tasks_and_overlaps_transit(self):
        net = AioNetwork(
            SystemClock(),
            latency=LatencyModel(base=0.05, jitter=0.0),
            rng=Rng(seed=b"aio-dilated"),
            time_dilation=1.0,
        )
        net.register(ECHO, echo_handler)

        def burst():
            results = []
            lock = threading.Lock()

            def one():
                reply = net.send(ALICE, ECHO, "ping", {"x": 2})
                with lock:
                    results.append(reply)

            workers = [threading.Thread(target=one) for _ in range(8)]
            started = time.perf_counter()
            for t in workers:
                t.start()
            for t in workers:
                t.join()
            return time.perf_counter() - started, results

        async def _main():
            async with net.serve():
                loop = asyncio.get_running_loop()
                elapsed, results = await loop.run_in_executor(None, burst)
            leftover = [
                t for t in asyncio.all_tasks() if t is not asyncio.current_task()
            ]
            return elapsed, results, leftover

        elapsed, results, leftover = asyncio.run(_main())
        assert leftover == []
        assert results == [{"echo": 2}] * 8
        # 8 requests x 100 ms of round-trip transit would serialize to
        # 0.8 s in the sync mode; awaited transits overlap them.
        assert elapsed < 0.5

    def test_shutdown_abandons_requests_still_in_transit(self):
        net = AioNetwork(
            SystemClock(),
            latency=LatencyModel(base=0.5, jitter=0.0),
            rng=Rng(seed=b"aio-shutdown"),
            time_dilation=1.0,
        )
        net.register(ECHO, echo_handler)
        outcome = []

        def body():
            def one():
                try:
                    outcome.append(net.send(ALICE, ECHO, "ping", {"x": 1}))
                except ReproError as exc:
                    outcome.append(exc)

            sender = threading.Thread(target=one)
            sender.start()
            time.sleep(0.1)  # the request is now in dilated transit
            return sender

        sender = drive(net, body)
        sender.join(5.0)
        assert len(outcome) == 1
        assert isinstance(outcome[0], NetworkClosedError)
        assert net.stats.rejected >= 1

    def test_runtime_is_reusable_after_shutdown(self):
        net = simulated_network()
        net.register(ECHO, echo_handler)
        assert drive(net, lambda: net.send(ALICE, ECHO, "ping", {"x": 1})) == {
            "echo": 1
        }
        # Back to inline delivery once the runtime is down...
        assert net.send(ALICE, ECHO, "ping", {"x": 2}) == {"echo": 2}
        # ...and a second serve cycle works on the same instance.
        assert drive(net, lambda: net.send(ALICE, ECHO, "ping", {"x": 3})) == {
            "echo": 3
        }

    def test_serving_twice_concurrently_is_refused(self):
        net = simulated_network()

        async def _main():
            async with net.serve():
                with pytest.raises(RuntimeError):
                    async with net.serve():
                        pass  # pragma: no cover

        asyncio.run(_main())

    def test_asend_from_the_loop(self):
        net = simulated_network()
        net.register(ECHO, echo_handler)

        async def _main():
            async with net.serve():
                return await net.asend(ALICE, ECHO, "ping", {"x": 9})

        assert asyncio.run(_main()) == {"echo": 9}


def _pk_deployment():
    """A public-key end-server, one holder with a signed proxy, no load."""
    from repro.acl import AclEntry, SinglePrincipal
    from repro.core.proxy import grant_public
    from repro.core.restrictions import (
        Authorized,
        AuthorizedEntry,
        IssuedFor,
    )
    from repro.crypto.dh import TEST_GROUP
    from repro.services.pk_endserver import (
        PkClient,
        PkEndServer,
        PublicKeyDirectory,
    )
    from repro.testbed import Realm

    realm = Realm(seed=b"aio-prefetch-test")
    rng = realm.rng.fork(b"pk-test")
    directory = PublicKeyDirectory()
    server = PkEndServer(
        realm.principal("pk-gate"),
        realm.network,
        realm.clock,
        directory,
        group=TEST_GROUP,
        rng=rng,
    )
    server.register_operation(
        "read", lambda rights, claimant, args, amounts: {"data": b"ok"}
    )
    grantor = PkClient(
        realm.principal("grantor"),
        realm.network,
        realm.clock,
        directory,
        group=TEST_GROUP,
        rng=rng,
    )
    server.acl.add(AclEntry(subject=SinglePrincipal(grantor.principal)))
    holder = PkClient(
        realm.principal("holder"),
        realm.network,
        realm.clock,
        directory,
        group=TEST_GROUP,
        rng=rng,
    )
    now = realm.clock.now()
    proxy = grant_public(
        grantor.principal,
        grantor.signer,
        (
            Authorized(entries=(AuthorizedEntry("doc", ("read",)),)),
            IssuedFor(servers=(server.principal,)),
        ),
        now,
        now + 86_400.0,
        rng,
        group=TEST_GROUP,
    )
    return realm, server, holder, proxy


class TestBatchPrefetch:
    def test_prefetch_warms_checks_and_verification_still_passes(self):
        realm, server, holder, proxy = _pk_deployment()
        captured = []
        realm.network.add_tap(captured.append)
        reply = holder.request(
            server.principal,
            "read",
            target="doc",
            args={"path": "doc"},
            proxy=proxy,
            anonymous=False,
        )
        assert reply["data"] == b"ok"
        request = next(m for m in captured if m.msg_type == "request")
        prefetcher = server.signature_prefetcher()
        # Envelope + chain link + possession proof per queued request.
        warmed = prefetcher(
            [("request", request.payload), ("request", request.payload)]
        )
        assert warmed == 6
        # A fresh request after the warm-up still verifies end to end.
        again = holder.request(
            server.principal,
            "read",
            target="doc",
            args={"path": "doc"},
            proxy=proxy,
            anonymous=False,
        )
        assert again["data"] == b"ok"

    def test_prefetch_never_lets_a_tampered_proxy_through(self):
        from repro.core.presentation import PresentedProxy
        from repro.crypto import signature as _signature
        from repro.net.message import raise_if_error

        realm, server, holder, proxy = _pk_deployment()
        captured = []
        realm.network.add_tap(captured.append)
        holder.request(
            server.principal,
            "read",
            target="doc",
            args={"path": "doc"},
            proxy=proxy,
            anonymous=False,
        )
        request = next(m for m in captured if m.msg_type == "request")
        tampered = copy.deepcopy(request.payload)
        sig = tampered["proxy"]["certificates"][0]["signature"]
        tampered["proxy"]["certificates"][0]["signature"] = sig[:-1] + bytes(
            [sig[-1] ^ 1]
        )
        prefetcher = server.signature_prefetcher()
        # The prefetcher swallows the failure (nothing is cached) and
        # keeps warming the rest of the batch.
        assert isinstance(
            prefetcher(
                [("request", tampered), ("request", request.payload)]
            ),
            int,
        )
        # The batched check itself flags the forged link...
        bad = PresentedProxy.from_wire(tampered["proxy"])
        bad_checks = server.verifier.collect_signature_checks(bad)
        errors, _ = _signature.verify_batch(
            bad_checks, rng=Rng(seed=b"aio-tamper")
        )
        assert any(error is not None for error in errors)
        # ...and the server's authoritative verification rejects the
        # request even though the prefetcher saw it first.
        reply = realm.network.send(
            request.source, request.destination, "request", tampered
        )
        with pytest.raises(ReproError):
            raise_if_error(reply)

    def test_prefetch_ignores_malformed_payloads(self):
        _, server, _, _ = _pk_deployment()
        prefetcher = server.signature_prefetcher()
        assert (
            prefetcher(
                [
                    ("request", {"proxy": 42}),
                    ("request", {"proxy": {"certificates": "nope"}}),
                    ("other", {"proxy": {}}),
                    ("request", "not-a-dict"),
                ]
            )
            == 0
        )
