"""Unit tests for the transactional ledger core (repro.ledger)."""

import pytest

from repro.clock import SimulatedClock
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    ConservationError,
    InsufficientFundsError,
    LedgerError,
)
from repro.ledger import (
    INBOUND,
    MINT,
    Account,
    Ledger,
    Leg,
    Posting,
    credit,
    debit,
    place_hold,
    release_hold,
)

ALICE = PrincipalId("alice", "TEST.ORG")
BOB = PrincipalId("bob", "TEST.ORG")


@pytest.fixture
def clock():
    return SimulatedClock(1000.0)


@pytest.fixture
def accounts():
    return {
        "a": Account(name="a", owner=ALICE),
        "b": Account(name="b", owner=BOB),
    }


@pytest.fixture
def ledger(accounts, clock):
    """A ledger seeded (via a MINT posting) with a=100, b=50 usd."""
    led = Ledger(accounts, clock)
    led.post(
        Posting(
            legs=(credit("a", "usd", 100), credit("b", "usd", 50)),
            kind=MINT,
        )
    )
    return led


# ----------------------------------------------------------------------
# Posting validation
# ----------------------------------------------------------------------


class TestPostingValidation:
    def test_balanced_transfer_validates(self):
        Posting(legs=(debit("a", "usd", 5), credit("b", "usd", 5))).validate()

    def test_unbalanced_transfer_is_conservation_error(self):
        with pytest.raises(ConservationError):
            Posting(
                legs=(debit("a", "usd", 5), credit("b", "usd", 6))
            ).validate()

    def test_unbalanced_across_currencies(self):
        with pytest.raises(ConservationError):
            Posting(
                legs=(debit("a", "usd", 5), credit("b", "eur", 5))
            ).validate()

    def test_mint_may_create_funds(self):
        Posting(legs=(credit("a", "usd", 5),), kind=MINT).validate()

    def test_inbound_may_import_funds(self):
        Posting(legs=(credit("a", "usd", 5),), kind=INBOUND).validate()

    def test_empty_posting_rejected(self):
        with pytest.raises(LedgerError):
            Posting(legs=()).validate()

    @pytest.mark.parametrize("amount", [0, -1, True, 1.5, "10"])
    def test_bad_amounts_rejected(self, amount):
        with pytest.raises(LedgerError):
            Posting(legs=(credit("a", "usd", amount),), kind=MINT).validate()

    def test_hold_credit_needs_payee_and_expiry(self):
        with pytest.raises(LedgerError):
            Posting(
                legs=(
                    debit("a", "usd", 5),
                    Leg(
                        account="a",
                        side="credit",
                        currency="usd",
                        amount=5,
                        bucket="hold",
                        hold_id="42",
                    ),
                )
            ).validate()


# ----------------------------------------------------------------------
# Atomic application
# ----------------------------------------------------------------------


class TestAtomicPost:
    def test_transfer_moves_funds(self, ledger, accounts):
        ledger.post(Posting(legs=(debit("a", "usd", 30), credit("b", "usd", 30))))
        assert accounts["a"].balance("usd") == 70
        assert accounts["b"].balance("usd") == 80
        assert ledger.audit_discrepancies() == []

    def test_insufficient_funds_changes_nothing(self, ledger, accounts):
        with pytest.raises(InsufficientFundsError):
            ledger.post(
                Posting(legs=(debit("a", "usd", 1000), credit("b", "usd", 1000)))
            )
        assert accounts["a"].balance("usd") == 100
        assert accounts["b"].balance("usd") == 50
        assert ledger.postings_rolled_back == 1
        assert ledger.audit_discrepancies() == []

    def test_partial_failure_reverses_applied_legs(self, ledger, accounts):
        # The debit leg applies, then the credit to a ghost account fails;
        # the debit must be reversed before the error escapes.
        with pytest.raises(LedgerError):
            ledger.post(
                Posting(legs=(debit("a", "usd", 10), credit("ghost", "usd", 10)))
            )
        assert accounts["a"].balance("usd") == 100
        assert ledger.audit_discrepancies() == []

    def test_debits_apply_before_credits(self, ledger, accounts):
        # Leg order in the posting doesn't matter: debits are applied
        # first, so a same-account credit can't mask an overdraft.
        ledger.post(Posting(legs=(credit("b", "usd", 100), debit("a", "usd", 100))))
        assert accounts["a"].balance("usd") == 0
        assert accounts["b"].balance("usd") == 150

    def test_journal_records_postings(self, ledger):
        before = len(ledger)
        ledger.post(Posting(legs=(debit("a", "usd", 1), credit("b", "usd", 1))))
        assert len(ledger) == before + 1


# ----------------------------------------------------------------------
# Holds
# ----------------------------------------------------------------------


class TestHolds:
    def place(self, ledger):
        ledger.post(
            Posting(
                legs=(
                    debit("a", "usd", 40),
                    place_hold("a", "usd", 40, "chk-1", BOB, 2000.0),
                )
            )
        )

    def test_place_and_release(self, ledger, accounts):
        self.place(ledger)
        assert accounts["a"].balance("usd") == 60
        assert accounts["a"].held_total("usd") == 40
        ledger.post(
            Posting(
                legs=(
                    release_hold("a", "usd", 40, "chk-1"),
                    credit("b", "usd", 40),
                )
            )
        )
        assert accounts["a"].held_total("usd") == 0
        assert accounts["b"].balance("usd") == 90
        assert ledger.audit_discrepancies() == []

    def test_duplicate_hold_rejected(self, ledger, accounts):
        self.place(ledger)
        with pytest.raises(LedgerError):
            ledger.post(
                Posting(
                    legs=(
                        debit("a", "usd", 10),
                        place_hold("a", "usd", 10, "chk-1", BOB, 2000.0),
                    )
                )
            )
        # Rolled back: available unchanged from after the first hold.
        assert accounts["a"].balance("usd") == 60
        assert accounts["a"].held_total("usd") == 40

    def test_release_must_match_hold_exactly(self, ledger, accounts):
        self.place(ledger)
        with pytest.raises(LedgerError):
            ledger.post(
                Posting(
                    legs=(
                        release_hold("a", "usd", 25, "chk-1"),
                        credit("b", "usd", 25),
                    )
                )
            )
        assert accounts["a"].held_total("usd") == 40
        assert ledger.audit_discrepancies() == []

    def test_release_missing_hold_rejected(self, ledger):
        with pytest.raises(LedgerError):
            ledger.post(
                Posting(
                    legs=(
                        release_hold("a", "usd", 5, "nope"),
                        credit("b", "usd", 5),
                    )
                )
            )


# ----------------------------------------------------------------------
# Transactions
# ----------------------------------------------------------------------


class TestTransactions:
    def test_rollback_unwinds_all_postings(self, ledger, accounts):
        with pytest.raises(RuntimeError):
            with ledger.transaction():
                ledger.post(
                    Posting(legs=(debit("a", "usd", 10), credit("b", "usd", 10)))
                )
                ledger.post(
                    Posting(
                        legs=(
                            debit("a", "usd", 20),
                            place_hold("a", "usd", 20, "chk-9", BOB, 2000.0),
                        )
                    )
                )
                raise RuntimeError("handler failed late")
        assert accounts["a"].balance("usd") == 100
        assert accounts["b"].balance("usd") == 50
        assert accounts["a"].holds == {}
        assert ledger.postings_rolled_back == 2
        assert not ledger.in_transaction()
        assert ledger.audit_discrepancies() == []

    def test_commit_keeps_postings(self, ledger, accounts):
        with ledger.transaction():
            ledger.post(
                Posting(legs=(debit("a", "usd", 10), credit("b", "usd", 10)))
            )
        assert accounts["b"].balance("usd") == 60
        assert ledger.audit_discrepancies() == []

    def test_nested_inner_commit_outer_rollback(self, ledger, accounts):
        with pytest.raises(RuntimeError):
            with ledger.transaction():
                with ledger.transaction():
                    ledger.post(
                        Posting(
                            legs=(debit("a", "usd", 10), credit("b", "usd", 10))
                        )
                    )
                raise RuntimeError("outer fails after inner committed")
        assert accounts["a"].balance("usd") == 100
        assert accounts["b"].balance("usd") == 50
        assert ledger.audit_discrepancies() == []

    def test_rollback_removes_dedupe_key(self, ledger, accounts):
        with pytest.raises(RuntimeError):
            with ledger.transaction():
                ledger.post(
                    Posting(legs=(debit("a", "usd", 10), credit("b", "usd", 10))),
                    dedupe_key="rid-1",
                )
                raise RuntimeError("late failure")
        # The key must be forgotten: a client retry after a rolled-back
        # attempt is a *new* application, not a duplicate.
        ledger.post(
            Posting(legs=(debit("a", "usd", 10), credit("b", "usd", 10))),
            dedupe_key="rid-1",
        )
        assert accounts["b"].balance("usd") == 60


# ----------------------------------------------------------------------
# Idempotency
# ----------------------------------------------------------------------


class TestDedupe:
    def test_same_key_applies_once(self, ledger, accounts):
        posting = Posting(legs=(debit("a", "usd", 10), credit("b", "usd", 10)))
        first = ledger.post(posting, dedupe_key="rid-7")
        second = ledger.post(posting, dedupe_key="rid-7")
        assert second is first
        assert accounts["b"].balance("usd") == 60  # applied exactly once
        assert ledger.postings_deduped == 1

    def test_expired_key_reapplies(self, ledger, accounts, clock):
        posting = Posting(legs=(debit("a", "usd", 10), credit("b", "usd", 10)))
        ledger.post(posting, dedupe_key="rid-8")
        clock.advance(ledger.dedupe_window + 1)
        ledger.post(posting, dedupe_key="rid-8")
        assert accounts["b"].balance("usd") == 70

    def test_no_key_never_dedupes(self, ledger, accounts):
        posting = Posting(legs=(debit("a", "usd", 10), credit("b", "usd", 10)))
        ledger.post(posting)
        ledger.post(posting)
        assert accounts["b"].balance("usd") == 70


# ----------------------------------------------------------------------
# Audit and conservation bookkeeping
# ----------------------------------------------------------------------


class TestAudit:
    def test_clean_ledger_has_no_discrepancies(self, ledger):
        ledger.post(Posting(legs=(debit("a", "usd", 5), credit("b", "usd", 5))))
        assert ledger.audit_discrepancies() == []

    def test_out_of_band_mutation_is_reported(self, ledger, accounts):
        accounts["a"].balances["usd"] += 13  # moved outside the ledger
        problems = ledger.audit_discrepancies()
        assert any("a/usd" in p for p in problems)

    def test_totals_match_minted_plus_imported(self, ledger):
        ledger.post(Posting(legs=(credit("b", "usd", 25),), kind=INBOUND))
        ledger.post(Posting(legs=(debit("a", "usd", 30), credit("b", "usd", 30))))
        assert ledger.totals() == {"usd": 175}
        assert ledger.expected_totals() == {"usd": 175}
        assert ledger.minted == {"usd": 150}
        assert ledger.imported == {"usd": 25}

    def test_journal_is_bounded(self, clock):
        fresh = {
            "a": Account(name="a", owner=ALICE, balances={"usd": 0}),
        }
        led = Ledger(fresh, clock, max_journal=10)
        for _ in range(50):
            led.post(Posting(legs=(credit("a", "usd", 1),), kind=MINT))
        assert len(led.journal) == 10
        # Derived totals survive trimming: they are running sums, not
        # journal replays.
        assert led.totals() == {"usd": 50}
