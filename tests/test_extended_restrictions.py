"""Extended restriction vocabulary: use-limit and time-window.

§7 is explicit that its list is not complete ("neither should be construed
as a complete list") and points at the companion TR for more; these two are
implemented in that spirit and exercised end to end.
"""

import pytest

from repro.clock import SimulatedClock
from repro.core.evaluation import RequestContext
from repro.core.replay import AcceptOnceRegistry
from repro.core.restrictions import (
    TimeWindow,
    UseLimit,
    restriction_from_wire,
)
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    ReplayError,
    ReproError,
    RestrictionError,
    RestrictionViolation,
)
from repro.kerberos.proxy_support import grant_via_credentials
from repro.testbed import Realm

ALICE = PrincipalId("alice")
SERVER = PrincipalId("server")


def ctx(registry=None, **kwargs):
    defaults = dict(
        server=SERVER,
        operation="read",
        grantor=ALICE,
        replay_registry=registry,
        link_expires_at=10_000.0,
    )
    defaults.update(kwargs)
    return RequestContext(**defaults)


class TestUseLimitUnit:
    def _registry(self):
        return AcceptOnceRegistry(SimulatedClock(100.0))

    def test_allows_up_to_limit(self):
        registry = self._registry()
        r = UseLimit(identifier="job", limit=3)
        for _ in range(3):
            r.check(ctx(registry))
        with pytest.raises(ReplayError):
            r.check(ctx(registry))

    def test_scoped_per_grantor(self):
        registry = self._registry()
        r = UseLimit(identifier="job", limit=1)
        r.check(ctx(registry))
        r.check(ctx(registry, grantor=PrincipalId("bob")))

    def test_counts_expire_with_link(self):
        clock = SimulatedClock(100.0)
        registry = AcceptOnceRegistry(clock)
        r = UseLimit(identifier="job", limit=1)
        r.check(ctx(registry, link_expires_at=200.0))
        clock.advance(101.0)
        r.check(ctx(registry, link_expires_at=400.0))  # fresh window

    def test_no_registry_fails_closed(self):
        with pytest.raises(RestrictionViolation):
            UseLimit(identifier="x", limit=1).check(ctx(None))

    def test_validation(self):
        with pytest.raises(RestrictionError):
            UseLimit(identifier="", limit=1)
        with pytest.raises(RestrictionError):
            UseLimit(identifier="x", limit=0)

    def test_wire_round_trip(self):
        r = UseLimit(identifier="abc", limit=5)
        assert restriction_from_wire(r.to_wire()) == r

    def test_transactional_rollback(self):
        """A failed request must not consume a use."""
        registry = self._registry()
        r = UseLimit(identifier="job", limit=1)
        with pytest.raises(RuntimeError):
            with registry.transaction():
                r.check(ctx(registry))
                raise RuntimeError("handler failed")
        r.check(ctx(registry))  # still available


class TestTimeWindowUnit:
    def test_inside_window(self):
        TimeWindow(start=9 * 3600, end=17 * 3600).check(
            ctx(time=12 * 3600.0)
        )

    def test_outside_window(self):
        with pytest.raises(RestrictionViolation):
            TimeWindow(start=9 * 3600, end=17 * 3600).check(
                ctx(time=20 * 3600.0)
            )

    def test_wrapping_window(self):
        night = TimeWindow(start=22 * 3600, end=6 * 3600)
        night.check(ctx(time=23 * 3600.0))
        night.check(ctx(time=3 * 3600.0))
        with pytest.raises(RestrictionViolation):
            night.check(ctx(time=12 * 3600.0))

    def test_multi_day_times(self):
        window = TimeWindow(start=9 * 3600, end=17 * 3600)
        window.check(ctx(time=5 * 86_400 + 10 * 3600.0))

    def test_validation(self):
        with pytest.raises(RestrictionError):
            TimeWindow(start=-1, end=10)
        with pytest.raises(RestrictionError):
            TimeWindow(start=5, end=5)

    def test_wire_round_trip(self):
        r = TimeWindow(start=100.0, end=200.0)
        assert restriction_from_wire(r.to_wire()) == r


class TestEndToEnd:
    @pytest.fixture
    def world(self):
        # Start the realm clock at exact midnight so time-of-day is easy.
        realm = Realm(seed=b"ext-restrict", start_time=864_000.0)
        alice = realm.user("alice")
        bob = realm.user("bob")
        fs = realm.file_server("files")
        fs.grant_owner(alice.principal)
        fs.put("doc", b"data")
        return realm, alice, bob, fs

    def test_use_limit_through_file_server(self, world):
        realm, alice, bob, fs = world
        creds = alice.kerberos.get_ticket(fs.principal)
        proxy = grant_via_credentials(
            creds, (UseLimit(identifier="punch", limit=2),), realm.clock.now()
        )
        client = bob.client_for(fs.principal)
        client.request("read", "doc", proxy=proxy, anonymous=True)
        client.request("read", "doc", proxy=proxy, anonymous=True)
        with pytest.raises(ReplayError):
            client.request("read", "doc", proxy=proxy, anonymous=True)

    def test_failed_request_does_not_consume_use(self, world):
        realm, alice, bob, fs = world
        creds = alice.kerberos.get_ticket(fs.principal)
        proxy = grant_via_credentials(
            creds, (UseLimit(identifier="punch", limit=1),), realm.clock.now()
        )
        client = bob.client_for(fs.principal)
        with pytest.raises(ReproError):
            client.request("read", "missing-file", proxy=proxy, anonymous=True)
        # The read failed at the handler; the single use must survive.
        out = client.request("read", "doc", proxy=proxy, anonymous=True)
        assert out["data"] == b"data"

    def test_time_window_through_file_server(self, world):
        realm, alice, bob, fs = world
        creds = alice.kerberos.get_ticket(fs.principal)
        # Early-morning maintenance window only (within ticket lifetime).
        proxy = grant_via_credentials(
            creds,
            (TimeWindow(start=2 * 3600, end=4 * 3600),),
            realm.clock.now(),
        )
        client = bob.client_for(fs.principal)
        with pytest.raises(RestrictionViolation):  # now: midnight
            client.request("read", "doc", proxy=proxy, anonymous=True)
        realm.clock.advance(3 * 3600)  # 03:00 — inside the window
        out = client.request("read", "doc", proxy=proxy, anonymous=True)
        assert out["data"] == b"data"
