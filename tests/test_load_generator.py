"""The concurrent load generator: scenarios, invariants, and the CLI.

Every scenario must complete cleanly in both delivery modes, report
ordered latency percentiles, and hold its post-run invariants (audit
counts, fig5 conservation, usage reconciliation).  The aio engine must
actually overlap principals (``peak_in_flight``), and the ``python -m
repro load`` entry point must exit 0 with greppable ``conservation:`` /
``reconciliation:`` lines — the contract the CI load-smoke job relies
on.
"""

import json

import pytest

from repro.workloads.load import SCENARIOS, LoadConfig, run_load


def small_run(scenario: str, mode: str, **overrides):
    config = dict(
        scenario=scenario,
        principals=4,
        ops=2,
        concurrency=4,
        mode=mode,
        seed=3,
        base_latency=0.0,
        jitter=0.0,
    )
    config.update(overrides)
    return run_load(LoadConfig(**config))


class TestScenarios:
    @pytest.mark.parametrize("mode", ["sync", "aio"])
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_scenario_completes_cleanly(self, scenario, mode):
        report = small_run(scenario, mode)
        assert report.ops_ok == 4 * 2
        assert report.ops_failed == 0
        assert report.problems == []
        assert set(report.percentiles_ms) == {"p50", "p95", "p99"}
        assert (
            report.percentiles_ms["p50"]
            <= report.percentiles_ms["p95"]
            <= report.percentiles_ms["p99"]
        )

    def test_aio_overlaps_principals_sync_serializes_them(self):
        aio = small_run("echo", "aio", principals=24, concurrency=8)
        sync = small_run("echo", "sync", principals=24)
        # Every principal stream starts before the first op resolves, so
        # the peak equals the population; the sync driver is one thread.
        assert aio.peak_in_flight == 24
        assert sync.peak_in_flight == 1
        assert aio.runtime["queued"] == aio.ops_ok
        assert sync.runtime == {}

    def test_identical_seeds_give_identical_sync_wire_traffic(self):
        first = small_run("fig4", "sync")
        second = small_run("fig4", "sync")
        assert (first.messages, first.bytes, first.ops_ok) == (
            second.messages,
            second.bytes,
            second.ops_ok,
        )

    def test_usage_metering_reconciles_with_wire_counters(self):
        report = small_run("fig3", "aio", meter_usage=True)
        assert report.problems == []
        assert report.reconciliation is not None
        assert report.reconciliation.endswith("-> ok")

    def test_fig5_reports_conserved_balances(self):
        report = small_run("fig5", "aio", principals=3)
        assert report.problems == []
        # Every minted dollar is still in a non-settlement account.
        assert report.extras["balances"] == {"dollars": 3 * 10_000}

    def test_render_is_greppable(self):
        report = small_run("echo", "aio")
        text = report.render()
        assert "conservation: ok" in text
        assert "throughput" in text
        assert "p95" in text

    def test_report_round_trips_through_json(self):
        report = small_run("echo", "sync")
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["scenario"] == "echo"
        assert payload["ops_ok"] == report.ops_ok
        assert payload["problems"] == []

    def test_unknown_scenario_and_bad_sizes_are_rejected(self):
        with pytest.raises(ValueError):
            run_load(LoadConfig(scenario="fig9"))
        with pytest.raises(ValueError):
            run_load(LoadConfig(scenario="echo", principals=0))


class TestCli:
    def run_cli(self, argv, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        return excinfo.value.code, capsys.readouterr().out

    def test_load_command_exits_zero_and_prints_invariants(
        self, capsys, tmp_path
    ):
        out_path = tmp_path / "load.json"
        code, out = self.run_cli(
            [
                "load",
                "echo",
                "--principals",
                "16",
                "--ops",
                "2",
                "--concurrency",
                "8",
                "--usage",
                "--json",
                str(out_path),
            ],
            capsys,
        )
        assert code == 0
        assert "conservation: ok" in out
        assert "reconciliation:" in out and "-> ok" in out
        payload = json.loads(out_path.read_text())
        assert payload["ops_ok"] == 32

    def test_load_command_sync_mode(self, capsys):
        code, out = self.run_cli(
            [
                "load",
                "fig1",
                "--mode",
                "sync",
                "--principals",
                "4",
                "--ops",
                "2",
            ],
            capsys,
        )
        assert code == 0
        assert "mode=sync" in out
        assert "conservation: ok" in out
