"""Injectable clocks."""

import pytest

from repro.clock import NEVER, SimulatedClock, SystemClock


class TestSimulatedClock:
    def test_starts_where_told(self):
        assert SimulatedClock(42.0).now() == 42.0

    def test_advance(self):
        clock = SimulatedClock(10.0)
        assert clock.advance(5.0) == 15.0
        assert clock.now() == 15.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_set_forward(self):
        clock = SimulatedClock(1.0)
        clock.set(100.0)
        assert clock.now() == 100.0

    def test_set_backwards_rejected(self):
        clock = SimulatedClock(100.0)
        with pytest.raises(ValueError):
            clock.set(99.0)

    def test_after(self):
        clock = SimulatedClock(50.0)
        assert clock.after(10.0) == 60.0

    def test_never_is_after_everything(self):
        clock = SimulatedClock(0.0)
        clock.advance(1e18)
        assert NEVER > clock.now()


class TestSystemClock:
    def test_monotone_nondecreasing(self):
        clock = SystemClock()
        a = clock.now()
        b = clock.now()
        assert b >= a
