"""Property tests for the crypto substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.crypto import mac, symmetric
from repro.crypto.rng import Rng
from repro.errors import IntegrityError, SignatureError

KEY = symmetric.new_key(Rng(seed=b"prop-key"))
OTHER_KEY = symmetric.new_key(Rng(seed=b"prop-key-2"))


@given(st.binary(max_size=512), st.binary(max_size=32))
def test_seal_unseal_round_trip(plaintext, associated):
    box = symmetric.seal(KEY, plaintext, associated_data=associated)
    assert symmetric.unseal(KEY, box, associated_data=associated) == plaintext


@given(st.binary(max_size=128))
def test_unseal_wrong_key_always_fails(plaintext):
    box = symmetric.seal(KEY, plaintext)
    with pytest.raises(IntegrityError):
        symmetric.unseal(OTHER_KEY, box)


@given(
    st.binary(min_size=1, max_size=128),
    st.integers(min_value=0),
    st.integers(min_value=0, max_value=7),
)
def test_any_bitflip_detected(plaintext, byte_index, bit):
    box = bytearray(symmetric.seal(KEY, plaintext))
    box[byte_index % len(box)] ^= 1 << bit
    with pytest.raises(IntegrityError):
        symmetric.unseal(KEY, bytes(box))


@given(st.binary(max_size=256))
def test_mac_round_trip(message):
    mac.verify(KEY, message, mac.tag(KEY, message))


@given(st.binary(max_size=128), st.binary(max_size=128))
def test_mac_distinguishes_messages(a, b):
    if a != b:
        with pytest.raises(SignatureError):
            mac.verify(KEY, b, mac.tag(KEY, a))


@given(st.integers(min_value=1, max_value=2**64))
def test_rng_int_below_bound(bound):
    rng = Rng(seed=b"bound")
    for _ in range(5):
        assert 0 <= rng.int_below(bound) < bound
