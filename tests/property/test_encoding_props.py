"""Property tests: canonical encoding is a total, injective round-trip."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.canonical import decode, encode

# The closed value space the encoder supports.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**128), max_value=2**128),
    st.floats(allow_nan=False),
    st.binary(max_size=64),
    st.text(max_size=32),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=8), children, max_size=6),
    ),
    max_leaves=20,
)


def normalize(value):
    """Tuples decode as lists; otherwise identity."""
    if isinstance(value, tuple):
        return [normalize(v) for v in value]
    if isinstance(value, list):
        return [normalize(v) for v in value]
    if isinstance(value, dict):
        return {k: normalize(v) for k, v in value.items()}
    return value


@given(values)
def test_round_trip(value):
    assert decode(encode(value)) == normalize(value)


def typed(value):
    """Type-aware canonical form: Python's ``==`` conflates ``False == 0``
    and ``1 == 1.0``, but the encoding (correctly) does not."""
    if isinstance(value, (list, tuple)):
        return ("list", tuple(typed(v) for v in value))
    if isinstance(value, dict):
        return (
            "dict",
            tuple(sorted((k, typed(v)) for k, v in value.items())),
        )
    if isinstance(value, float):
        # 0.0 == -0.0 but they encode differently (distinct IEEE bits).
        import struct

        return ("float", struct.pack(">d", value))
    return (type(value).__name__, value)


@given(values, values)
def test_injective(a, b):
    if typed(a) != typed(b):
        assert encode(a) != encode(b)
    else:
        assert encode(a) == encode(b)


@given(values)
def test_encoding_deterministic(value):
    assert encode(value) == encode(value)


@given(st.binary(max_size=128))
def test_decoder_never_crashes_unexpectedly(blob):
    """Arbitrary bytes either decode or raise DecodingError — nothing else."""
    from repro.errors import DecodingError

    try:
        decode(blob)
    except DecodingError:
        pass
