"""Property: restrictions are additive — derivation never widens rights.

"Each subfield places additional restrictions on the use of credentials,
never removing restrictions or granting additional privileges" (§6.2).

Formally: for any restriction sets A and B and any request context c,
``check_all(A + B, c)`` passing implies ``check_all(A, c)`` passes.  This is
the structural monotonicity the whole delegation model rests on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import RequestContext
from repro.core.restrictions import (
    Authorized,
    AuthorizedEntry,
    Expiration,
    ForUseByGroup,
    Grantee,
    IssuedFor,
    LimitRestriction,
    Quota,
    check_all,
)
from repro.encoding.identifiers import GroupId, PrincipalId
from repro.errors import ReproError

PRINCIPALS = [PrincipalId(n) for n in ("p0", "p1", "p2", "p3")]
SERVERS = [PrincipalId(n) for n in ("s0", "s1")]
GROUPS = [
    GroupId(server=PrincipalId("gs"), group=g) for g in ("g0", "g1", "g2")
]
OPERATIONS = ["read", "write", "delete"]
TARGETS = ["obj/a", "obj/b", "obj/*"]
CURRENCIES = ["c0", "c1"]

principal = st.sampled_from(PRINCIPALS)
group = st.sampled_from(GROUPS)


def restriction_strategy():
    base = st.one_of(
        st.builds(
            Grantee,
            principals=st.lists(principal, min_size=1, max_size=3, unique=True).map(tuple),
        ),
        st.builds(
            ForUseByGroup,
            groups=st.lists(group, min_size=1, max_size=3, unique=True).map(tuple),
        ),
        st.builds(
            IssuedFor,
            servers=st.lists(
                st.sampled_from(SERVERS), min_size=1, max_size=2, unique=True
            ).map(tuple),
        ),
        st.builds(
            Quota,
            currency=st.sampled_from(CURRENCIES),
            limit=st.integers(min_value=0, max_value=50),
        ),
        st.builds(
            Authorized,
            entries=st.lists(
                st.builds(
                    AuthorizedEntry,
                    target=st.sampled_from(TARGETS),
                    operations=st.one_of(
                        st.none(),
                        st.lists(
                            st.sampled_from(OPERATIONS),
                            min_size=1,
                            max_size=3,
                            unique=True,
                        ).map(tuple),
                    ),
                ),
                min_size=1,
                max_size=3,
            ).map(tuple),
        ),
        st.builds(Expiration, not_after=st.floats(min_value=0, max_value=200)),
    )
    limited = st.builds(
        LimitRestriction,
        servers=st.lists(
            st.sampled_from(SERVERS), min_size=1, max_size=2, unique=True
        ).map(tuple),
        restrictions=st.lists(base, min_size=1, max_size=2).map(tuple),
    )
    return st.one_of(base, limited)


restriction_sets = st.lists(restriction_strategy(), max_size=4).map(tuple)

contexts = st.builds(
    RequestContext,
    server=st.sampled_from(SERVERS),
    operation=st.sampled_from(OPERATIONS),
    target=st.one_of(st.none(), st.sampled_from(["obj/a", "obj/b", "obj/c"])),
    claimant=st.one_of(st.none(), principal),
    supporting_groups=st.frozensets(group, max_size=3),
    amounts=st.dictionaries(
        st.sampled_from(CURRENCIES), st.integers(0, 60), max_size=2
    ),
    time=st.floats(min_value=0, max_value=200),
    exercisers=st.frozensets(principal, max_size=3),
)


def passes(restrictions, context):
    try:
        check_all(restrictions, context)
        return True
    except ReproError:
        return False


@given(restriction_sets, restriction_sets, contexts)
def test_adding_restrictions_never_widens(prefix, suffix, context):
    if passes(prefix + suffix, context):
        assert passes(prefix, context)


@given(restriction_sets, contexts)
def test_empty_suffix_is_identity(restrictions, context):
    assert passes(restrictions + (), context) == passes(restrictions, context)


@given(restriction_sets, restriction_sets, contexts)
def test_check_order_irrelevant_for_stateless_restrictions(a, b, context):
    """Without accept-once, conjunction is commutative."""
    assert passes(a + b, context) == passes(b + a, context)


@given(restriction_sets, contexts)
def test_policy_agrees_with_dynamic_check_on_authorized(restrictions, context):
    """Static may_perform is never *more* permissive than the dynamic check
    for requests that fail only on the authorized restriction."""
    from repro.core.policy import may_perform

    if passes(restrictions, context):
        assert may_perform(
            restrictions, context.operation, context.target,
            server=context.server,
        )
