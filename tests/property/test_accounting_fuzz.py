"""Property: every accounting operation survives malformed arguments.

Two layers:

* A hypothesis sweep that throws randomized junk arguments at *every*
  registered accounting operation over a live session, requiring that the
  server either serves the request or rejects it cleanly — and that
  conservation and ledger/account audit parity hold afterwards, so a
  rejection can never be a half-applied mutation.
* Short seeded campaigns of the full workload fuzzer
  (:func:`repro.ledger.fuzz.run_fuzz`), the same engine CI runs at larger
  scale, across both bank topologies and with fault injection.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.ledger.fuzz import non_settlement_totals, run_fuzz
from repro.services.accounting import SETTLEMENT_PREFIX
from repro.testbed import Realm

OPERATIONS = [
    "open-account",
    "balance",
    "transfer",
    "debit",
    "deposit-check",
    "collect-check",
    "certify-check",
    "cancel-certified-check",
    "purchase-cashiers-check",
]

CURRENCIES = ["dollars", "pages"]

#: Junk argument values: wrong types, out-of-range numbers, absent keys.
junk_value = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**12), 10**12),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=12),
    st.sampled_from(
        ["alice", "bob", "ghost", "cashier", f"{SETTLEMENT_PREFIX}bank"]
    ),
    st.lists(st.integers(), max_size=3),
)

junk_args = st.dictionaries(
    st.sampled_from(
        [
            "account",
            "to",
            "currency",
            "amount",
            "credit_account",
            "check_number",
            "payee",
            "payor_server",
            "payor_account",
            "payee_account",
            "end_server",
            "expires_at",
            "bundle",
        ]
    ),
    junk_value,
    max_size=6,
)

call = st.tuples(
    st.sampled_from(OPERATIONS),
    st.sampled_from(["account:alice", "account:ghost", None, "junk"]),
    junk_args,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(call, max_size=6), st.integers(0, 2**32))
def test_malformed_arguments_never_corrupt_the_books(calls, seed):
    realm = Realm(seed=b"malformed-%d" % seed)
    bank = realm.accounting_server("bank")
    alice = realm.user("alice")
    bank.create_account(
        "alice", alice.principal, {c: 500 for c in CURRENCIES}
    )
    client = alice.client_for(bank.principal)
    before = non_settlement_totals([bank])

    for operation, target, args in calls:
        try:
            client.request(operation, target=target, args=args)
        except ReproError:
            pass  # clean rejection is the expected outcome
        # Whatever happened, the books must balance and match the ledger.
        assert non_settlement_totals([bank]) == before
        assert bank.ledger.audit_discrepancies() == []
        assert not bank.ledger.in_transaction()


def test_fuzz_campaign_two_banks():
    report = run_fuzz(seed=101, episodes=40, banks=2)
    assert report.ok, report.violations
    assert report.accepted > 0 and report.rejected > 0
    assert report.postings_applied > 0


def test_fuzz_campaign_three_banks_routed():
    report = run_fuzz(seed=202, episodes=40, banks=3)
    assert report.ok, report.violations


def test_fuzz_campaign_with_faults():
    report = run_fuzz(seed=303, episodes=40, banks=2, faults=True)
    assert report.ok, report.violations


def test_fuzz_is_deterministic():
    first = run_fuzz(seed=7, episodes=25, banks=2).summary()
    second = run_fuzz(seed=7, episodes=25, banks=2).summary()
    assert first == second
