"""Property: chain verification is sound under arbitrary tampering.

A cascaded chain verifies iff every link is exactly as its signer made it.
We build honest chains, apply a random structural mutation (flip a byte in
a signature, swap restrictions, stretch expiry, reorder, drop or duplicate
links), and assert verification rejects every mutated chain — while the
untouched chain still verifies.
"""

import dataclasses

from hypothesis import assume, given, settings
from hypothesis import strategies as st

import pytest

from repro.clock import SimulatedClock
from repro.core.evaluation import RequestContext
from repro.core.presentation import PresentedProxy, present
from repro.core.proxy import cascade, grant_conventional
from repro.core.restrictions import Quota
from repro.core.verification import ProxyVerifier, SharedKeyCrypto
from repro.crypto.keys import SymmetricKey
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.errors import ReproError

ALICE = PrincipalId("alice")
SERVER = PrincipalId("server")
START = 1_000_000.0


def build(seed: int, length: int):
    rng = Rng(seed=b"chain-%d" % seed)
    shared = SymmetricKey.generate(rng=rng)
    clock = SimulatedClock(START)
    verifier = ProxyVerifier(
        server=SERVER, crypto=SharedKeyCrypto({ALICE: shared}), clock=clock
    )
    proxy = grant_conventional(ALICE, shared, (), START, START + 3600, rng)
    for i in range(length - 1):
        proxy = cascade(
            proxy, (Quota(currency=f"c{i}", limit=10),),
            START, START + 3600, rng,
        )
    return clock, verifier, proxy


def verifies(verifier, clock, certs, proxy):
    presented = PresentedProxy(
        certificates=certs,
        proof=present(proxy, SERVER, clock.now(), "read").proof,
    )
    try:
        verifier.verify(
            presented, RequestContext(server=SERVER, operation="read")
        )
        return True
    except ReproError:
        return False


MUTATIONS = [
    "flip_signature",
    "loosen_restriction",
    "stretch_expiry",
    "drop_middle",
    "duplicate_link",
    "swap_links",
    "rename_grantor",
]


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    length=st.integers(2, 5),
    mutation=st.sampled_from(MUTATIONS),
    index=st.integers(0, 4),
    byte=st.integers(0, 31),
)
def test_any_tampering_rejected(seed, length, mutation, index, byte):
    clock, verifier, proxy = build(seed, length)
    certs = list(proxy.certificates)
    assert verifies(verifier, clock, tuple(certs), proxy)

    i = index % len(certs)
    if mutation == "flip_signature":
        sig = bytearray(certs[i].signature)
        sig[byte % len(sig)] ^= 0x01
        certs[i] = dataclasses.replace(certs[i], signature=bytes(sig))
    elif mutation == "loosen_restriction":
        assume(certs[i].restrictions)
        certs[i] = dataclasses.replace(
            certs[i], restrictions=()
        )
    elif mutation == "stretch_expiry":
        certs[i] = dataclasses.replace(
            certs[i], expires_at=certs[i].expires_at + 9999.0
        )
    elif mutation == "drop_middle":
        assume(len(certs) >= 3)
        del certs[1 + (index % (len(certs) - 2))]
    elif mutation == "duplicate_link":
        assume(len(certs) >= 2)
        j = 1 + (index % (len(certs) - 1))
        certs.insert(j, certs[j])
    elif mutation == "swap_links":
        assume(len(certs) >= 3)
        certs[1], certs[2] = certs[2], certs[1]
    elif mutation == "rename_grantor":
        certs[i] = dataclasses.replace(
            certs[i], grantor=PrincipalId("mallory")
        )
        if i == 0:
            # Give mallory a resolvable key so the rejection is about the
            # signature, not a missing directory entry.
            verifier.crypto.add_shared_key(
                PrincipalId("mallory"),
                SymmetricKey.generate(rng=Rng(seed=b"m")),
            )

    assert not verifies(verifier, clock, tuple(certs), proxy)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), length=st.integers(1, 6))
def test_honest_chains_always_verify(seed, length):
    clock, verifier, proxy = build(seed, length)
    assert verifies(verifier, clock, proxy.certificates, proxy)
