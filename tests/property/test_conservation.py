"""Property: accounting conserves funds (§4).

Under any sequence of transfers, check writes/deposits (same- and
cross-server), certifications, and cancellations, the total of every
currency across all *non-settlement* accounts — including held funds — never
changes.  Settlement accounts are excluded because they are the local image
of a claim whose other side lives on the peer server (the cross-server test
asserts the two-server total instead).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.services.accounting import SETTLEMENT_PREFIX
from repro.testbed import Realm

N_USERS = 3
CURRENCIES = ["dollars", "pages"]
INITIAL = 200


def total(servers, currency):
    return sum(
        account.balance(currency) + account.held_total(currency)
        for server in servers
        for name, account in server.accounts.items()
        if not name.startswith(SETTLEMENT_PREFIX)
    )


op = st.one_of(
    st.tuples(
        st.just("transfer"),
        st.integers(0, N_USERS - 1),  # payor
        st.integers(0, N_USERS - 1),  # payee
        st.sampled_from(CURRENCIES),
        st.integers(1, 80),
    ),
    st.tuples(
        st.just("check"),
        st.integers(0, N_USERS - 1),
        st.integers(0, N_USERS - 1),
        st.sampled_from(CURRENCIES),
        st.integers(1, 80),
    ),
    st.tuples(
        st.just("certified"),
        st.integers(0, N_USERS - 1),
        st.integers(0, N_USERS - 1),
        st.sampled_from(CURRENCIES),
        st.integers(1, 80),
    ),
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(op, max_size=8), st.integers(0, 2**32))
def test_funds_conserved(operations, seed):
    realm = Realm(seed=b"conserve-%d" % seed)
    banks = [
        realm.accounting_server("bank-a"),
        realm.accounting_server("bank-b"),
    ]
    users = []
    for index in range(N_USERS):
        user = realm.user(f"user{index}")
        bank = banks[index % 2]
        bank.create_account(
            f"user{index}", user.principal,
            {c: INITIAL for c in CURRENCIES},
        )
        users.append((user, bank))

    before = {c: total(banks, c) for c in CURRENCIES}

    for operation in operations:
        kind, payor_i, payee_i, currency, amount = operation
        payor, payor_bank = users[payor_i]
        payee, payee_bank = users[payee_i]
        client = payor.accounting_client(payor_bank.principal)
        try:
            if kind == "transfer":
                if payor_bank is payee_bank and payor_i != payee_i:
                    client.transfer(
                        f"user{payor_i}", f"user{payee_i}", currency, amount
                    )
            elif kind == "check":
                if payor_i != payee_i:
                    check = client.write_check(
                        f"user{payor_i}", payee.principal, currency, amount
                    )
                    payee.accounting_client(
                        payee_bank.principal
                    ).deposit_check(check, f"user{payee_i}")
            elif kind == "certified":
                if payor_i != payee_i:
                    check = client.write_check(
                        f"user{payor_i}", payee.principal, currency, amount
                    )
                    client.certify_check(check, payee_bank.principal)
                    payee.accounting_client(
                        payee_bank.principal
                    ).deposit_check(check, f"user{payee_i}")
        except ReproError:
            # Insufficient funds, replay, etc. — rejected operations must
            # also conserve.
            pass

    after = {c: total(banks, c) for c in CURRENCIES}
    assert after == before


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 80), st.integers(0, 2**32))
def test_settlement_accounts_mirror_cross_server_flow(amount, seed):
    """Cross-server clearing books the same amount on both sides."""
    realm = Realm(seed=b"settle-%d" % seed)
    bank_a = realm.accounting_server("bank-a")
    bank_b = realm.accounting_server("bank-b")
    alice = realm.user("alice")
    bob = realm.user("bob")
    bank_a.create_account("alice", alice.principal, {"dollars": 100})
    bank_b.create_account("bob", bob.principal)
    if amount > 100:
        return
    check = alice.accounting_client(bank_a.principal).write_check(
        "alice", bob.principal, "dollars", amount
    )
    bob.accounting_client(bank_b.principal).deposit_check(check, "bob")
    settlement = bank_a.accounts[f"{SETTLEMENT_PREFIX}bank-b"]
    assert settlement.balance("dollars") == amount
    assert bank_b.accounts["bob"].balance("dollars") == amount
