"""Property: accept-once means at most once per (grantor, id) per window."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import SimulatedClock
from repro.core.replay import AcceptOnceRegistry, AuthenticatorCache
from repro.encoding.identifiers import PrincipalId

GRANTORS = [PrincipalId(f"g{i}") for i in range(3)]

events = st.lists(
    st.tuples(
        st.integers(0, 2),          # grantor index
        st.sampled_from("abcde"),   # identifier
        st.floats(min_value=0.0, max_value=50.0),  # clock advance before
        st.floats(min_value=1.0, max_value=100.0),  # ttl
    ),
    max_size=30,
)


@given(events)
def test_at_most_once_within_lifetime(sequence):
    clock = SimulatedClock(0.0)
    registry = AcceptOnceRegistry(clock)
    live = {}  # (grantor, id) -> expiry of the accepted registration
    for grantor_i, identifier, advance, ttl in sequence:
        clock.advance(advance)
        grantor = GRANTORS[grantor_i]
        key = (grantor, identifier)
        accepted = registry.register(grantor, identifier, clock.now() + ttl)
        previously_live = key in live and live[key] >= clock.now()
        # Accepted iff no live registration existed.
        assert accepted == (not previously_live)
        if accepted:
            live[key] = clock.now() + ttl


@given(
    st.lists(
        st.tuples(st.binary(min_size=1, max_size=4), st.floats(0, 30)),
        max_size=30,
    )
)
def test_authenticator_cache_window(sequence):
    window = 20.0
    clock = SimulatedClock(0.0)
    cache = AuthenticatorCache(clock, window=window)
    last_accepted = {}
    for digest, advance in sequence:
        clock.advance(advance)
        accepted = cache.register(digest)
        if digest in last_accepted:
            expected = clock.now() > last_accepted[digest] + window
        else:
            expected = True
        assert accepted == expected
        if accepted:
            last_accepted[digest] = clock.now()
