"""Property: sealed tickets and authenticators reject any bit-level tampering."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.crypto.keys import SymmetricKey
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.errors import TicketError
from repro.kerberos.ticket import (
    Authenticator,
    AuthenticatorBody,
    Ticket,
    TicketBody,
)

RNG = Rng(seed=b"ticket-fuzz")
SERVER_KEY = SymmetricKey.generate(rng=RNG)
SESSION_KEY = SymmetricKey.generate(rng=RNG)

BODY = TicketBody(
    client=PrincipalId("alice"),
    server=PrincipalId("server"),
    session_key=SESSION_KEY,
    auth_time=0.0,
    expires_at=3600.0,
)


@settings(max_examples=80, deadline=None)
@given(
    byte_index=st.integers(min_value=0),
    bit=st.integers(0, 7),
)
def test_ticket_bitflips_rejected(byte_index, bit):
    ticket = Ticket.seal(BODY, SERVER_KEY, rng=RNG)
    blob = bytearray(ticket.blob)
    blob[byte_index % len(blob)] ^= 1 << bit
    tampered = Ticket(server=ticket.server, blob=bytes(blob))
    with pytest.raises(TicketError):
        tampered.open(SERVER_KEY)


@settings(max_examples=80, deadline=None)
@given(
    byte_index=st.integers(min_value=0),
    bit=st.integers(0, 7),
)
def test_authenticator_bitflips_rejected(byte_index, bit):
    auth = Authenticator.seal(
        AuthenticatorBody(client=PrincipalId("alice"), timestamp=1.0),
        SESSION_KEY,
        rng=RNG,
    )
    blob = bytearray(auth.blob)
    blob[byte_index % len(blob)] ^= 1 << bit
    with pytest.raises(TicketError):
        Authenticator(blob=bytes(blob)).open(SESSION_KEY)


@settings(max_examples=30, deadline=None)
@given(st.binary(max_size=200))
def test_garbage_blobs_rejected(blob):
    with pytest.raises(TicketError):
        Ticket(server=PrincipalId("server"), blob=blob).open(SERVER_KEY)
