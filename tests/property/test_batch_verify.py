"""Batch-vs-sequential verification parity: batching may only change speed.

The batched stage 1–2 walk and the Schnorr multi-scalar check must be
observationally identical to one-at-a-time verification: the same chains
accepted, the same chains rejected, with the same exception types and
messages — for valid chains, forged certificates at every position,
swapped messages, and duplicated signatures.  The weighted aggregate
check must also be deterministic under a fixed seed, including the
bisection fallback path.
"""

import dataclasses

import pytest

from repro.clock import SimulatedClock
from repro.core.evaluation import RequestContext
from repro.core.presentation import present
from repro.core.proxy import (
    cascade,
    delegate_cascade,
    grant_public,
)
from repro.core.restrictions import Grantee
from repro.core.vcache import DEFAULT_CONFIG, DISABLED_CONFIG, override
from repro.core.verification import ProxyVerifier, PublicKeyCrypto
from repro.crypto import schnorr
from repro.crypto.dh import DEFAULT_GROUP, TEST_GROUP
from repro.crypto.rng import Rng
from repro.crypto.signature import SchnorrSigner, verify_batch
from repro.encoding.identifiers import PrincipalId
from repro.errors import ReproError, SignatureError

START = 1_000_000.0
ALICE = PrincipalId("alice")
CAROL = PrincipalId("carol")
SERVER = PrincipalId("server")

BATCH_OFF = dataclasses.replace(DEFAULT_CONFIG, batch_verify=False)
COLD_ON = dataclasses.replace(DISABLED_CONFIG, batch_verify=True)
COLD_OFF = dataclasses.replace(DISABLED_CONFIG, batch_verify=False)


# ---------------------------------------------------------------------------
# schnorr.verify_batch directly
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def signed_batch():
    """Eight (key, message, signature) triples from two signers."""
    rng = Rng(seed=b"batch-props")
    keys = [schnorr.generate_keypair(TEST_GROUP, rng=rng) for _ in range(2)]
    items = []
    for i in range(8):
        key = keys[i % 2]
        message = b"message-%d" % i
        items.append(
            (key.public, message, schnorr.sign(key, message, rng=rng))
        )
    return items


class TestSchnorrVerifyBatch:
    def test_empty_batch(self):
        errors, probes = schnorr.verify_batch([])
        assert errors == [] and probes == 0

    def test_all_valid(self, signed_batch):
        errors, probes = schnorr.verify_batch(
            signed_batch, rng=Rng(seed=b"w")
        )
        assert errors == [None] * len(signed_batch)
        assert probes == 0

    @pytest.mark.parametrize("position", range(8))
    def test_single_forgery_attributed_exactly(self, signed_batch, position):
        items = list(signed_batch)
        key, message, _ = items[position]
        # A valid signature over a *different* message: forged content.
        items[position] = (key, message, signed_batch[position - 1][2])
        errors, _ = schnorr.verify_batch(items, rng=Rng(seed=b"w"))
        for index, error in enumerate(errors):
            if index == position:
                assert str(error) == "schnorr signature verification failed"
            else:
                assert error is None

    def test_malformed_signatures_get_sequential_messages(self, signed_batch):
        key, message, good = signed_batch[0]
        out_of_range = b"\xff" * len(good)
        items = [
            (key, message, good),
            (key, message, b"\x00"),
            (key, message, out_of_range),
        ]
        errors, _ = schnorr.verify_batch(items, rng=Rng(seed=b"w"))
        assert errors[0] is None
        assert str(errors[1]) == "schnorr signature has wrong length"
        assert str(errors[2]) == "schnorr signature values out of range"
        # Identical to what sequential verify raises.
        for item, error in zip(items[1:], errors[1:]):
            with pytest.raises(SignatureError) as caught:
                schnorr.verify(*item)
            assert str(caught.value) == str(error)

    def test_mixed_groups_verify_together(self):
        rng = Rng(seed=b"mixed-groups")
        small = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        large = schnorr.generate_keypair(DEFAULT_GROUP, rng=rng)
        items = [
            (small.public, b"a", schnorr.sign(small, b"a", rng=rng)),
            (large.public, b"b", schnorr.sign(large, b"b", rng=rng)),
            (small.public, b"c", schnorr.sign(small, b"c", rng=rng)),
        ]
        errors, _ = schnorr.verify_batch(items, rng=Rng(seed=b"w"))
        assert errors == [None, None, None]

    def test_deterministic_under_fixed_seed(self, signed_batch):
        items = list(signed_batch)
        items[3] = (items[3][0], items[3][1], items[4][2])
        runs = []
        for _ in range(2):
            errors, probes = schnorr.verify_batch(items, rng=Rng(seed=b"det"))
            runs.append(([str(e) if e else None for e in errors], probes))
        assert runs[0] == runs[1]

    def test_bisection_repairs_corrupted_table(self, signed_batch):
        """A damaged generator table triggers the aggregate-check fallback:
        bisection recomputes the bad entries natively, so every verdict is
        still correct — and the walk is deterministic under a fixed seed."""
        p = TEST_GROUP.p
        table = schnorr._generator_table(schnorr._params(p))
        original = list(table._rows[0])
        runs = []
        try:
            # Damage every nonzero digit of the low window so any exponent
            # with a nonzero low digit computes a wrong power.
            table._rows[0] = [1] + [
                (entry * 3) % p for entry in original[1:]
            ]
            for _ in range(2):
                errors, probes = schnorr.verify_batch(
                    signed_batch, rng=Rng(seed=b"det")
                )
                runs.append((errors, probes))
        finally:
            table._rows[0] = original
        for errors, probes in runs:
            assert errors == [None] * len(signed_batch)
            assert probes > 0
        assert runs[0][1] == runs[1][1]

    def test_corrupted_table_never_flips_a_single_verify(self, signed_batch):
        """Single-signature verify re-checks failures natively, so a broken
        table cannot reject a valid signature."""
        p = TEST_GROUP.p
        table = schnorr._generator_table(schnorr._params(p))
        original = list(table._rows[0])
        try:
            table._rows[0] = [1] + [
                (entry * 3) % p for entry in original[1:]
            ]
            for key, message, signature in signed_batch:
                schnorr.verify(key, message, signature)  # no raise
        finally:
            table._rows[0] = original

    def test_precompute_toggle_changes_nothing_observable(self, signed_batch):
        previous = schnorr.set_precompute(False)
        try:
            errors, probes = schnorr.verify_batch(
                signed_batch, rng=Rng(seed=b"w")
            )
            assert errors == [None] * len(signed_batch)
            for key, message, signature in signed_batch:
                schnorr.verify(key, message, signature)
        finally:
            schnorr.set_precompute(previous)
        assert probes == 0


class TestSignatureVerifyBatch:
    def test_wrong_scheme_byte_matches_sequential(self, signed_batch):
        from repro.crypto.signature import SchnorrVerifier

        key, message, raw = signed_batch[0]
        v = SchnorrVerifier(public=key)
        good = b"\x03" + raw
        bad_scheme = b"\x02" + raw
        errors, stats = verify_batch(
            [(v, message, good), (v, message, bad_scheme)],
            rng=Rng(seed=b"w"),
        )
        assert errors[0] is None
        assert str(errors[1]) == "not a Schnorr signature"
        assert stats.signatures == 1


# ---------------------------------------------------------------------------
# Chain-level parity through ProxyVerifier
# ---------------------------------------------------------------------------

def build_bearer_chain(depth, seed=b"batch-bearer"):
    """An all-Schnorr bearer cascade of ``depth`` links."""
    rng = Rng(seed=seed)
    clock = SimulatedClock(START)
    identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
    proxy = grant_public(
        ALICE, SchnorrSigner(identity), (), START, START + 3600, rng,
        group=TEST_GROUP,
    )
    for _ in range(depth - 1):
        proxy = cascade(proxy, (), START, START + 3600, rng)
    crypto = PublicKeyCrypto(
        directory={ALICE: SchnorrSigner(identity).verifier()}
    )
    return clock, crypto, proxy, None


def build_delegate_chain(depth, seed=b"batch-delegate"):
    """An audit-trail cascade: every link signed by a registered identity."""
    rng = Rng(seed=seed)
    clock = SimulatedClock(START)
    directory = {}
    identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
    directory[ALICE] = SchnorrSigner(identity).verifier()
    intermediates = [
        PrincipalId(f"relay-{i}") for i in range(depth - 1)
    ]
    first_grantee = intermediates[0] if intermediates else CAROL
    proxy = grant_public(
        ALICE, SchnorrSigner(identity),
        (Grantee(principals=(first_grantee,)),),
        START, START + 3600, rng, group=TEST_GROUP,
    )
    for i, relay in enumerate(intermediates):
        relay_identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        directory[relay] = SchnorrSigner(relay_identity).verifier()
        next_grantee = (
            intermediates[i + 1] if i + 1 < len(intermediates) else CAROL
        )
        proxy = delegate_cascade(
            proxy, relay, SchnorrSigner(relay_identity), next_grantee,
            (), START, START + 3600, rng=rng, group=TEST_GROUP,
        )
    return clock, PublicKeyCrypto(directory=directory), proxy, CAROL


def outcome(builder, depth, config, tamper=None, rounds=1):
    """Run verification and normalize the result for comparison."""
    clock, crypto, proxy, claimant = builder(depth)
    certs = proxy.certificates
    if tamper is not None:
        certs = tamper(certs)
    with override(config):
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        context = RequestContext(
            server=SERVER, operation="read", claimant=claimant
        )
        results = []
        for _ in range(rounds):
            presented = present(
                proxy, SERVER, clock.now(), "read", claimant=claimant
            )
            presented = dataclasses.replace(presented, certificates=certs)
            try:
                results.append(("ok", verifier.verify(presented, context)))
            except ReproError as exc:
                results.append((type(exc).__name__, str(exc)))
        return results


def forge_link(position):
    """Replace link ``position``'s signature with one over other content."""

    def tamper(certs):
        certs = list(certs)
        donor = certs[(position + 1) % len(certs)]
        certs[position] = dataclasses.replace(
            certs[position], signature=donor.signature
        )
        return tuple(certs)

    return tamper


def flip_signature_byte(position, offset=5):
    def tamper(certs):
        certs = list(certs)
        sig = bytearray(certs[position].signature)
        sig[offset] ^= 0x01
        certs[position] = dataclasses.replace(
            certs[position], signature=bytes(sig)
        )
        return tuple(certs)

    return tamper


def swap_signatures(i, j):
    """Both links keep valid signatures — over each other's messages."""

    def tamper(certs):
        certs = list(certs)
        si, sj = certs[i].signature, certs[j].signature
        certs[i] = dataclasses.replace(certs[i], signature=sj)
        certs[j] = dataclasses.replace(certs[j], signature=si)
        return tuple(certs)

    return tamper


CONFIG_PAIRS = [
    pytest.param(DEFAULT_CONFIG, BATCH_OFF, id="cached"),
    pytest.param(COLD_ON, COLD_OFF, id="cold"),
]


@pytest.mark.parametrize("builder", [build_bearer_chain, build_delegate_chain],
                         ids=["bearer", "delegate"])
@pytest.mark.parametrize("batched,sequential", CONFIG_PAIRS)
@pytest.mark.parametrize("depth", [1, 2, 4, 6])
def test_valid_chain_parity(builder, batched, sequential, depth):
    on = outcome(builder, depth, batched, rounds=2)
    off = outcome(builder, depth, sequential, rounds=2)
    assert on == off
    assert on[0][0] == "ok"


@pytest.mark.parametrize("builder", [build_bearer_chain, build_delegate_chain],
                         ids=["bearer", "delegate"])
@pytest.mark.parametrize("batched,sequential", CONFIG_PAIRS)
@pytest.mark.parametrize("position", range(4))
def test_forged_cert_parity_at_every_position(
    builder, batched, sequential, position
):
    """A signature lifted from another link must be rejected identically —
    same exception type, same message naming the same link."""
    depth = 4
    on = outcome(builder, depth, batched, tamper=forge_link(position))
    off = outcome(builder, depth, sequential, tamper=forge_link(position))
    assert on == off
    assert on[0][0] == "ProxyVerificationError"
    assert f"signature of link {position} invalid" in on[0][1]


@pytest.mark.parametrize("batched,sequential", CONFIG_PAIRS)
@pytest.mark.parametrize("position", range(4))
def test_bitflipped_signature_parity(batched, sequential, position):
    on = outcome(
        build_bearer_chain, 4, batched, tamper=flip_signature_byte(position)
    )
    off = outcome(
        build_bearer_chain, 4, sequential,
        tamper=flip_signature_byte(position),
    )
    assert on == off
    assert on[0][0] == "ProxyVerificationError"


@pytest.mark.parametrize("builder", [build_bearer_chain, build_delegate_chain],
                         ids=["bearer", "delegate"])
@pytest.mark.parametrize("batched,sequential", CONFIG_PAIRS)
def test_swapped_messages_parity(builder, batched, sequential):
    """Two valid signatures attached to each other's certificates: both
    wrong, and the *first* must be the one reported, batched or not."""
    on = outcome(builder, 4, batched, tamper=swap_signatures(1, 3))
    off = outcome(builder, 4, sequential, tamper=swap_signatures(1, 3))
    assert on == off
    assert "signature of link 1 invalid" in on[0][1]


@pytest.mark.parametrize("batched,sequential", CONFIG_PAIRS)
def test_duplicated_signature_parity(batched, sequential):
    """The same signature bytes appearing on two links (valid on the first,
    forged on the second) must reject the second link identically."""

    def tamper(certs):
        certs = list(certs)
        certs[2] = dataclasses.replace(
            certs[2], signature=certs[1].signature
        )
        return tuple(certs)

    on = outcome(build_bearer_chain, 4, batched, tamper=tamper)
    off = outcome(build_bearer_chain, 4, sequential, tamper=tamper)
    assert on == off
    assert "signature of link 2 invalid" in on[0][1]


@pytest.mark.parametrize("batched,sequential", CONFIG_PAIRS)
def test_forged_link_beats_later_non_signature_failure(batched, sequential):
    """Error-ordering parity: a forged signature at link 1 outranks an
    unknown grantor at link 3, exactly as in the sequential walk."""

    def tamper(certs):
        certs = forge_link(1)(certs)
        return certs

    def run(config):
        clock, crypto, proxy, claimant = build_delegate_chain(4)
        # Make link 3's grantor unresolvable; sequential verification
        # never reaches it because link 1's signature fails first.
        crypto.remove_principal(proxy.certificates[3].grantor)
        certs = tamper(proxy.certificates)
        with override(config):
            verifier = ProxyVerifier(
                server=SERVER, crypto=crypto, clock=clock
            )
            presented = present(
                proxy, SERVER, clock.now(), "read", claimant=claimant
            )
            presented = dataclasses.replace(presented, certificates=certs)
            context = RequestContext(
                server=SERVER, operation="read", claimant=claimant
            )
            try:
                verifier.verify(presented, context)
                return ("ok",)
            except ReproError as exc:
                return (type(exc).__name__, str(exc))

    on, off = run(batched), run(sequential)
    assert on == off
    assert "signature of link 1 invalid" in on[1]


def test_identity_keys_get_precompute_tables():
    """The batched walk registers recurring grantor/delegate identity keys
    for fixed-base precomputation on first sight."""
    schnorr.clear_key_tables()
    try:
        results = outcome(build_delegate_chain, 4, DEFAULT_CONFIG)
        assert results[0][0] == "ok"
        # Root grantor + three relay identities.
        assert schnorr.registered_key_count() == 4
    finally:
        schnorr.clear_key_tables()
