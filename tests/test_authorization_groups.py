"""Authorization server (§3.2, Fig. 3) and group server (§3.3)."""

import pytest

from repro.acl import AclEntry, GroupSubject, SinglePrincipal
from repro.core.restrictions import IssuedFor, Quota
from repro.errors import (
    AuthorizationDenied,
    RestrictionViolation,
    ServiceError,
)
from repro.testbed import Realm


@pytest.fixture
def world():
    realm = Realm(seed=b"authz-test")
    alice = realm.user("alice")
    bob = realm.user("bob")
    fs = realm.file_server("files")
    fs.put("doc/x", b"X")
    azs = realm.authorization_server("authz")
    # Fig. 3: end-server S grants (full) access to authorization server R.
    fs.acl.add(AclEntry(subject=SinglePrincipal(azs.principal)))
    return realm, alice, bob, fs, azs


class TestAuthorizationServer:
    def test_fig3_flow(self, world):
        realm, alice, bob, fs, azs = world
        azs.database_for(fs.principal).add(
            AclEntry(subject=SinglePrincipal(bob.principal), operations=("read",))
        )
        proxy = bob.authorization_client(azs.principal).authorize(
            fs.principal, ("read",), ("doc/*",)
        )
        # Message 3: present to S.
        out = bob.client_for(fs.principal).request(
            "read", "doc/x", proxy=proxy
        )
        assert out["data"] == b"X"

    def test_unlisted_client_denied(self, world):
        realm, alice, bob, fs, azs = world
        azs.database_for(fs.principal)  # empty database
        with pytest.raises(AuthorizationDenied):
            bob.authorization_client(azs.principal).authorize(
                fs.principal, ("read",)
            )

    def test_unknown_end_server_denied(self, world):
        realm, alice, bob, fs, azs = world
        with pytest.raises(AuthorizationDenied):
            bob.authorization_client(azs.principal).authorize(
                realm.principal("ghost-server"), ("read",)
            )

    def test_operation_not_in_database_denied(self, world):
        realm, alice, bob, fs, azs = world
        azs.database_for(fs.principal).add(
            AclEntry(subject=SinglePrincipal(bob.principal), operations=("read",))
        )
        with pytest.raises(AuthorizationDenied):
            bob.authorization_client(azs.principal).authorize(
                fs.principal, ("delete",)
            )

    def test_issued_proxy_scope_limited(self, world):
        """The proxy asserts exactly what was requested, nothing more."""
        realm, alice, bob, fs, azs = world
        azs.database_for(fs.principal).add(
            AclEntry(
                subject=SinglePrincipal(bob.principal),
                operations=("read", "delete"),
            )
        )
        proxy = bob.authorization_client(azs.principal).authorize(
            fs.principal, ("read",), ("doc/*",)
        )
        client = bob.client_for(fs.principal)
        with pytest.raises(RestrictionViolation):
            client.request("delete", "doc/x", proxy=proxy)

    def test_database_entry_restrictions_copied(self, world):
        """§3.5: ACL-entry restrictions flow into issued proxies."""
        realm, alice, bob, fs, azs = world
        azs.database_for(fs.principal).add(
            AclEntry(
                subject=SinglePrincipal(bob.principal),
                operations=("read",),
                restrictions=(Quota(currency="bytes", limit=1),),
            )
        )
        proxy = bob.authorization_client(azs.principal).authorize(
            fs.principal, ("read",)
        )
        quota_types = [
            r.to_wire()["type"]
            for cert in proxy.proxy.certificates
            for r in cert.restrictions
        ]
        assert "quota" in quota_types

    def test_issued_for_pins_proxy_to_server(self, world):
        realm, alice, bob, fs, azs = world
        azs.database_for(fs.principal).add(
            AclEntry(subject=SinglePrincipal(bob.principal), operations=("read",))
        )
        proxy = bob.authorization_client(azs.principal).authorize(
            fs.principal, ("read",)
        )
        issued_for = [
            r
            for cert in proxy.proxy.certificates
            for r in cert.restrictions
            if isinstance(r, IssuedFor)
        ]
        assert issued_for and issued_for[0].servers == (fs.principal,)

    def test_unauthenticated_request_denied(self, world):
        realm, alice, bob, fs, azs = world
        azs.database_for(fs.principal).add(
            AclEntry(subject=SinglePrincipal(bob.principal), operations=("read",))
        )
        client = bob.client_for(azs.principal)
        with pytest.raises(AuthorizationDenied):
            client.request(
                "authorize",
                args={
                    "server": fs.principal.to_wire(),
                    "operations": ["read"],
                    "targets": ["*"],
                },
                with_session=False,
            )

    def test_end_server_must_trust_authz_server(self, world):
        """Without R on S's ACL the proxy is verifiable but unauthorized."""
        realm, alice, bob, fs, azs = world
        fs.acl.remove_subject(SinglePrincipal(azs.principal))
        azs.database_for(fs.principal).add(
            AclEntry(subject=SinglePrincipal(bob.principal), operations=("read",))
        )
        proxy = bob.authorization_client(azs.principal).authorize(
            fs.principal, ("read",)
        )
        with pytest.raises(AuthorizationDenied):
            bob.client_for(fs.principal).request(
                "read", "doc/x", proxy=proxy
            )


class TestGroupServer:
    def test_membership_proxy_round_trip(self, world):
        realm, alice, bob, fs, azs = world
        gs = realm.group_server("groups")
        gid = gs.create_group("staff", (bob.principal,))
        fs.acl.add(AclEntry(subject=GroupSubject(gid), operations=("read",)))
        g, proxy = bob.group_client(gs.principal).get_group_proxy(
            "staff", fs.principal
        )
        assert g == gid
        out = bob.client_for(fs.principal).request(
            "read", "doc/x", group_proxies=[(g, proxy)]
        )
        assert out["data"] == b"X"

    def test_group_proxy_not_transferable(self, world):
        """Group proxies are delegate proxies pinned to the member."""
        realm, alice, bob, fs, azs = world
        gs = realm.group_server("groups")
        gid = gs.create_group("staff", (bob.principal,))
        fs.acl.add(AclEntry(subject=GroupSubject(gid), operations=("read",)))
        g, proxy = bob.group_client(gs.principal).get_group_proxy(
            "staff", fs.principal
        )
        carol = realm.user("carol")
        with pytest.raises(RestrictionViolation):
            carol.client_for(fs.principal).request(
                "read", "doc/x", group_proxies=[(g, proxy)]
            )

    def test_proxy_asserts_only_its_group(self, world):
        """§7.6: group-membership limits assertable groups."""
        realm, alice, bob, fs, azs = world
        gs = realm.group_server("groups")
        gs.create_group("staff", (bob.principal,))
        admins = gs.create_group("admins", (bob.principal,))
        fs.acl.add(
            AclEntry(subject=GroupSubject(admins), operations=("read",))
        )
        g, staff_proxy = bob.group_client(gs.principal).get_group_proxy(
            "staff", fs.principal
        )
        # Presenting the staff proxy as an admins assertion must fail.
        with pytest.raises(RestrictionViolation):
            bob.client_for(fs.principal).request(
                "read", "doc/x", group_proxies=[(admins, staff_proxy)]
            )

    def test_unknown_group(self, world):
        realm, alice, bob, fs, azs = world
        gs = realm.group_server("groups")
        with pytest.raises(ServiceError):
            bob.group_client(gs.principal).get_group_proxy(
                "ghosts", fs.principal
            )

    def test_membership_revocation(self, world):
        realm, alice, bob, fs, azs = world
        gs = realm.group_server("groups")
        gs.create_group("staff", (bob.principal,))
        gs.remove_member("staff", bob.principal)
        with pytest.raises(AuthorizationDenied):
            bob.group_client(gs.principal).get_group_proxy(
                "staff", fs.principal
            )

    def test_online_membership_query(self, world):
        realm, alice, bob, fs, azs = world
        gs = realm.group_server("groups")
        gs.create_group("staff", (bob.principal,))
        gc = bob.group_client(gs.principal)
        assert gc.query_membership("staff", bob.principal)
        assert not gc.query_membership("staff", alice.principal)

    def test_group_name_in_authz_database(self, world):
        """§3.3: group names appear in authorization databases too."""
        realm, alice, bob, fs, azs = world
        gs = realm.group_server("groups")
        gid = gs.create_group("staff", (bob.principal,))
        azs.database_for(fs.principal).add(
            AclEntry(subject=GroupSubject(gid), operations=("read",))
        )
        g, gproxy = bob.group_client(gs.principal).get_group_proxy(
            "staff", azs.principal
        )
        proxy = bob.authorization_client(azs.principal).authorize(
            fs.principal, ("read",), ("doc/*",), group_proxies=[(g, gproxy)]
        )
        out = bob.client_for(fs.principal).request(
            "read", "doc/x", proxy=proxy
        )
        assert out["data"] == b"X"
