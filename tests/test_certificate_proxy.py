"""Proxy certificates (Fig. 1/6) and proxy granting/cascading (§2, §3.4)."""

import pytest

from repro.core.certificate import (
    LINK_CASCADE,
    LINK_DELEGATE,
    LINK_ROOT,
    HybridKeyBinding,
    ProxyCertificate,
    PublicKeyBinding,
    SealedKeyBinding,
    build_certificate,
    key_binding_from_wire,
)
from repro.core.proxy import (
    Proxy,
    cascade,
    delegate_cascade,
    grant_conventional,
    grant_hybrid,
    grant_public,
    possession_signer,
)
from repro.core.restrictions import Grantee, Quota
from repro.crypto import schnorr
from repro.crypto.dh import TEST_GROUP
from repro.crypto.keys import SymmetricKey
from repro.crypto.signature import HmacSigner, SchnorrSigner
from repro.encoding.identifiers import PrincipalId
from repro.errors import DecodingError, DelegationError, ProxyError

ALICE = PrincipalId("alice")
BOB = PrincipalId("bob")
SERVER = PrincipalId("server")
NOW = 1000.0
LATER = 2000.0


@pytest.fixture
def shared(rng):
    return SymmetricKey.generate(rng=rng)


class TestCertificate:
    def test_build_and_wire_round_trip(self, shared, rng):
        signer = HmacSigner(key=shared)
        binding = SealedKeyBinding(box=b"sealed", fingerprint=b"f" * 16)
        cert = build_certificate(
            ALICE, (Quota(currency="x", limit=1),), binding, NOW, LATER,
            LINK_ROOT, signer, rng=rng,
        )
        again = ProxyCertificate.from_bytes(cert.to_bytes())
        assert again == cert
        signer.verify(again.body_bytes(), again.signature)

    def test_signature_covers_restrictions(self, shared, rng):
        signer = HmacSigner(key=shared)
        binding = SealedKeyBinding(box=b"s", fingerprint=b"f" * 16)
        cert = build_certificate(
            ALICE, (Quota(currency="x", limit=1),), binding, NOW, LATER,
            LINK_ROOT, signer, rng=rng,
        )
        # Rebuild with a loosened restriction but the old signature.
        import dataclasses

        forged = dataclasses.replace(
            cert, restrictions=(Quota(currency="x", limit=10**9),)
        )
        from repro.errors import SignatureError

        with pytest.raises(SignatureError):
            signer.verify(forged.body_bytes(), forged.signature)

    def test_bad_link_kind_rejected(self, shared):
        binding = SealedKeyBinding(box=b"s", fingerprint=b"f" * 16)
        with pytest.raises(ProxyError):
            ProxyCertificate(
                grantor=ALICE,
                restrictions=(),
                key_binding=binding,
                issued_at=NOW,
                expires_at=LATER,
                link_kind="bogus",
                nonce=b"n" * 16,
                signature=b"s",
            )

    def test_expiry_before_issue_rejected(self):
        binding = SealedKeyBinding(box=b"s", fingerprint=b"f" * 16)
        with pytest.raises(ProxyError):
            ProxyCertificate(
                grantor=ALICE,
                restrictions=(),
                key_binding=binding,
                issued_at=LATER,
                expires_at=NOW,
                link_kind=LINK_ROOT,
                nonce=b"n",
                signature=b"s",
            )

    def test_nonce_makes_grants_distinct(self, shared, rng):
        signer = HmacSigner(key=shared)
        binding = SealedKeyBinding(box=b"s", fingerprint=b"f" * 16)
        a = build_certificate(ALICE, (), binding, NOW, LATER, LINK_ROOT, signer, rng=rng)
        b = build_certificate(ALICE, (), binding, NOW, LATER, LINK_ROOT, signer, rng=rng)
        assert a.nonce != b.nonce

    def test_unknown_binding_kind_rejected(self):
        with pytest.raises(DecodingError):
            key_binding_from_wire({"kind": "nope"})

    def test_binding_wire_round_trips(self):
        for binding in (
            PublicKeyBinding(scheme="schnorr", key_wire={"p": 5, "y": 3}),
            SealedKeyBinding(box=b"b", fingerprint=b"f" * 16),
            HybridKeyBinding(
                box=b"b", scheme="schnorr-ies", server=SERVER,
                fingerprint=b"f" * 16,
            ),
        ):
            assert key_binding_from_wire(binding.to_wire()) == binding


class TestGranting:
    def test_conventional_grant_shape(self, shared, rng):
        p = grant_conventional(ALICE, shared, (), NOW, LATER, rng=rng)
        assert p.grantor == ALICE
        assert p.is_bearer
        assert isinstance(p.final.key_binding, SealedKeyBinding)
        assert isinstance(p.proxy_key, SymmetricKey)
        assert p.expires_at == LATER

    def test_conventional_proxy_key_not_in_clear(self, shared, rng):
        """§3.1: the proxy key never appears in the certificate bytes."""
        p = grant_conventional(ALICE, shared, (), NOW, LATER, rng=rng)
        assert p.proxy_key.secret not in p.final.to_bytes()

    def test_public_grant_shape(self, rng):
        identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        p = grant_public(
            ALICE, SchnorrSigner(identity), (), NOW, LATER,
            rng=rng, group=TEST_GROUP,
        )
        assert isinstance(p.final.key_binding, PublicKeyBinding)
        assert isinstance(p.proxy_key, schnorr.SchnorrPrivateKey)

    def test_hybrid_grant_shape(self, rng):
        identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        server_key = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        p = grant_hybrid(
            ALICE, SchnorrSigner(identity), SERVER, server_key.public,
            (), NOW, LATER, rng=rng,
        )
        binding = p.final.key_binding
        assert isinstance(binding, HybridKeyBinding)
        assert binding.server == SERVER
        # The enclosed key is recoverable only with the server private key.
        recovered = schnorr.decrypt(server_key, binding.box)
        assert recovered == p.proxy_key.secret

    def test_delegate_classification(self, shared, rng):
        p = grant_conventional(
            ALICE, shared, (Grantee(principals=(BOB,)),), NOW, LATER, rng=rng
        )
        assert not p.is_bearer


class TestProxyStructure:
    def test_empty_chain_rejected(self):
        with pytest.raises(ProxyError):
            Proxy(certificates=())

    def test_chain_must_start_with_root(self, shared, rng):
        p = grant_conventional(ALICE, shared, (), NOW, LATER, rng=rng)
        p2 = cascade(p, (), NOW, LATER, rng=rng)
        with pytest.raises(ProxyError):
            Proxy(certificates=(p2.certificates[1],))

    def test_root_only_first(self, shared, rng):
        p = grant_conventional(ALICE, shared, (), NOW, LATER, rng=rng)
        with pytest.raises(ProxyError):
            Proxy(certificates=p.certificates + p.certificates)

    def test_without_key_strips_material(self, shared, rng):
        p = grant_conventional(ALICE, shared, (), NOW, LATER, rng=rng)
        stripped = p.without_key()
        assert stripped.proxy_key is None
        with pytest.raises(ProxyError):
            stripped.pop_signer()

    def test_all_restrictions_union(self, shared, rng):
        p = grant_conventional(
            ALICE, shared, (Quota(currency="a", limit=1),), NOW, LATER, rng=rng
        )
        p2 = cascade(p, (Quota(currency="b", limit=2),), NOW, LATER, rng=rng)
        kinds = [r.to_wire()["currency"] for r in p2.all_restrictions()]
        assert kinds == ["a", "b"]


class TestCascade:
    def test_symmetric_cascade_expiry_tightens(self, shared, rng):
        p = grant_conventional(ALICE, shared, (), NOW, LATER, rng=rng)
        p2 = cascade(p, (), NOW, NOW + 10, rng=rng)
        assert p2.expires_at == NOW + 10
        assert len(p2.certificates) == 2
        assert p2.final.link_kind == LINK_CASCADE

    def test_cascade_generates_fresh_key(self, shared, rng):
        p = grant_conventional(ALICE, shared, (), NOW, LATER, rng=rng)
        p2 = cascade(p, (), NOW, LATER, rng=rng)
        assert p2.proxy_key.secret != p.proxy_key.secret

    def test_schnorr_cascade(self, rng):
        identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        p = grant_public(
            ALICE, SchnorrSigner(identity), (), NOW, LATER,
            rng=rng, group=TEST_GROUP,
        )
        p2 = cascade(p, (Quota(currency="x", limit=1),), NOW, LATER, rng=rng)
        assert isinstance(p2.proxy_key, schnorr.SchnorrPrivateKey)
        assert p2.proxy_key.y != p.proxy_key.y

    def test_cascade_without_key_rejected(self, shared, rng):
        p = grant_conventional(ALICE, shared, (), NOW, LATER, rng=rng)
        with pytest.raises(DelegationError):
            cascade(p.without_key(), (), NOW, LATER, rng=rng)

    def test_cascading_delegate_proxy_rejected(self, shared, rng):
        """§3.4: delegate proxies cascade via delegate_cascade only."""
        p = grant_conventional(
            ALICE, shared, (Grantee(principals=(BOB,)),), NOW, LATER, rng=rng
        )
        with pytest.raises(DelegationError):
            cascade(p, (), NOW, LATER, rng=rng)


class TestDelegateCascade:
    def _delegate_proxy(self, shared, rng):
        return grant_conventional(
            ALICE, shared, (Grantee(principals=(BOB,)),), NOW, LATER, rng=rng
        )

    def test_named_intermediate_can_delegate(self, shared, rng):
        p = self._delegate_proxy(shared, rng)
        bob_key = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        p2 = delegate_cascade(
            p, BOB, SchnorrSigner(bob_key), PrincipalId("carol"),
            (), NOW, LATER, rng=rng, group=TEST_GROUP,
        )
        assert p2.final.link_kind == LINK_DELEGATE
        assert p2.final.grantor == BOB  # the audit trail (§3.4)
        grantees = [
            r for r in p2.final.restrictions if isinstance(r, Grantee)
        ]
        assert grantees and grantees[0].principals == (PrincipalId("carol"),)

    def test_unnamed_intermediate_rejected(self, shared, rng):
        p = self._delegate_proxy(shared, rng)
        carol_key = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        with pytest.raises(DelegationError):
            delegate_cascade(
                p, PrincipalId("carol"), SchnorrSigner(carol_key),
                PrincipalId("dave"), (), NOW, LATER, rng=rng,
                group=TEST_GROUP,
            )

    def test_bearer_proxy_cannot_delegate_cascade(self, shared, rng):
        p = grant_conventional(ALICE, shared, (), NOW, LATER, rng=rng)
        bob_key = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        with pytest.raises(DelegationError):
            delegate_cascade(
                p, BOB, SchnorrSigner(bob_key), PrincipalId("carol"),
                (), NOW, LATER, rng=rng, group=TEST_GROUP,
            )


class TestPossessionSigner:
    def test_symmetric(self, rng):
        key = SymmetricKey.generate(rng=rng)
        signer = possession_signer(key)
        signer.verify(b"m", signer.sign(b"m"))

    def test_schnorr(self, rng):
        key = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        signer = possession_signer(key)
        signer.verify(b"m", signer.sign(b"m"))

    def test_unsupported(self):
        with pytest.raises(ProxyError):
            possession_signer("not-a-key")
