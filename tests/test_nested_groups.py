"""Nested groups (§3.3): group names as members of other groups."""

import pytest

from repro.acl import AclEntry, GroupSubject
from repro.errors import AuthorizationDenied
from repro.testbed import Realm


@pytest.fixture
def world():
    realm = Realm(seed=b"nested-groups")
    alice = realm.user("alice")
    fs = realm.file_server("files")
    fs.put("doc", b"data")
    gs = realm.group_server("groups")
    return realm, alice, fs, gs


class TestLocalNesting:
    def test_member_of_nested_group_gets_outer_proxy(self, world):
        realm, alice, fs, gs = world
        engineers = gs.create_group("engineers", (alice.principal,))
        gs.create_group("staff", (engineers,))  # staff contains engineers
        staff = gs.group_id("staff")
        fs.acl.add(AclEntry(subject=GroupSubject(staff), operations=("read",)))
        gid, proxy = alice.group_client(gs.principal).get_group_proxy(
            "staff", fs.principal
        )
        out = alice.client_for(fs.principal).request(
            "read", "doc", group_proxies=[(gid, proxy)]
        )
        assert out["data"] == b"data"

    def test_deep_nesting(self, world):
        realm, alice, fs, gs = world
        inner = gs.create_group("level0", (alice.principal,))
        previous = inner
        for i in range(1, 5):
            previous = gs.create_group(f"level{i}", (previous,))
        gid, proxy = alice.group_client(gs.principal).get_group_proxy(
            "level4", fs.principal
        )
        assert gid == gs.group_id("level4")

    def test_nesting_cycles_terminate(self, world):
        realm, alice, fs, gs = world
        a = gs.create_group("cycle-a", ())
        b = gs.create_group("cycle-b", (a,))
        gs.add_member("cycle-a", b)  # a <-> b, nobody inside
        with pytest.raises(AuthorizationDenied):
            alice.group_client(gs.principal).get_group_proxy(
                "cycle-a", fs.principal
            )

    def test_non_member_still_denied(self, world):
        realm, alice, fs, gs = world
        engineers = gs.create_group("engineers", ())
        gs.create_group("staff", (engineers,))
        with pytest.raises(AuthorizationDenied):
            alice.group_client(gs.principal).get_group_proxy(
                "staff", fs.principal
            )

    def test_query_membership_expands_nesting(self, world):
        realm, alice, fs, gs = world
        engineers = gs.create_group("engineers", (alice.principal,))
        gs.create_group("staff", (engineers,))
        gc = alice.group_client(gs.principal)
        assert gc.query_membership("staff", alice.principal)
        assert gc.query_membership("engineers", alice.principal)
        outsider = realm.user("outsider")
        assert not gc.query_membership("staff", outsider.principal)


class TestCrossServerNesting:
    def test_foreign_group_as_member(self, world):
        """A group from another group server appears as a member here;
        membership is proven by presenting that server's proxy (§3.3)."""
        realm, alice, fs, gs = world
        other_gs = realm.group_server("other-groups")
        contractors = other_gs.create_group(
            "contractors", (alice.principal,)
        )
        # Local "staff" contains the *foreign* contractors group.
        gs.create_group("staff", (contractors,))
        staff = gs.group_id("staff")
        fs.acl.add(AclEntry(subject=GroupSubject(staff), operations=("read",)))

        # Step 1: alice proves contractors membership *to the gs server*.
        c_gid, c_proxy = alice.group_client(
            other_gs.principal
        ).get_group_proxy("contractors", gs.principal)
        # Step 2: present it while asking gs for the staff proxy.
        s_gid, s_proxy = alice.group_client(gs.principal).get_group_proxy(
            "staff", fs.principal, group_proxies=[(c_gid, c_proxy)]
        )
        out = alice.client_for(fs.principal).request(
            "read", "doc", group_proxies=[(s_gid, s_proxy)]
        )
        assert out["data"] == b"data"

    def test_foreign_group_without_proxy_denied(self, world):
        realm, alice, fs, gs = world
        other_gs = realm.group_server("other-groups")
        contractors = other_gs.create_group(
            "contractors", (alice.principal,)
        )
        gs.create_group("staff", (contractors,))
        # Claiming membership without presenting the contractors proxy:
        with pytest.raises(AuthorizationDenied):
            alice.group_client(gs.principal).get_group_proxy(
                "staff", fs.principal
            )
