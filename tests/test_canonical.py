"""Canonical TLV encoding: round-trips, canonicality, and rejection paths."""

import math

import pytest

from repro.encoding.canonical import decode, encode
from repro.errors import DecodingError, EncodingError


class TestRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            255,
            256,
            -256,
            2**64,
            -(2**64),
            2**521 - 1,
            0.0,
            1.5,
            -273.15,
            float("inf"),
            float("-inf"),
            b"",
            b"\x00\xff",
            b"binary \x01\x02",
            "",
            "hello",
            "uniçode ☃",
            [],
            [1, 2, 3],
            ["mixed", 1, None, b"x"],
            [[1], [2, [3]]],
            {},
            {"a": 1},
            {"nested": {"k": [1, 2]}, "b": b"v"},
        ],
    )
    def test_round_trip(self, value):
        assert decode(encode(value)) == value

    def test_tuple_encodes_as_list(self):
        assert decode(encode((1, 2))) == [1, 2]

    def test_dict_key_order_irrelevant(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert encode(a) == encode(b)


class TestInjectivity:
    """Distinct values must encode differently (signature safety)."""

    @pytest.mark.parametrize(
        "left,right",
        [
            (["ab", "c"], ["a", "bc"]),
            ([b"ab", b"c"], [b"a", b"bc"]),
            ([1, [2]], [[1], 2]),
            ("1", 1),
            (b"1", "1"),
            (1, 1.0),
            (True, 1),
            (False, 0),
            (None, b""),
            ([], {}),
            ({"a": [1, 2]}, {"a": [1], "b": [2]}),
        ],
    )
    def test_distinct_values_distinct_encodings(self, left, right):
        assert encode(left) != encode(right)


class TestRejection:
    def test_nan_rejected_on_encode(self):
        with pytest.raises(EncodingError):
            encode(float("nan"))

    def test_unsupported_type(self):
        with pytest.raises(EncodingError):
            encode(object())

    def test_set_unsupported(self):
        with pytest.raises(EncodingError):
            encode({1, 2})

    def test_non_string_dict_key(self):
        with pytest.raises(EncodingError):
            encode({1: "x"})

    def test_trailing_garbage(self):
        with pytest.raises(DecodingError):
            decode(encode(1) + b"\x00")

    def test_truncated_header(self):
        with pytest.raises(DecodingError):
            decode(b"I\x00\x00")

    def test_truncated_payload(self):
        data = encode(b"hello")
        with pytest.raises(DecodingError):
            decode(data[:-1])

    def test_unknown_tag(self):
        with pytest.raises(DecodingError):
            decode(b"Z\x00\x00\x00\x00")

    def test_non_minimal_int_rejected(self):
        # 1 encoded with an extra leading zero byte.
        bad = b"I" + (2).to_bytes(4, "big") + b"\x00\x01"
        with pytest.raises(DecodingError):
            decode(bad)

    def test_bad_bool_payload(self):
        bad = b"F" + (1).to_bytes(4, "big") + b"\x02"
        with pytest.raises(DecodingError):
            decode(bad)

    def test_unsorted_dict_keys_rejected(self):
        # Manually build {"b":1,"a":2} in the wrong order.
        inner = encode("b") + encode(1) + encode("a") + encode(2)
        bad = b"M" + len(inner).to_bytes(4, "big") + inner
        with pytest.raises(DecodingError):
            decode(bad)

    def test_duplicate_dict_keys_rejected(self):
        inner = encode("a") + encode(1) + encode("a") + encode(2)
        bad = b"M" + len(inner).to_bytes(4, "big") + inner
        with pytest.raises(DecodingError):
            decode(bad)

    def test_dict_key_without_value(self):
        inner = encode("a")
        bad = b"M" + len(inner).to_bytes(4, "big") + inner
        with pytest.raises(DecodingError):
            decode(bad)

    def test_invalid_utf8_string(self):
        bad = b"S" + (2).to_bytes(4, "big") + b"\xff\xfe"
        with pytest.raises(DecodingError):
            decode(bad)

    def test_nan_float_payload_rejected(self):
        import struct

        bad = b"D" + (8).to_bytes(4, "big") + struct.pack(">d", math.nan)
        with pytest.raises(DecodingError):
            decode(bad)

    def test_empty_int_payload(self):
        bad = b"I" + (0).to_bytes(4, "big")
        with pytest.raises(DecodingError):
            decode(bad)
