"""The simulated network: delivery, metering, taps, fault injection."""

import pytest

from repro.clock import SimulatedClock
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    MessageDroppedError,
    ServiceError,
    UnknownEndpointError,
)
from repro.net import Eavesdropper, LatencyModel, Network
from repro.net.message import (
    Message,
    encode_error,
    is_error,
    raise_if_error,
)
from repro.net.service import Service

ALICE = PrincipalId("alice")
SERVER = PrincipalId("server")


@pytest.fixture
def network(clock, rng):
    return Network(clock, rng=rng)


def echo_handler(message: Message) -> dict:
    return {"echo": message.payload}


class TestDelivery:
    def test_request_response(self, network):
        network.register(SERVER, echo_handler)
        reply = network.send(ALICE, SERVER, "ping", {"x": 1})
        assert reply == {"echo": {"x": 1}}

    def test_unknown_endpoint(self, network):
        with pytest.raises(UnknownEndpointError):
            network.send(ALICE, SERVER, "ping", {})

    def test_unregister(self, network):
        network.register(SERVER, echo_handler)
        network.unregister(SERVER)
        with pytest.raises(UnknownEndpointError):
            network.send(ALICE, SERVER, "ping", {})

    def test_latency_advances_simulated_clock(self, clock, rng):
        network = Network(
            clock, latency=LatencyModel(base=0.5, jitter=0.0), rng=rng
        )
        network.register(SERVER, echo_handler)
        before = clock.now()
        network.send(ALICE, SERVER, "ping", {})
        # One hop out, one hop back.
        assert clock.now() == pytest.approx(before + 1.0)


class TestMetrics:
    def test_messages_counted(self, network):
        network.register(SERVER, echo_handler)
        before = network.metrics.snapshot()
        network.send(ALICE, SERVER, "ping", {})
        delta = network.metrics.delta_since(before)
        assert delta.messages == 2  # request + reply
        assert delta.bytes > 0

    def test_by_type_and_pair(self, network):
        network.register(SERVER, echo_handler)
        network.send(ALICE, SERVER, "ping", {})
        snap = network.metrics.snapshot()
        assert snap.by_type["ping"] == 1
        assert snap.by_type["ping-reply"] == 1
        assert snap.by_pair[(str(ALICE), str(SERVER))] == 1

    def test_messages_to(self, network):
        network.register(SERVER, echo_handler)
        network.send(ALICE, SERVER, "ping", {})
        network.send(ALICE, SERVER, "ping", {})
        snap = network.metrics.snapshot()
        assert snap.messages_to(SERVER) == 2

    def test_reset(self, network):
        network.register(SERVER, echo_handler)
        network.send(ALICE, SERVER, "ping", {})
        network.metrics.reset()
        assert network.metrics.snapshot().messages == 0


class TestFaultInjection:
    def test_blackhole(self, network):
        network.register(SERVER, echo_handler)
        network.blackhole(SERVER)
        with pytest.raises(MessageDroppedError):
            network.send(ALICE, SERVER, "ping", {})
        network.heal(SERVER)
        assert network.send(ALICE, SERVER, "ping", {})

    def test_drop_probability_all(self, network):
        network.register(SERVER, echo_handler)
        network.set_drop_probability(1.0)
        with pytest.raises(MessageDroppedError):
            network.send(ALICE, SERVER, "ping", {})
        assert network.metrics.snapshot().dropped == 1

    def test_drop_probability_none(self, network):
        network.register(SERVER, echo_handler)
        network.set_drop_probability(0.0)
        network.send(ALICE, SERVER, "ping", {})

    def test_bad_probability_rejected(self, network):
        with pytest.raises(ValueError):
            network.set_drop_probability(1.5)


class TestEavesdropper:
    def test_captures_both_directions(self, network):
        network.register(SERVER, echo_handler)
        mallory = Eavesdropper()
        mallory.attach(network)
        network.send(ALICE, SERVER, "ping", {"secret": b"token"})
        assert len(mallory.captured) == 2
        assert mallory.last_of_type("ping").payload == {"secret": b"token"}

    def test_detach_stops_capture(self, network):
        network.register(SERVER, echo_handler)
        mallory = Eavesdropper()
        mallory.attach(network)
        mallory.detach(network)
        network.send(ALICE, SERVER, "ping", {})
        assert mallory.captured == []

    def test_replay(self, network):
        network.register(SERVER, echo_handler)
        mallory = Eavesdropper()
        mallory.attach(network)
        network.send(ALICE, SERVER, "ping", {"n": 1})
        captured = mallory.last_of_type("ping")
        reply = mallory.replay(network, captured)
        assert reply == {"echo": {"n": 1}}


class TestErrorTransport:
    def test_round_trip(self):
        from repro.errors import InsufficientFundsError

        payload = encode_error(InsufficientFundsError("broke"))
        assert is_error(payload)
        with pytest.raises(InsufficientFundsError, match="broke"):
            raise_if_error(payload)

    def test_restriction_violation_details_survive(self):
        from repro.errors import RestrictionViolation

        payload = encode_error(RestrictionViolation("quota", "too much"))
        with pytest.raises(RestrictionViolation) as info:
            raise_if_error(payload)
        assert info.value.restriction_type == "quota"

    def test_unknown_error_becomes_service_error(self):
        payload = encode_error(ValueError("odd"))
        with pytest.raises(ServiceError):
            raise_if_error(payload)

    def test_clean_payload_passes_through(self):
        assert raise_if_error({"ok": 1}) == {"ok": 1}


class TestServiceBase:
    def test_dispatch(self, network, clock):
        class Echo(Service):
            def op_ping(self, message):
                return {"pong": message.payload["n"]}

        Echo(SERVER, network, clock)
        assert network.send(ALICE, SERVER, "ping", {"n": 5}) == {"pong": 5}

    def test_unknown_operation(self, network, clock):
        class Empty(Service):
            pass

        Empty(SERVER, network, clock)
        reply = network.send(ALICE, SERVER, "nope", {})
        assert is_error(reply)

    def test_library_errors_transported(self, network, clock):
        from repro.errors import AuthorizationDenied

        class Denier(Service):
            def op_go(self, message):
                raise AuthorizationDenied("never")

        Denier(SERVER, network, clock)
        with pytest.raises(AuthorizationDenied):
            raise_if_error(network.send(ALICE, SERVER, "go", {}))

    def test_hyphen_dispatch(self, network, clock):
        class Hyphen(Service):
            def op_two_words(self, message):
                return {"ok": True}

        Hyphen(SERVER, network, clock)
        assert network.send(ALICE, SERVER, "two-words", {}) == {"ok": True}


class TestLegFaults:
    """Request-leg vs response-leg loss are different failures."""

    def _counting_handler(self):
        calls = []

        def handler(message: Message) -> dict:
            calls.append(message.msg_type)
            return {"ok": True}

        return calls, handler

    def test_response_drop_after_side_effects(self, network):
        from repro.errors import ResponseDroppedError

        calls, handler = self._counting_handler()
        network.register(SERVER, handler)
        network.set_drop_probability(1.0, leg="response")
        with pytest.raises(ResponseDroppedError):
            network.send(ALICE, SERVER, "ping", {})
        # The handler ran — its side effects committed before the loss.
        assert calls == ["ping"]
        assert network.metrics.snapshot().dropped == 1

    def test_response_drop_is_a_dropped_message(self, network):
        """Callers catching MessageDroppedError keep working."""
        from repro.errors import MessageDroppedError, ResponseDroppedError

        assert issubclass(ResponseDroppedError, MessageDroppedError)

    def test_both_legs(self, network):
        calls, handler = self._counting_handler()
        network.register(SERVER, handler)
        network.set_drop_probability(1.0, leg="both")
        with pytest.raises(MessageDroppedError):
            network.send(ALICE, SERVER, "ping", {})
        # The request leg drops first: the handler never ran.
        assert calls == []

    def test_bad_leg_rejected(self, network):
        with pytest.raises(ValueError):
            network.set_drop_probability(0.5, leg="sideways")

    def test_request_leg_unaffected_by_response_probability(self, network):
        calls, handler = self._counting_handler()
        network.register(SERVER, handler)
        network.set_drop_probability(0.0, leg="response")
        assert network.send(ALICE, SERVER, "ping", {})["ok"]
        assert calls == ["ping"]


class TestBlackholeWindows:
    def test_scheduled_window(self, clock, rng):
        network = Network(clock, rng=rng)
        network.register(SERVER, echo_handler)
        now = clock.now()
        network.blackhole(SERVER, since=now + 10.0, until=now + 20.0)
        # Before the window opens: traffic flows.
        assert network.send(ALICE, SERVER, "ping", {})
        clock.advance(15.0)
        with pytest.raises(MessageDroppedError):
            network.send(ALICE, SERVER, "ping", {})
        # The window closes on its own — no heal() needed.
        clock.advance(10.0)
        assert network.send(ALICE, SERVER, "ping", {})

    def test_window_opening_mid_exchange_loses_only_the_reply(
        self, clock, rng
    ):
        from repro.errors import ResponseDroppedError

        network = Network(
            clock, latency=LatencyModel(base=0.5, jitter=0.0), rng=rng
        )
        calls = []

        def handler(message: Message) -> dict:
            calls.append(clock.now())
            return {"ok": True}

        network.register(SERVER, handler)
        # The partition starts after the request arrives but before the
        # reply makes it back: the server did the work, the client never
        # hears about it.
        network.blackhole(SERVER, since=clock.now() + 0.75)
        with pytest.raises(ResponseDroppedError):
            network.send(ALICE, SERVER, "ping", {})
        assert len(calls) == 1

    def test_heal_clears_scheduled_window(self, clock, rng):
        network = Network(clock, rng=rng)
        network.register(SERVER, echo_handler)
        network.blackhole(SERVER, since=clock.now() + 5.0)
        network.heal(SERVER)
        clock.advance(10.0)
        assert network.send(ALICE, SERVER, "ping", {})
