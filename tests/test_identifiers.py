"""Global naming: principals, groups, accounts (§3.3, §4)."""

import pytest

from repro.encoding.identifiers import AccountId, GroupId, PrincipalId
from repro.errors import DecodingError


class TestPrincipalId:
    def test_str(self):
        assert str(PrincipalId("alice")) == "alice@REPRO.ORG"

    def test_custom_realm(self):
        p = PrincipalId("bob", "OTHER.ORG")
        assert str(p) == "bob@OTHER.ORG"

    def test_wire_round_trip(self):
        p = PrincipalId("carol", "X.Y")
        assert PrincipalId.from_wire(p.to_wire()) == p

    def test_parse_with_realm(self):
        assert PrincipalId.parse("a@B.C") == PrincipalId("a", "B.C")

    def test_parse_bare_name_gets_default_realm(self):
        assert PrincipalId.parse("dave") == PrincipalId("dave")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            PrincipalId("")

    def test_separator_in_name_rejected(self):
        with pytest.raises(ValueError):
            PrincipalId("a@b")
        with pytest.raises(ValueError):
            PrincipalId("a!b")

    def test_malformed_wire_rejected(self):
        with pytest.raises(DecodingError):
            PrincipalId.from_wire("no-realm")
        with pytest.raises(DecodingError):
            PrincipalId.from_wire("@realm")

    def test_hashable_and_ordered(self):
        a, b = PrincipalId("a"), PrincipalId("b")
        assert len({a, b, PrincipalId("a")}) == 2
        assert sorted([b, a]) == [a, b]


class TestGroupId:
    def test_global_name_composition(self):
        """§3.3: group server name + local group name."""
        g = GroupId(server=PrincipalId("groups"), group="staff")
        assert str(g) == "groups@REPRO.ORG!staff"

    def test_wire_round_trip(self):
        g = GroupId(server=PrincipalId("gs", "R.X"), group="dev")
        assert GroupId.from_wire(g.to_wire()) == g

    def test_same_local_name_different_servers_distinct(self):
        """Group names are unique only per server (§3.3)."""
        g1 = GroupId(server=PrincipalId("gs1"), group="staff")
        g2 = GroupId(server=PrincipalId("gs2"), group="staff")
        assert g1 != g2

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            GroupId(server=PrincipalId("gs"), group="")

    def test_malformed_wire(self):
        with pytest.raises(DecodingError):
            GroupId.from_wire("nogroup@REALM")


class TestAccountId:
    def test_global_name_composition(self):
        """§4: accounting server principal + account name."""
        a = AccountId(server=PrincipalId("bank"), account="alice")
        assert str(a) == "bank@REPRO.ORG!alice"

    def test_wire_round_trip(self):
        a = AccountId(server=PrincipalId("b2"), account="x")
        assert AccountId.from_wire(a.to_wire()) == a

    def test_cross_server_accounts_distinct(self):
        a1 = AccountId(server=PrincipalId("b1"), account="x")
        a2 = AccountId(server=PrincipalId("b2"), account="x")
        assert a1 != a2

    def test_malformed_wire(self):
        with pytest.raises(DecodingError):
            AccountId.from_wire("broken")
