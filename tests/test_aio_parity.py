"""Async/sync delivery parity on the figure workloads.

The asyncio runtime's determinism contract: with a single driving thread
and a :class:`~repro.clock.SimulatedClock`, the queued delivery path must
consume the seeded rng in exactly the same order as the synchronous
network.  Each figure workload therefore runs twice on identically-seeded
realms — once per runtime — and everything observable must match: unit
outcomes (verified-proxy verdicts and read data), finale balances, audit
records, wire message/byte counts, and the logical clock itself.

These are the same workload classes the chaos campaigns drive
(:data:`repro.resil.chaos.WORKLOADS`), so parity here covers the exact
traffic shapes of figures 1, 3, 4, and 5.
"""

import pytest

from repro.net.aio import drive
from repro.resil.chaos import WORKLOADS
from repro.testbed import Realm

UNITS = 6


def run_figure(figure: str, runtime: str) -> dict:
    """One seeded workload run; returns every comparable observable."""
    realm = Realm(seed=b"aio-parity-" + figure.encode(), runtime=runtime)
    workload = WORKLOADS[figure]()

    def body():
        state = workload.setup(realm)
        outcomes = [workload.unit(realm, state, k) for k in range(UNITS)]
        finale = workload.finale(realm, state)
        return state, outcomes, finale

    if runtime == "aio":
        state, outcomes, finale = drive(realm.network, body)
        # The driver thread is not the loop thread, so real traffic must
        # have crossed the inbox queues — otherwise this "parity" run
        # silently exercised the inline path only.
        assert realm.network.stats.queued > 0
    else:
        state, outcomes, finale = body()

    audit = ()
    if "fs" in state:
        audit = tuple(state["fs"].audit.all())
    snapshot = realm.network.metrics.snapshot()
    return {
        "outcomes": outcomes,
        "finale": finale,
        "audit": audit,
        "messages": snapshot.messages,
        "bytes": snapshot.bytes,
        "by_type": snapshot.by_type,
        "clock": realm.clock.now(),
    }


@pytest.mark.parametrize("figure", sorted(WORKLOADS))
def test_figure_reaches_identical_outcomes_in_both_runtimes(figure):
    sync = run_figure(figure, "sync")
    aio = run_figure(figure, "aio")
    # Compare field by field so a mismatch names what diverged.
    for key in sync:
        assert aio[key] == sync[key], f"{figure}: {key} diverged"


def test_aio_runs_are_self_deterministic():
    # Two identically-seeded aio runs must match each other too — the
    # queue hop may not introduce ordering noise of its own.
    first = run_figure("fig5", "aio")
    second = run_figure("fig5", "aio")
    assert first == second


def test_fig5_finale_balances_conserve():
    outcome = run_figure("fig5", "aio")
    paid = sum(unit["paid"] for unit in outcome["outcomes"])
    # setup() clears one 1-dollar check before the measured units.
    assert outcome["finale"]["payee"] == paid + 1
    assert outcome["finale"]["payor"] == 10_000 - paid - 1
