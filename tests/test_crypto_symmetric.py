"""Authenticated symmetric encryption and HMAC sealing."""

import pytest

from repro.crypto import mac, symmetric
from repro.crypto.rng import Rng
from repro.errors import IntegrityError, SignatureError


@pytest.fixture
def key(rng):
    return symmetric.new_key(rng)


class TestSeal:
    def test_round_trip(self, key):
        box = symmetric.seal(key, b"plaintext")
        assert symmetric.unseal(key, box) == b"plaintext"

    def test_empty_plaintext(self, key):
        assert symmetric.unseal(key, symmetric.seal(key, b"")) == b""

    def test_large_plaintext(self, key):
        data = bytes(range(256)) * 100
        assert symmetric.unseal(key, symmetric.seal(key, data)) == data

    def test_randomized_nonces(self, key):
        assert symmetric.seal(key, b"x") != symmetric.seal(key, b"x")

    def test_wrong_key_rejected(self, key, rng):
        other = symmetric.new_key(rng)
        box = symmetric.seal(key, b"secret")
        with pytest.raises(IntegrityError):
            symmetric.unseal(other, box)

    def test_ciphertext_tamper_rejected(self, key):
        box = bytearray(symmetric.seal(key, b"secret data"))
        box[symmetric.NONCE_LEN] ^= 1
        with pytest.raises(IntegrityError):
            symmetric.unseal(key, bytes(box))

    def test_tag_tamper_rejected(self, key):
        box = bytearray(symmetric.seal(key, b"secret data"))
        box[-1] ^= 1
        with pytest.raises(IntegrityError):
            symmetric.unseal(key, bytes(box))

    def test_nonce_tamper_rejected(self, key):
        box = bytearray(symmetric.seal(key, b"secret data"))
        box[0] ^= 1
        with pytest.raises(IntegrityError):
            symmetric.unseal(key, bytes(box))

    def test_truncated_box_rejected(self, key):
        with pytest.raises(IntegrityError):
            symmetric.unseal(key, b"short")

    def test_associated_data_binds(self, key):
        box = symmetric.seal(key, b"p", associated_data=b"ctx-a")
        assert symmetric.unseal(key, box, associated_data=b"ctx-a") == b"p"
        with pytest.raises(IntegrityError):
            symmetric.unseal(key, box, associated_data=b"ctx-b")

    def test_bad_key_length_rejected(self):
        with pytest.raises(ValueError):
            symmetric.seal(b"short-key", b"p")
        with pytest.raises(ValueError):
            symmetric.unseal(b"short-key", b"x" * 64)

    def test_plaintext_confidential(self, key):
        """The sealed box must not contain the plaintext verbatim."""
        secret = b"extremely secret proxy key material"
        assert secret not in symmetric.seal(key, secret)


class TestMac:
    def test_tag_verify(self, key):
        t = mac.tag(key, b"msg")
        mac.verify(key, b"msg", t)

    def test_tag_deterministic(self, key):
        assert mac.tag(key, b"m") == mac.tag(key, b"m")

    def test_wrong_message(self, key):
        with pytest.raises(SignatureError):
            mac.verify(key, b"other", mac.tag(key, b"msg"))

    def test_wrong_key(self, key, rng):
        other = symmetric.new_key(rng)
        with pytest.raises(SignatureError):
            mac.verify(other, b"msg", mac.tag(key, b"msg"))

    def test_tag_length(self, key):
        assert len(mac.tag(key, b"m")) == mac.TAG_LEN
