"""Additional coverage: authorization-server matrices, client behaviors,
testbed helpers, and miscellaneous branches."""

import pytest

from repro.acl import AclEntry, SinglePrincipal
from repro.core.restrictions import (
    Expiration,
    Grantee,
    IssuedFor,
    Quota,
)
from repro.errors import (
    AuthorizationDenied,
    ProxyError,
    ReproError,
    RestrictionViolation,
    ServiceError,
)
from repro.kerberos.proxy_support import KerberosProxy, grant_via_credentials
from repro.testbed import Realm


@pytest.fixture
def world():
    realm = Realm(seed=b"more-coverage")
    alice = realm.user("alice")
    bob = realm.user("bob")
    fs = realm.file_server("files")
    fs.put("a", b"A")
    fs.put("b", b"B")
    azs = realm.authorization_server("authz")
    fs.acl.add(AclEntry(subject=SinglePrincipal(azs.principal)))
    return realm, alice, bob, fs, azs


class TestAuthorizationMatrix:
    def test_multi_operation_multi_target(self, world):
        realm, alice, bob, fs, azs = world
        azs.database_for(fs.principal).add(
            AclEntry(
                subject=SinglePrincipal(bob.principal),
                operations=("read", "stat"),
                targets=("a", "b"),
            )
        )
        proxy = bob.authorization_client(azs.principal).authorize(
            fs.principal, ("read", "stat"), ("a", "b")
        )
        client = bob.client_for(fs.principal)
        assert client.request("read", "a", proxy=proxy)["data"] == b"A"
        assert client.request("stat", "b", proxy=proxy)["exists"]

    def test_partial_coverage_denied(self, world):
        """Every requested (op, target) must be covered by the database."""
        realm, alice, bob, fs, azs = world
        azs.database_for(fs.principal).add(
            AclEntry(
                subject=SinglePrincipal(bob.principal),
                operations=("read",),
                targets=("a",),
            )
        )
        with pytest.raises(AuthorizationDenied):
            bob.authorization_client(azs.principal).authorize(
                fs.principal, ("read",), ("a", "b")
            )

    def test_expiration_restriction_in_database(self, world):
        """An Expiration carried from the database limits the proxy."""
        realm, alice, bob, fs, azs = world
        azs.database_for(fs.principal).add(
            AclEntry(
                subject=SinglePrincipal(bob.principal),
                operations=("read",),
                restrictions=(
                    Expiration(not_after=realm.clock.now() + 30),
                ),
            )
        )
        proxy = bob.authorization_client(azs.principal).authorize(
            fs.principal, ("read",)
        )
        client = bob.client_for(fs.principal)
        assert client.request("read", "a", proxy=proxy)["data"] == b"A"
        realm.clock.advance(31)
        with pytest.raises(RestrictionViolation):
            client.request("read", "a", proxy=proxy)

    def test_empty_operations_rejected(self, world):
        realm, alice, bob, fs, azs = world
        with pytest.raises(ServiceError):
            bob.authorization_client(azs.principal).authorize(
                fs.principal, ()
            )


class TestServiceClientBehaviors:
    def test_session_reused_across_requests(self, world):
        realm, alice, bob, fs, azs = world
        fs.grant_owner(alice.principal)
        client = alice.client_for(fs.principal)
        client.request("read", "a")
        before = realm.network.metrics.snapshot()
        client.request("read", "a")
        delta = realm.network.metrics.delta_since(before)
        assert delta.messages == 2  # no AP re-handshake

    def test_anonymous_without_proxy_denied(self, world):
        realm, alice, bob, fs, azs = world
        fs.grant_owner(alice.principal)
        client = alice.client_for(fs.principal)
        with pytest.raises(AuthorizationDenied):
            client.request("read", "a", anonymous=True)

    def test_session_restrictions_per_session_object(self, world):
        """Two clients of the same user carry independent sessions."""
        realm, alice, bob, fs, azs = world
        fs.grant_owner(alice.principal)
        restricted = alice.client_for(fs.principal)
        restricted.establish_session(
            additional_restrictions=(Quota(currency="bytes", limit=0),)
        )
        free = alice.client_for(fs.principal)
        free.request(
            "write", "c", args={"data": b"xx"}, amounts={"bytes": 2}
        )
        with pytest.raises(RestrictionViolation):
            restricted.request(
                "write", "d", args={"data": b"xx"}, amounts={"bytes": 2}
            )


class TestProxyTransfer:
    def test_transferable_without_key_for_delegates(self, world):
        """Delegate proxies can be passed around without key material."""
        realm, alice, bob, fs, azs = world
        fs.grant_owner(alice.principal)
        creds = alice.kerberos.get_ticket(fs.principal)
        proxy = grant_via_credentials(
            creds, (Grantee(principals=(bob.principal,)),), realm.clock.now()
        )
        stripped = KerberosProxy(
            tickets=proxy.tickets, proxy=proxy.proxy.without_key()
        )
        wire = stripped.transferable()
        assert wire["proxy_key"] is None
        rebuilt = KerberosProxy.from_transferable(wire)
        out = bob.client_for(fs.principal).request(
            "read", "a", proxy=rebuilt
        )
        assert out["data"] == b"A"

    def test_bearer_without_key_unusable(self, world):
        realm, alice, bob, fs, azs = world
        fs.grant_owner(alice.principal)
        creds = alice.kerberos.get_ticket(fs.principal)
        proxy = grant_via_credentials(creds, (), realm.clock.now())
        stripped = KerberosProxy(
            tickets=proxy.tickets, proxy=proxy.proxy.without_key()
        )
        with pytest.raises(ReproError):
            bob.client_for(fs.principal).request(
                "read", "a", proxy=stripped, anonymous=True
            )


class TestTestbed:
    def test_user_idempotent(self):
        realm = Realm(seed=b"tb")
        a1 = realm.user("alice")
        a2 = realm.user("alice")
        assert a1 is a2

    def test_deterministic_realms(self):
        r1 = Realm(seed=b"same-seed")
        r2 = Realm(seed=b"same-seed")
        u1 = r1.user("alice")
        u2 = r2.user("alice")
        assert u1.secret_key.secret == u2.secret_key.secret

    def test_different_seeds_differ(self):
        r1 = Realm(seed=b"seed-one")
        r2 = Realm(seed=b"seed-two")
        assert (
            r1.user("alice").secret_key.secret
            != r2.user("alice").secret_key.secret
        )

    def test_federation_helper_shares_fabric(self):
        from repro.testbed import federation

        realms = federation(["F1.ORG", "F2.ORG"], seed=b"tb-fed")
        assert realms["F1.ORG"].network is realms["F2.ORG"].network
        assert realms["F1.ORG"].clock is realms["F2.ORG"].clock


class TestIssuedForInIssuerMode:
    def test_proxy_scoped_to_issuer_accepted(self, world):
        """A proxy issued-for the authorization server itself passes the
        issuer-mode check there."""
        realm, alice, bob, fs, azs = world
        fs.grant_owner(alice.principal)
        azs.database_for(fs.principal).add(
            AclEntry(subject=SinglePrincipal(alice.principal), operations=("read",))
        )
        creds = bob.kerberos.get_ticket(azs.principal)
        # bob holds a proxy from alice usable at the authz server.
        alice_creds = alice.kerberos.get_ticket(azs.principal)
        helper = grant_via_credentials(
            alice_creds,
            (
                Grantee(principals=(bob.principal,)),
                IssuedFor(servers=(azs.principal,)),
            ),
            realm.clock.now(),
        )
        proxy = bob.authorization_client(azs.principal).authorize(
            fs.principal, ("read",), proxy=helper
        )
        out = bob.client_for(fs.principal).request(
            "read", "a", proxy=proxy
        )
        assert out["data"] == b"A"

    def test_proxy_scoped_elsewhere_rejected_by_issuer(self, world):
        realm, alice, bob, fs, azs = world
        azs.database_for(fs.principal).add(
            AclEntry(subject=SinglePrincipal(alice.principal), operations=("read",))
        )
        alice_creds = alice.kerberos.get_ticket(azs.principal)
        wrong = grant_via_credentials(
            alice_creds,
            (
                Grantee(principals=(bob.principal,)),
                IssuedFor(servers=(fs.principal,)),  # not for the issuer
            ),
            realm.clock.now(),
        )
        with pytest.raises(RestrictionViolation):
            bob.authorization_client(azs.principal).authorize(
                fs.principal, ("read",), proxy=wrong
            )
