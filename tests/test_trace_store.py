"""The causal trace store, the JSONL schema gate, and the waterfall view."""

import pytest

from repro.clock import SimulatedClock
from repro.obs.export import render_trace_waterfall, spans_to_jsonl
from repro.obs.store import (
    TraceStore,
    load_spans_jsonl,
    validate_spans,
)
from repro.obs.trace import Span, Tracer


@pytest.fixture
def clock():
    return SimulatedClock(1000.0)


@pytest.fixture
def tracer(clock):
    return Tracer(now=clock.now)


@pytest.fixture
def store(tracer):
    s = TraceStore()
    tracer.add_finish_listener(s.add)
    return s


def _make_span(span_id, trace_id, parent_id=None, name="s", start=0.0,
               end=1.0, status="ok", **attributes):
    span = Span(
        span_id=span_id,
        parent_id=parent_id,
        run_id=None,
        name=name,
        start=start,
        attributes=attributes,
        trace_id=trace_id,
    )
    span.end = end
    span.status = status
    return span


T1 = "a" * 32
T2 = "b" * 32


class TestTraceStore:
    def test_indexes_finished_spans_by_trace(self, tracer, store, clock):
        with tracer.span("outer", source="alice@X"):
            clock.advance(2.0)
            with tracer.span("inner"):
                clock.advance(1.0)
        (trace_id,) = store.trace_ids()
        spans = store.by_trace(trace_id)
        assert [s.name for s in spans] == ["outer", "inner"]  # causal order
        assert len(store) == 2
        assert store.duration_of(trace_id) == pytest.approx(3.0)

    def test_untraced_spans_are_skipped(self, store):
        store.add(_make_span(1, trace_id=None))
        assert len(store) == 0
        assert store.trace_ids() == []

    def test_prefix_lookup_like_git(self, store):
        store.add(_make_span(1, T1))
        store.add(_make_span(2, T2))
        assert store.by_trace(T1[:8])[0].span_id == 1
        assert store.resolve(T2[:8]) == T2
        assert store.resolve("ff") is None
        assert store.by_trace("ff") == []

    def test_ambiguous_prefix_raises(self, store):
        store.add(_make_span(1, "a1" + "0" * 30))
        store.add(_make_span(2, "a2" + "0" * 30))
        with pytest.raises(KeyError):
            store.by_trace("a")

    def test_by_principal_spans_every_named_attribute(self, store):
        store.add(_make_span(1, T1, source="alice@X", destination="fs@X"))
        store.add(_make_span(2, T2, grantor="alice@X"))
        store.add(_make_span(3, T2, service="bank@X"))
        assert store.by_principal("alice@X") == [T1, T2]
        assert store.by_principal("fs@X") == [T1]
        assert store.by_principal("bank@X") == [T2]
        assert store.by_principal("stranger@X") == []
        assert store.principals() == ["alice@X", "bank@X", "fs@X"]

    def test_slowest_and_failed(self, store):
        store.add(_make_span(1, T1, start=0.0, end=10.0))
        store.add(_make_span(2, T2, start=0.0, end=2.0, status="error"))
        assert store.slowest(1) == [(T1, 10.0)]
        assert store.slowest(5) == [(T1, 10.0), (T2, 2.0)]
        assert store.failed() == [T2]

    def test_clear_empties_every_index(self, store):
        store.add(_make_span(1, T1, source="alice@X"))
        store.clear()
        assert len(store) == 0
        assert store.trace_ids() == []
        assert store.principals() == []


class TestJsonlSchema:
    def test_load_round_trip(self, tracer):
        with tracer.span("outer", source="a@X"):
            with tracer.span("inner"):
                pass
        restored = load_spans_jsonl(spans_to_jsonl(tracer.spans))
        assert [(s.span_id, s.name, s.trace_id) for s in restored] == [
            (s.span_id, s.name, s.trace_id) for s in tracer.spans
        ]

    def test_load_names_the_bad_line(self):
        with pytest.raises(ValueError, match="line 2"):
            load_spans_jsonl('{"span_id": 1}\nnot json')

    def test_clean_dump_validates(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert validate_spans(tracer.spans) == []

    def test_missing_trace_id_flagged(self):
        problems = validate_spans([_make_span(1, trace_id=None)])
        assert any("trace_id" in p for p in problems)

    def test_duplicate_span_id_flagged(self):
        problems = validate_spans(
            [_make_span(1, T1), _make_span(1, T1)]
        )
        assert any("duplicate" in p for p in problems)

    def test_unresolved_parent_flagged(self):
        problems = validate_spans([_make_span(2, T1, parent_id=99)])
        assert any("does not resolve" in p for p in problems)

    def test_parent_in_other_trace_flagged(self):
        problems = validate_spans(
            [_make_span(1, T1), _make_span(2, T2, parent_id=1)]
        )
        assert any("not" in p and T2 in p for p in problems)

    def test_backwards_time_flagged(self):
        problems = validate_spans(
            [_make_span(1, T1, start=5.0, end=1.0)]
        )
        assert any("end" in p for p in problems)

    def test_orphan_trace_flagged(self):
        # Every member claims a parent: the trace has no root.
        problems = validate_spans(
            [
                _make_span(1, T1, parent_id=2),
                _make_span(2, T1, parent_id=1),
            ]
        )
        assert any("no root" in p for p in problems)


class TestWaterfall:
    def test_renders_header_bars_and_events(self, tracer, clock):
        with tracer.span("outer", source="a@X") as outer:
            clock.advance(4.0)
            with tracer.span("inner"):
                tracer.event("ledger.post", posting_id=7)
                clock.advance(4.0)
        text = render_trace_waterfall(tracer.spans)
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {outer.trace_id} — 2 spans")
        assert "8.0000s on the simulated clock" in lines[0]
        assert "outer" in lines[1] and "|" in lines[1]
        assert lines[2].lstrip().startswith("inner")  # indented child
        assert "* ledger.post posting_id=7" in text
        # The child starts halfway: its bar begins past the left edge.
        bar = lines[2].split("|")[1]
        assert bar[0] == " " and "=" in bar

    def test_filters_to_the_requested_trace(self, tracer):
        with tracer.span("first") as first:
            pass
        with tracer.span("second"):
            pass
        text = render_trace_waterfall(tracer.spans, trace_id=first.trace_id)
        assert "first" in text and "second" not in text
        assert "1 spans" in text

    def test_error_spans_are_marked(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert "!!" in render_trace_waterfall(tracer.spans)

    def test_empty_input(self):
        assert render_trace_waterfall([]) == "(no spans in trace)"
