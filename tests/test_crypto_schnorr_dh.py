"""Schnorr signatures, integrated encryption, and Diffie-Hellman."""

import pytest

from repro.crypto import dh, schnorr
from repro.crypto.dh import TEST_GROUP
from repro.crypto.rng import Rng
from repro.errors import CryptoError, IntegrityError, SignatureError


@pytest.fixture
def key(rng):
    return schnorr.generate_keypair(TEST_GROUP, rng=rng)


class TestSchnorrSignatures:
    def test_sign_verify(self, key, rng):
        sig = schnorr.sign(key, b"message", rng=rng)
        schnorr.verify(key.public, b"message", sig)

    def test_wrong_message(self, key, rng):
        sig = schnorr.sign(key, b"message", rng=rng)
        with pytest.raises(SignatureError):
            schnorr.verify(key.public, b"other", sig)

    def test_tampered_signature(self, key, rng):
        sig = bytearray(schnorr.sign(key, b"m", rng=rng))
        sig[5] ^= 1
        with pytest.raises(SignatureError):
            schnorr.verify(key.public, b"m", bytes(sig))

    def test_wrong_key(self, key, rng):
        other = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        sig = schnorr.sign(key, b"m", rng=rng)
        with pytest.raises(SignatureError):
            schnorr.verify(other.public, b"m", sig)

    def test_bad_length(self, key):
        with pytest.raises(SignatureError):
            schnorr.verify(key.public, b"m", b"\x00" * 7)

    def test_signatures_randomized(self, key):
        assert schnorr.sign(key, b"m") != schnorr.sign(key, b"m")

    def test_public_wire_round_trip(self, key):
        pub = schnorr.SchnorrPublicKey.from_wire(key.public.to_wire())
        assert pub == key.public

    def test_fingerprint_distinct(self, key, rng):
        other = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        assert key.public.fingerprint() != other.public.fingerprint()


class TestSchnorrIes:
    def test_round_trip(self, key, rng):
        box = schnorr.encrypt_to(key.public, b"proxy key bytes", rng=rng)
        assert schnorr.decrypt(key, box) == b"proxy key bytes"

    def test_randomized(self, key):
        assert schnorr.encrypt_to(key.public, b"x") != schnorr.encrypt_to(
            key.public, b"x"
        )

    def test_wrong_key(self, key, rng):
        other = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        box = schnorr.encrypt_to(key.public, b"secret")
        with pytest.raises(IntegrityError):
            schnorr.decrypt(other, box)

    def test_tamper_detected(self, key):
        box = bytearray(schnorr.encrypt_to(key.public, b"secret"))
        box[-1] ^= 1
        with pytest.raises(IntegrityError):
            schnorr.decrypt(key, bytes(box))

    def test_truncated(self, key):
        with pytest.raises(CryptoError):
            schnorr.decrypt(key, b"tiny")

    def test_plaintext_confidential(self, key):
        secret = b"very secret conventional proxy key"
        assert secret not in schnorr.encrypt_to(key.public, secret)


class TestDiffieHellman:
    def test_agreement(self, rng):
        a = dh.generate_keypair(TEST_GROUP, rng=rng)
        b = dh.generate_keypair(TEST_GROUP, rng=rng)
        assert dh.shared_key(a, b.public) == dh.shared_key(b, a.public)

    def test_distinct_pairs_distinct_keys(self, rng):
        a = dh.generate_keypair(TEST_GROUP, rng=rng)
        b = dh.generate_keypair(TEST_GROUP, rng=rng)
        c = dh.generate_keypair(TEST_GROUP, rng=rng)
        assert dh.shared_key(a, b.public) != dh.shared_key(a, c.public)

    def test_out_of_range_peer_rejected(self, rng):
        a = dh.generate_keypair(TEST_GROUP, rng=rng)
        with pytest.raises(CryptoError):
            dh.shared_key(a, 0)
        with pytest.raises(CryptoError):
            dh.shared_key(a, TEST_GROUP.p - 1)
        with pytest.raises(CryptoError):
            dh.shared_key(a, TEST_GROUP.p + 5)

    def test_key_length(self, rng):
        a = dh.generate_keypair(TEST_GROUP, rng=rng)
        b = dh.generate_keypair(TEST_GROUP, rng=rng)
        assert len(dh.shared_key(a, b.public)) == 32

    def test_default_group_is_rfc3526(self):
        assert dh.DEFAULT_GROUP.p == dh.RFC3526_PRIME_2048
        assert dh.DEFAULT_GROUP.bit_length == 2048
