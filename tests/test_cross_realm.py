"""Cross-realm authentication and delegation (§1's inter-organization setting)."""

import pytest

from repro.core.restrictions import Authorized, AuthorizedEntry, Grantee
from repro.errors import ReproError, TicketError, UnknownPrincipalError
from repro.kerberos.kdc import cross_realm_principal, federate
from repro.kerberos.proxy_support import grant_via_credentials
from repro.testbed import Realm, federation


@pytest.fixture
def realms():
    return federation(["A.ORG", "B.ORG", "C.ORG"], seed=b"xrealm-test")


class TestFederation:
    def test_cross_realm_ticket(self, realms):
        alice = realms["A.ORG"].user("alice")
        shop = realms["B.ORG"].file_server("shop")
        creds = alice.kerberos.get_ticket(shop.principal)
        assert creds.server == shop.principal
        assert creds.client == alice.principal
        assert creds.client.realm == "A.ORG"

    def test_cross_realm_session(self, realms):
        alice = realms["A.ORG"].user("alice")
        shop = realms["B.ORG"].file_server("shop")
        shop.grant_owner(alice.principal)
        shop.put("doc", b"data")
        out = alice.client_for(shop.principal).request("read", "doc")
        assert out["data"] == b"data"

    def test_cross_realm_tgt_cached(self, realms):
        alice = realms["A.ORG"].user("alice")
        b = realms["B.ORG"]
        s1 = b.file_server("s1")
        s2 = b.file_server("s2")
        alice.kerberos.get_ticket(s1.principal)
        before = b.network.metrics.snapshot()
        alice.kerberos.get_ticket(s2.principal)
        delta = b.network.metrics.delta_since(before)
        # Only the remote TGS exchange — no new home-KDC or AS traffic.
        home_kdc = realms["A.ORG"].kdc.principal
        assert delta.messages_to(home_kdc) == 0

    def test_unfederated_realm_fails(self):
        a = Realm(seed=b"iso-a", realm="ISO-A.ORG")
        # A foreign server in a realm our KDC has no trust path to.
        alice = a.user("alice")
        foreign = alice.kerberos.get_ticket.__self__  # noqa: just clarity
        from repro.encoding.identifiers import PrincipalId

        with pytest.raises(ReproError):
            alice.kerberos.get_ticket(PrincipalId("srv", "NOWHERE.ORG"))

    def test_cross_realm_principal_naming(self):
        p = cross_realm_principal("B.ORG", "A.ORG")
        assert p.name == "krbtgt.B.ORG"
        assert p.realm == "A.ORG"

    def test_federation_is_pairwise_not_transitive(self):
        """Only explicitly federated pairs trust each other."""
        a = Realm(seed=b"pt-a", realm="PA.ORG")
        b = Realm(
            seed=b"pt-b", realm="PB.ORG", network=a.network, clock=a.clock
        )
        c = Realm(
            seed=b"pt-c", realm="PC.ORG", network=a.network, clock=a.clock
        )
        federate(a.kdc, b.kdc)
        federate(b.kdc, c.kdc)
        alice = a.user("alice")
        server_c = c.file_server("srv")
        # A->C has no direct key; our client does not chase multi-hop
        # referral paths, so this fails at the home KDC.
        with pytest.raises(ReproError):
            alice.kerberos.get_ticket(server_c.principal)


class TestCrossRealmDelegation:
    def test_capability_across_realms(self, realms):
        """A grantor in one organization delegates to a bearer in another."""
        alice = realms["A.ORG"].user("alice")
        bob = realms["B.ORG"].user("bob")
        shop = realms["B.ORG"].file_server("shop")
        shop.grant_owner(alice.principal)
        shop.put("doc", b"data")
        creds = alice.kerberos.get_ticket(shop.principal)
        cap = grant_via_credentials(
            creds,
            (Authorized(entries=(AuthorizedEntry("doc", ("read",)),)),),
            realms["A.ORG"].clock.now(),
        )
        out = bob.client_for(shop.principal).request(
            "read", "doc", proxy=cap, anonymous=True
        )
        assert out["data"] == b"data"

    def test_delegate_proxy_across_realms(self, realms):
        alice = realms["A.ORG"].user("alice")
        bob = realms["C.ORG"].user("bob")
        shop = realms["B.ORG"].file_server("shop")
        shop.grant_owner(alice.principal)
        shop.put("doc", b"data")
        creds = alice.kerberos.get_ticket(shop.principal)
        proxy = grant_via_credentials(
            creds,
            (Grantee(principals=(bob.principal,)),),
            realms["A.ORG"].clock.now(),
        )
        out = bob.client_for(shop.principal).request(
            "read", "doc", proxy=proxy
        )
        assert out["data"] == b"data"
        # The audit record spans organizations.
        record = shop.audit.involving(alice.principal)[0]
        assert record.claimant.realm == "C.ORG"
        assert record.grantor.realm == "A.ORG"

    def test_cross_realm_payment(self, realms):
        """Electronic commerce across organizations (§1): a check drawn on
        a bank in realm A clears into an account at a bank in realm B."""
        buyer = realms["A.ORG"].user("buyer")
        merchant = realms["B.ORG"].user("merchant")
        bank_a = realms["A.ORG"].accounting_server("bank-a")
        bank_b = realms["B.ORG"].accounting_server("bank-b")
        bank_a.create_account("buyer", buyer.principal, {"dollars": 100})
        bank_b.create_account("merchant", merchant.principal)
        check = buyer.accounting_client(bank_a.principal).write_check(
            "buyer", merchant.principal, "dollars", 35
        )
        result = merchant.accounting_client(bank_b.principal).deposit_check(
            check, "merchant"
        )
        assert result["paid"] == 35
        assert bank_a.accounts["buyer"].balance("dollars") == 65
        assert bank_b.accounts["merchant"].balance("dollars") == 35
