"""Unit tests for the verification fast path.

Covers the three cache layers and their supporting machinery:

* the process-wide :class:`SignatureCache` (positive-only, LRU);
* the per-verifier :class:`ChainPrefixCache`;
* :class:`VerificationCacheConfig` and the ``override`` context manager;
* encode-once memoization on certificates and network messages;
* the bounded :class:`AuthenticatorCache` (timestamp clamp + hard cap).
"""

import dataclasses

import pytest

from repro.clock import SimulatedClock
from repro.core.evaluation import RequestContext
from repro.core.presentation import present
from repro.core.proxy import cascade, grant_conventional
from repro.core.replay import AuthenticatorCache
from repro.core.vcache import (
    DEFAULT_CONFIG,
    DISABLED_CONFIG,
    ChainPrefixCache,
    VerificationCacheConfig,
    current_config,
    override,
    set_default_config,
)
from repro.core.verification import ProxyVerifier, SharedKeyCrypto
from repro.crypto import signature as sigmod
from repro.crypto.keys import SymmetricKey
from repro.crypto.rng import Rng
from repro.crypto.signature import (
    HmacSigner,
    SignatureCache,
    get_signature_cache,
    set_signature_cache,
)
from repro.encoding.identifiers import PrincipalId
from repro.errors import SignatureError
from repro.net.message import Message

START = 1_000_000.0
ALICE = PrincipalId("alice")
SERVER = PrincipalId("server")


@pytest.fixture(autouse=True)
def _fresh_default_config():
    """Isolate every test from the process-wide cache state."""
    previous = set_default_config(DEFAULT_CONFIG)
    try:
        yield
    finally:
        set_default_config(previous)


def hmac_chain(links=3, rng_seed=b"vcache-test"):
    rng = Rng(seed=rng_seed)
    clock = SimulatedClock(START)
    shared = SymmetricKey.generate(rng=rng)
    proxy = grant_conventional(ALICE, shared, (), START, START + 3600, rng)
    for _ in range(links - 1):
        proxy = cascade(proxy, (), START, START + 3600, rng)
    return clock, SharedKeyCrypto({ALICE: shared}), proxy


# ---------------------------------------------------------------------------
# SignatureCache
# ---------------------------------------------------------------------------

class TestSignatureCache:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SignatureCache(max_entries=0)

    def test_lru_eviction_order(self):
        cache = SignatureCache(max_entries=2)
        k1 = ("hmac", b"k", b"m1", b"s1")
        k2 = ("hmac", b"k", b"m2", b"s2")
        k3 = ("hmac", b"k", b"m3", b"s3")
        assert cache.store(k1) == 0
        assert cache.store(k2) == 0
        assert cache.lookup(k1)  # refresh k1 -> k2 is now oldest
        assert cache.store(k3) == 1
        assert cache.lookup(k1)
        assert not cache.lookup(k2)
        assert cache.lookup(k3)
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2

    def test_successful_verify_is_memoized(self):
        previous = set_signature_cache(SignatureCache())
        try:
            signer = HmacSigner(key=SymmetricKey.generate(rng=Rng(seed=b"s")))
            sig = signer.sign(b"message")
            signer.verify(b"message", sig)
            signer.verify(b"message", sig)
            stats = get_signature_cache().stats()
            assert stats["hits"] == 1
            assert stats["misses"] == 1
            assert stats["entries"] == 1
        finally:
            set_signature_cache(previous)

    def test_failed_verify_is_never_cached(self):
        previous = set_signature_cache(SignatureCache())
        try:
            signer = HmacSigner(key=SymmetricKey.generate(rng=Rng(seed=b"s")))
            bad = b"\x00" * len(signer.sign(b"message"))
            for _ in range(2):
                with pytest.raises(SignatureError):
                    signer.verify(b"message", bad)
            stats = get_signature_cache().stats()
            assert stats["hits"] == 0
            assert stats["misses"] == 2
            assert stats["entries"] == 0
        finally:
            set_signature_cache(previous)

    def test_cache_keys_separate_keys_and_messages(self):
        previous = set_signature_cache(SignatureCache())
        try:
            a = HmacSigner(key=SymmetricKey.generate(rng=Rng(seed=b"a")))
            b = HmacSigner(key=SymmetricKey.generate(rng=Rng(seed=b"b")))
            sig = a.sign(b"msg")
            a.verify(b"msg", sig)
            # Same message+signature under a different key must still fail —
            # the memo entry is bound to a's key fingerprint.
            with pytest.raises(SignatureError):
                b.verify(b"msg", sig)
        finally:
            set_signature_cache(previous)

    def test_disabled_cache_still_verifies(self):
        previous = set_signature_cache(None)
        try:
            signer = HmacSigner(key=SymmetricKey.generate(rng=Rng(seed=b"s")))
            sig = signer.sign(b"message")
            signer.verify(b"message", sig)
            with pytest.raises(SignatureError):
                signer.verify(b"message", b"\x00" * len(sig))
        finally:
            set_signature_cache(previous)

    def test_cache_observer_sees_hits_misses(self):
        events = []
        previous = set_signature_cache(SignatureCache())
        prev_obs = sigmod.set_signature_cache_observer(
            lambda event, scheme: events.append((event, scheme))
        )
        try:
            signer = HmacSigner(key=SymmetricKey.generate(rng=Rng(seed=b"s")))
            sig = signer.sign(b"m")
            signer.verify(b"m", sig)
            signer.verify(b"m", sig)
            assert events == [("miss", "hmac"), ("hit", "hmac")]
        finally:
            sigmod.set_signature_cache_observer(prev_obs)
            set_signature_cache(previous)


# ---------------------------------------------------------------------------
# ChainPrefixCache
# ---------------------------------------------------------------------------

class TestChainPrefixCache:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ChainPrefixCache(max_entries=0)

    def test_miss_then_hit(self):
        cache = ChainPrefixCache()
        assert cache.get(b"k") is None
        assert cache.put(b"k", "material") == 0
        assert cache.get(b"k") == "material"
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
        }

    def test_lru_eviction(self):
        cache = ChainPrefixCache(max_entries=2)
        cache.put(b"a", 1)
        cache.put(b"b", 2)
        assert cache.get(b"a") == 1  # refresh a -> b is oldest
        assert cache.put(b"c", 3) == 1
        assert cache.get(b"b") is None
        assert cache.get(b"a") == 1
        assert cache.get(b"c") == 3
        assert cache.stats()["evictions"] == 1

    def test_clear(self):
        cache = ChainPrefixCache()
        cache.put(b"a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get(b"a") is None


# ---------------------------------------------------------------------------
# Configuration plumbing
# ---------------------------------------------------------------------------

class TestCacheConfig:
    def test_disabled_config_builds_nothing(self):
        assert DISABLED_CONFIG.build_chain_cache() is None
        assert DISABLED_CONFIG.build_signature_cache() is None

    def test_enabled_config_sizes(self):
        config = VerificationCacheConfig(
            signature_cache_size=7, chain_cache_size=5
        )
        assert config.build_signature_cache().max_entries == 7
        assert config.build_chain_cache().max_entries == 5

    def test_override_swaps_and_restores(self):
        before = current_config()
        with override(DISABLED_CONFIG):
            assert current_config() is DISABLED_CONFIG
            assert get_signature_cache() is None
        assert current_config() is before
        assert get_signature_cache() is not None

    def test_override_restores_on_exception(self):
        before = current_config()
        with pytest.raises(RuntimeError):
            with override(DISABLED_CONFIG):
                raise RuntimeError("boom")
        assert current_config() is before
        assert get_signature_cache() is not None

    def test_verifier_picks_up_process_default(self):
        clock, crypto, _ = hmac_chain(links=1)
        with override(DISABLED_CONFIG):
            off = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        on = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        assert off.chain_cache is None
        assert on.chain_cache is not None

    def test_explicit_config_beats_process_default(self):
        clock, crypto, _ = hmac_chain(links=1)
        with override(DISABLED_CONFIG):
            verifier = ProxyVerifier(
                server=SERVER,
                crypto=crypto,
                clock=clock,
                cache_config=DEFAULT_CONFIG,
            )
        assert verifier.chain_cache is not None


# ---------------------------------------------------------------------------
# Chain-prefix caching through the verifier
# ---------------------------------------------------------------------------

class TestVerifierChainCache:
    def test_repeat_presentation_hits_every_link(self):
        clock, crypto, proxy = hmac_chain(links=3)
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        context = RequestContext(server=SERVER, operation="read")
        first = verifier.verify(
            present(proxy, SERVER, clock.now(), "read"), context
        )
        stats = verifier.chain_cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 3
        second = verifier.verify(
            present(proxy, SERVER, clock.now(), "read"), context
        )
        stats = verifier.chain_cache.stats()
        assert stats["hits"] == 3
        assert stats["misses"] == 3
        assert first == second

    def test_shared_prefix_is_reused_across_extensions(self):
        rng = Rng(seed=b"vcache-prefix")
        clock = SimulatedClock(START)
        shared = SymmetricKey.generate(rng=rng)
        base = grant_conventional(ALICE, shared, (), START, START + 3600, rng)
        extended = cascade(base, (), START, START + 3600, rng)
        crypto = SharedKeyCrypto({ALICE: shared})
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        context = RequestContext(server=SERVER, operation="read")
        verifier.verify(present(base, SERVER, clock.now(), "read"), context)
        verifier.verify(
            present(extended, SERVER, clock.now(), "read"), context
        )
        # The shared root prefix hits; only the new cascade link misses.
        stats = verifier.chain_cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2

    def test_tampered_link_misses_and_fails(self):
        from repro.errors import ProxyVerificationError

        clock, crypto, proxy = hmac_chain(links=2)
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        context = RequestContext(server=SERVER, operation="read")
        verifier.verify(
            present(proxy, SERVER, clock.now(), "read"), context
        )  # warm the cache
        bad_cert = dataclasses.replace(
            proxy.certificates[-1],
            signature=b"\x00" * len(proxy.certificates[-1].signature),
        )
        tampered = dataclasses.replace(
            present(proxy, SERVER, clock.now(), "read"),
            certificates=proxy.certificates[:-1] + (bad_cert,),
        )
        with pytest.raises(ProxyVerificationError):
            verifier.verify(tampered, context)
        # The tampered link's digest changed, so it cannot hit the warm
        # prefix entry — and the failed walk must not poison the cache.
        assert verifier.verify(
            present(proxy, SERVER, clock.now(), "read"), context
        )


# ---------------------------------------------------------------------------
# Encode-once memoization
# ---------------------------------------------------------------------------

class TestEncodeOnce:
    def test_certificate_bytes_are_memoized(self):
        _, _, proxy = hmac_chain(links=1)
        cert = proxy.certificates[0]
        assert cert.body_bytes() is cert.body_bytes()
        assert cert.to_bytes() is cert.to_bytes()
        assert cert.digest() is cert.digest()

    def test_digest_is_content_addressed(self):
        _, _, proxy = hmac_chain(links=1)
        cert = proxy.certificates[0]
        roundtripped = type(cert).from_bytes(cert.to_bytes())
        assert roundtripped.digest() == cert.digest()
        tampered = dataclasses.replace(
            cert, signature=b"\x00" * len(cert.signature)
        )
        assert tampered.digest() != cert.digest()

    def test_memo_is_invisible_to_equality(self):
        _, _, proxy = hmac_chain(links=1)
        cert = proxy.certificates[0]
        fresh = type(cert).from_wire(cert.to_wire())
        cert.digest()  # populate the memo on one side only
        assert cert == fresh

    def test_message_wire_size_memoized(self):
        msg = Message(
            source=ALICE,
            destination=SERVER,
            msg_type="read",
            payload={"target": "doc"},
        )
        size = msg.wire_size()
        assert size > 0
        assert msg.__dict__["_wire_size"] == size
        assert msg.wire_size() == size


# ---------------------------------------------------------------------------
# Bounded AuthenticatorCache
# ---------------------------------------------------------------------------

class TestAuthenticatorCacheBounds:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            AuthenticatorCache(SimulatedClock(START), max_entries=0)

    def test_immediate_replay_always_caught(self):
        cache = AuthenticatorCache(
            SimulatedClock(START), window=300.0, max_skew=60.0
        )
        # Even an absurdly old claimed timestamp is retained until `now`.
        assert cache.register(b"old", timestamp=0.0)
        assert not cache.register(b"old", timestamp=0.0)

    def test_retention_follows_claimed_timestamp(self):
        clock = SimulatedClock(START)
        cache = AuthenticatorCache(clock, window=300.0, max_skew=60.0)
        assert cache.register(b"d", timestamp=START - 100.0)
        clock.advance(250.0)  # past claimed + window = START + 200
        assert cache.register(b"d", timestamp=START - 100.0)

    def test_future_claims_clamped_to_window_plus_skew(self):
        clock = SimulatedClock(START)
        cache = AuthenticatorCache(clock, window=300.0, max_skew=60.0)
        # A far-future claimed timestamp must not pin memory for hours:
        # retention is clamped to now + window + max_skew.
        assert cache.register(b"future", timestamp=START + 100_000.0)
        clock.advance(300.0 + 60.0 + 1.0)
        assert cache.register(b"future", timestamp=clock.now())

    def test_hard_cap_evicts_oldest_expiry_first(self):
        clock = SimulatedClock(START)
        cache = AuthenticatorCache(
            clock, window=300.0, max_skew=60.0, max_entries=2
        )
        assert cache.register(b"a", timestamp=START - 200.0)  # earliest expiry
        assert cache.register(b"b", timestamp=START - 100.0)
        assert cache.register(b"c", timestamp=START)  # evicts a
        assert len(cache) == 2
        assert cache.register(b"a", timestamp=START - 200.0)  # a was evicted
        assert not cache.register(b"c", timestamp=START)  # c survived
