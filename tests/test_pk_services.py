"""The pure public-key deployment (§6.1): no KDC, directory + signatures."""

import pytest

from repro.acl import AclEntry, SinglePrincipal
from repro.clock import SimulatedClock
from repro.core.proxy import cascade, grant_hybrid, grant_public
from repro.core.restrictions import (
    Authorized,
    AuthorizedEntry,
    Grantee,
    IssuedFor,
    Quota,
)
from repro.crypto.dh import TEST_GROUP
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    AuthenticatorError,
    AuthorizationDenied,
    ProxyVerificationError,
    ReplayError,
    ReproError,
    RestrictionViolation,
)
from repro.net import Network
from repro.services.pk_endserver import (
    PkClient,
    PkEndServer,
    PublicKeyDirectory,
)

START = 1_000_000.0


@pytest.fixture
def world(rng):
    clock = SimulatedClock(START)
    network = Network(clock, rng=rng)
    directory = PublicKeyDirectory()
    server = PkEndServer(
        PrincipalId("pk-files"), network, clock, directory,
        group=TEST_GROUP, rng=rng,
    )
    files = {"doc": b"pk data"}

    def read(rights, claimant, args, amounts):
        return {"data": files[args["path"]]}

    def write(rights, claimant, args, amounts):
        files[args["path"]] = args["data"]
        return {"ok": True}

    server.register_operation("read", read)
    server.register_operation("write", write)
    alice = PkClient(
        PrincipalId("alice"), network, clock, directory,
        group=TEST_GROUP, rng=rng,
    )
    bob = PkClient(
        PrincipalId("bob"), network, clock, directory,
        group=TEST_GROUP, rng=rng,
    )
    server.acl.add(AclEntry(subject=SinglePrincipal(alice.principal)))
    return clock, network, directory, server, alice, bob


class TestEnvelopeAuthentication:
    def test_signed_request(self, world):
        clock, network, directory, server, alice, bob = world
        out = alice.request(
            server.principal, "read", target="doc", args={"path": "doc"}
        )
        assert out["data"] == b"pk data"

    def test_unlisted_principal_denied(self, world):
        clock, network, directory, server, alice, bob = world
        with pytest.raises(AuthorizationDenied):
            bob.request(
                server.principal, "read", target="doc", args={"path": "doc"}
            )

    def test_unknown_principal_rejected(self, world, rng):
        clock, network, directory, server, alice, bob = world
        stranger = PkClient(
            PrincipalId("stranger"), network, clock, PublicKeyDirectory(),
            group=TEST_GROUP, rng=rng,
        )  # published only to a *different* directory
        with pytest.raises(AuthenticatorError):
            stranger.request(
                server.principal, "read", target="doc", args={"path": "doc"}
            )

    def test_envelope_replay_rejected(self, world):
        clock, network, directory, server, alice, bob = world
        from repro.core.presentation import request_digest

        digest = request_digest("read", "doc")
        envelope = alice._envelope(server.principal, digest).to_wire()
        payload = {
            "operation": "read", "target": "doc",
            "args": {"path": "doc"}, "amounts": {}, "envelope": envelope,
        }
        from repro.net.message import raise_if_error

        raise_if_error(
            network.send(alice.principal, server.principal, "request", payload)
        )
        with pytest.raises(ReplayError):
            raise_if_error(
                network.send(
                    alice.principal, server.principal, "request", payload
                )
            )

    def test_envelope_bound_to_request(self, world):
        """An envelope for one request cannot authorize another."""
        clock, network, directory, server, alice, bob = world
        from repro.core.presentation import request_digest

        envelope = alice._envelope(
            server.principal, request_digest("read", "doc")
        ).to_wire()
        payload = {
            "operation": "write", "target": "other",
            "args": {"path": "other", "data": b"x"}, "amounts": {},
            "envelope": envelope,
        }
        from repro.net.message import raise_if_error

        with pytest.raises(AuthenticatorError):
            raise_if_error(
                network.send(
                    alice.principal, server.principal, "request", payload
                )
            )

    def test_stale_envelope_rejected(self, world):
        clock, network, directory, server, alice, bob = world
        from repro.core.presentation import request_digest

        envelope = alice._envelope(
            server.principal, request_digest("read", "doc")
        ).to_wire()
        clock.advance(server.verifier.max_skew + 1)
        payload = {
            "operation": "read", "target": "doc",
            "args": {"path": "doc"}, "amounts": {}, "envelope": envelope,
        }
        from repro.net.message import raise_if_error

        with pytest.raises(AuthenticatorError):
            raise_if_error(
                network.send(
                    alice.principal, server.principal, "request", payload
                )
            )


class TestPkProxies:
    def test_fig6_proxy_end_to_end(self, world):
        """A pure public-key proxy (Fig. 6), granted and used with no KDC."""
        clock, network, directory, server, alice, bob = world
        proxy = grant_public(
            alice.principal, alice.signer,
            (
                Authorized(entries=(AuthorizedEntry("doc", ("read",)),)),
                IssuedFor(servers=(server.principal,)),
            ),
            clock.now(), clock.now() + 600, group=TEST_GROUP,
        )
        out = bob.request(
            server.principal, "read", target="doc",
            args={"path": "doc"}, proxy=proxy, anonymous=True,
        )
        assert out["data"] == b"pk data"

    def test_hybrid_proxy_end_to_end(self, world):
        """§6.1 hybrid: symmetric proxy key sealed to the server's key."""
        clock, network, directory, server, alice, bob = world
        proxy = grant_hybrid(
            alice.principal, alice.signer,
            server.principal, directory.key_of(server.principal),
            (Authorized(entries=(AuthorizedEntry("doc", ("read",)),)),),
            clock.now(), clock.now() + 600,
        )
        out = bob.request(
            server.principal, "read", target="doc",
            args={"path": "doc"}, proxy=proxy, anonymous=True,
        )
        assert out["data"] == b"pk data"

    def test_delegate_pk_proxy(self, world):
        clock, network, directory, server, alice, bob = world
        proxy = grant_public(
            alice.principal, alice.signer,
            (Grantee(principals=(bob.principal,)),),
            clock.now(), clock.now() + 600, group=TEST_GROUP,
        )
        out = bob.request(
            server.principal, "read", target="doc",
            args={"path": "doc"}, proxy=proxy,
        )
        assert out["data"] == b"pk data"
        # Someone else with the proxy (and key!) still fails the grantee check.
        carol = PkClient(
            PrincipalId("carol"), network, clock, directory,
            group=TEST_GROUP,
        )
        with pytest.raises(RestrictionViolation):
            carol.request(
                server.principal, "read", target="doc",
                args={"path": "doc"}, proxy=proxy,
            )

    def test_cascaded_pk_proxy(self, world):
        clock, network, directory, server, alice, bob = world
        proxy = grant_public(
            alice.principal, alice.signer, (),
            clock.now(), clock.now() + 600, group=TEST_GROUP,
        )
        narrower = cascade(
            proxy, (Quota(currency="bytes", limit=1),),
            clock.now(), clock.now() + 60,
        )
        out = bob.request(
            server.principal, "read", target="doc",
            args={"path": "doc"}, proxy=narrower, anonymous=True,
        )
        assert out["data"] == b"pk data"

    def test_directory_revocation_kills_proxies(self, world):
        """The PK revocation lever: drop the grantor from the directory."""
        clock, network, directory, server, alice, bob = world
        proxy = grant_public(
            alice.principal, alice.signer, (),
            clock.now(), clock.now() + 600, group=TEST_GROUP,
        )
        bob.request(
            server.principal, "read", target="doc",
            args={"path": "doc"}, proxy=proxy, anonymous=True,
        )
        directory.revoke(alice.principal)
        with pytest.raises(ProxyVerificationError):
            bob.request(
                server.principal, "read", target="doc",
                args={"path": "doc"}, proxy=proxy, anonymous=True,
            )

    def test_proxy_for_other_server_rejected(self, world, rng):
        clock, network, directory, server, alice, bob = world
        other = PkEndServer(
            PrincipalId("pk-other"), network, clock, directory,
            group=TEST_GROUP, rng=rng,
        )
        other.register_operation(
            "read", lambda r, c, a, m: {"data": b"other"}
        )
        other.acl.add(AclEntry(subject=SinglePrincipal(alice.principal)))
        proxy = grant_public(
            alice.principal, alice.signer,
            (IssuedFor(servers=(server.principal,)),),
            clock.now(), clock.now() + 600, group=TEST_GROUP,
        )
        with pytest.raises(RestrictionViolation):
            bob.request(
                other.principal, "read", target="doc",
                args={"path": "doc"}, proxy=proxy, anonymous=True,
            )

    def test_proxy_requests_audited(self, world):
        clock, network, directory, server, alice, bob = world
        proxy = grant_public(
            alice.principal, alice.signer, (),
            clock.now(), clock.now() + 600, group=TEST_GROUP,
        )
        bob.request(
            server.principal, "read", target="doc",
            args={"path": "doc"}, proxy=proxy, anonymous=True,
        )
        assert len(server.audit.involving(alice.principal)) == 1
