"""The unified Signer/Verifier interface (§6: mechanism-agnostic core)."""

import pytest

from repro.crypto.dh import TEST_GROUP
from repro.crypto import schnorr
from repro.crypto.keys import KeyPair, SymmetricKey
from repro.crypto.rng import Rng
from repro.crypto.signature import (
    HmacSigner,
    RsaSigner,
    SchnorrSigner,
    signer_for_keypair,
    signer_for_symmetric,
)
from repro.errors import KeyError_, SignatureError


class TestHmacSigner:
    def test_sign_verify(self, symmetric_key):
        signer = HmacSigner(key=symmetric_key)
        sig = signer.sign(b"m")
        signer.verify(b"m", sig)

    def test_wrong_key(self, symmetric_key, rng):
        signer = HmacSigner(key=symmetric_key)
        other = HmacSigner(key=SymmetricKey.generate(rng=rng))
        with pytest.raises(SignatureError):
            other.verify(b"m", signer.sign(b"m"))

    def test_key_id(self, symmetric_key):
        assert HmacSigner(key=symmetric_key).key_id() == symmetric_key.fingerprint()


class TestSchnorrSigner:
    def test_sign_verify_via_public_verifier(self, schnorr_key):
        signer = SchnorrSigner(private=schnorr_key)
        sig = signer.sign(b"m")
        signer.verifier().verify(b"m", sig)

    def test_verifier_has_no_private(self, schnorr_key):
        verifier = SchnorrSigner(private=schnorr_key).verifier()
        assert not hasattr(verifier, "sign")


class TestRsaSigner:
    def test_sign_verify(self, rsa_keypair):
        signer = RsaSigner(keypair=rsa_keypair)
        sig = signer.sign(b"m")
        signer.verifier().verify(b"m", sig)

    def test_public_only_keypair_cannot_sign(self, rsa_keypair):
        public = rsa_keypair.public_only()
        signer = RsaSigner(keypair=public)
        with pytest.raises(KeyError_):
            signer.sign(b"m")


class TestSchemeSeparation:
    """A signature under one scheme never verifies under another."""

    def test_hmac_vs_schnorr(self, symmetric_key, schnorr_key):
        hmac_signer = HmacSigner(key=symmetric_key)
        schnorr_signer = SchnorrSigner(private=schnorr_key)
        with pytest.raises(SignatureError):
            schnorr_signer.verify(b"m", hmac_signer.sign(b"m"))
        with pytest.raises(SignatureError):
            hmac_signer.verify(b"m", schnorr_signer.sign(b"m"))

    def test_rsa_vs_schnorr(self, rsa_keypair, schnorr_key):
        rsa_signer = RsaSigner(keypair=rsa_keypair)
        schnorr_signer = SchnorrSigner(private=schnorr_key)
        with pytest.raises(SignatureError):
            schnorr_signer.verify(b"m", rsa_signer.sign(b"m"))
        with pytest.raises(SignatureError):
            rsa_signer.verify(b"m", schnorr_signer.sign(b"m"))


class TestConvenience:
    def test_signer_for_symmetric(self, symmetric_key):
        signer = signer_for_symmetric(symmetric_key)
        signer.verify(b"x", signer.sign(b"x"))

    def test_signer_for_keypair(self, rsa_keypair):
        signer = signer_for_keypair(rsa_keypair)
        signer.verify(b"x", signer.sign(b"x"))


class TestKeyWrappers:
    def test_symmetric_repr_hides_secret(self, symmetric_key):
        assert symmetric_key.secret.hex() not in repr(symmetric_key)

    def test_symmetric_wrong_length(self):
        with pytest.raises(KeyError_):
            SymmetricKey(secret=b"short")

    def test_keypair_public_only(self, rsa_keypair):
        pub = rsa_keypair.public_only()
        assert not pub.has_private
        assert pub.fingerprint() == rsa_keypair.fingerprint()
        with pytest.raises(KeyError_):
            pub.require_private()
