"""Wire-level trace context: the traceparent header and trace-id rules."""

import pytest

from repro.clock import SimulatedClock
from repro.obs.context import TraceContext, span_hex_id
from repro.obs.trace import Tracer

TRACE = "0af7651916cd43dd8448eb211c80319c"
SPAN = "b7ad6b7169203331"


@pytest.fixture
def clock():
    return SimulatedClock(1000.0)


@pytest.fixture
def tracer(clock):
    return Tracer(now=clock.now)


class TestTraceContext:
    def test_header_round_trip(self):
        context = TraceContext(trace_id=TRACE, span_id=SPAN)
        header = context.to_header()
        assert header == f"00-{TRACE}-{SPAN}-01"
        assert TraceContext.parse(header) == TraceContext(
            trace_id=TRACE, span_id=SPAN
        )

    def test_child_keeps_trace_and_chains_parent(self):
        context = TraceContext(trace_id=TRACE, span_id=SPAN)
        child = context.child(span_hex_id(42))
        assert child.trace_id == TRACE
        assert child.parent_span_id == SPAN
        assert child.span_id == span_hex_id(42)

    @pytest.mark.parametrize(
        "header",
        [
            "",
            "junk",
            "00-short-b7ad6b7169203331-01",
            f"00-{TRACE}-tooshort-01",
            f"00-{TRACE.upper()}-{SPAN}-01",  # hex must be lowercase
            f"00-{TRACE}-{SPAN}",  # missing flags
        ],
    )
    def test_try_parse_rejects_junk(self, header):
        assert TraceContext.try_parse(header) is None

    def test_parse_raises_where_try_parse_returns_none(self):
        with pytest.raises(ValueError):
            TraceContext.parse("junk")
        assert TraceContext.try_parse(None) is None

    def test_malformed_ids_rejected_at_construction(self):
        with pytest.raises(ValueError):
            TraceContext(trace_id="xyz", span_id=SPAN)
        with pytest.raises(ValueError):
            TraceContext(trace_id=TRACE, span_id="xyz")

    def test_span_hex_id_is_16_hex_and_collision_free(self):
        ids = {span_hex_id(n) for n in range(1, 200)}
        assert len(ids) == 199
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)


class TestTracerTraceIds:
    def test_root_span_mints_a_deterministic_trace_id(self, clock):
        first = Tracer(now=clock.now)
        second = Tracer(now=clock.now)
        with first.span("a") as a:
            pass
        with second.span("b") as b:
            pass
        # Same seeded rng, same draw position -> same id; and it is
        # well-formed.
        assert a.trace_id == b.trace_id
        assert len(a.trace_id) == 32

    def test_children_inherit_the_parents_trace_id(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                with tracer.span("leaf") as leaf:
                    pass
        assert inner.trace_id == outer.trace_id
        assert leaf.trace_id == outer.trace_id
        assert tracer.spans_in_trace(outer.trace_id) == [outer, inner, leaf]

    def test_sequential_roots_get_distinct_trace_ids(self, tracer):
        with tracer.span("first") as first:
            pass
        with tracer.span("second") as second:
            pass
        assert first.trace_id != second.trace_id

    def test_remote_context_adopted_when_stack_is_empty(self, tracer):
        header = f"00-{TRACE}-{SPAN}-01"
        with tracer.span("rpc.handle", remote_context=header) as span:
            assert tracer.current_trace_id() == TRACE
        assert span.trace_id == TRACE
        assert span.remote_parent == SPAN
        assert span.parent_id is None
        # The emitted context chains causally through the remote parent.
        assert span.context().parent_span_id == SPAN

    def test_local_parent_wins_over_remote_context(self, tracer):
        header = f"00-{TRACE}-{SPAN}-01"
        with tracer.span("outer") as outer:
            with tracer.span("inner", remote_context=header) as inner:
                pass
        assert inner.trace_id == outer.trace_id
        assert inner.trace_id != TRACE
        assert inner.remote_parent is None

    def test_malformed_remote_context_falls_back_to_fresh_id(self, tracer):
        with tracer.span("rpc.handle", remote_context="garbage") as span:
            pass
        assert len(span.trace_id) == 32
        assert span.remote_parent is None

    def test_current_context_names_the_active_span(self, tracer):
        assert tracer.current_context() is None
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                context = tracer.current_context()
                assert context.trace_id == outer.trace_id
                assert context.span_id == inner.hex_id
                assert context.parent_span_id == outer.hex_id
        assert tracer.current_context() is None

    def test_finish_listeners_see_each_completed_span(self, tracer):
        finished = []
        tracer.add_finish_listener(finished.append)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            assert [s.name for s in finished] == ["inner"]
        assert [s.name for s in finished] == ["inner", "outer"]

    def test_trace_id_survives_jsonl_round_trip(self, tracer):
        from repro.obs.export import spans_to_jsonl
        from repro.obs.store import load_spans_jsonl

        header = f"00-{TRACE}-{SPAN}-01"
        with tracer.span("handle", remote_context=header):
            with tracer.span("child"):
                pass
        restored = load_spans_jsonl(spans_to_jsonl(tracer.spans))
        assert [s.trace_id for s in restored] == [TRACE, TRACE]
        assert restored[0].remote_parent == SPAN
        assert restored[1].remote_parent is None
