"""Regression tests for fund-destroying accounting bugs.

Each test pins a specific pre-ledger failure mode:

* ``_op_debit`` debited the payor (or consumed a certified hold) *before*
  resolving the credit destination, so an unknown ``credit_account``
  raised after the debit and the funds simply vanished — the accept-once
  registry rolled back, the balance did not.
* ``open-account`` accepted any name, so a squatter could pre-create
  ``settlement:<peer>`` (or ``cashier``) and silently collect every
  future inter-server settlement credit.
* Amounts and expiries were trusted from the client: a negative amount
  reaching the certified-hold path deleted the hold and over-credited,
  and an arbitrary ``expires_at`` locked funds forever.
"""

import pytest

from repro.core.restrictions import (
    AcceptOnce,
    Authorized,
    AuthorizedEntry,
    Quota,
)
from repro.errors import (
    AccountingError,
    CheckError,
    ReproError,
)
from repro.kerberos.proxy_support import grant_via_credentials
from repro.services.accounting import CASHIER_ACCOUNT, SETTLEMENT_PREFIX
from repro.services.checks import (
    ACCOUNT_TARGET_PREFIX,
    DEBIT_OPERATION,
    account_target,
)
from repro.testbed import Realm


def non_settlement_total(server, currency):
    return sum(
        account.balance(currency) + account.held_total(currency)
        for name, account in server.accounts.items()
        if not name.startswith(SETTLEMENT_PREFIX)
    )


@pytest.fixture
def realm():
    return Realm(seed=b"acct-regressions")


@pytest.fixture
def bank(realm):
    return realm.accounting_server("bank")


@pytest.fixture
def alice(realm, bank):
    user = realm.user("alice")
    bank.create_account("alice", user.principal, {"dollars": 100})
    return user


@pytest.fixture
def bob(realm, bank):
    user = realm.user("bob")
    bank.create_account("bob", user.principal)
    return user


# ----------------------------------------------------------------------
# Bug 1: fund destruction via unknown credit_account
# ----------------------------------------------------------------------


class TestDebitDestinationResolvedFirst:
    def _bearer_check(self, realm, alice, bank, number="bearer-1"):
        """A check with no grantee: anyone holding it may present it
        anonymously, so ``claimant`` is None at the server and an unknown
        ``credit_account`` cannot fall back to a settlement account —
        exactly the path that used to destroy funds."""
        credentials = alice.kerberos.get_ticket(bank.principal)
        restrictions = (
            AcceptOnce(identifier=number),
            Quota(currency="dollars", limit=30),
            Authorized(
                entries=(
                    AuthorizedEntry(
                        target=f"{ACCOUNT_TARGET_PREFIX}alice",
                        operations=(DEBIT_OPERATION,),
                    ),
                )
            ),
        )
        return grant_via_credentials(
            credentials, restrictions, issued_at=realm.clock.now()
        )

    def test_unknown_credit_account_conserves_funds(
        self, realm, bank, alice, bob
    ):
        bundle = self._bearer_check(realm, alice, bank)
        before = non_settlement_total(bank, "dollars")
        with pytest.raises(CheckError, match="to credit"):
            bob.client_for(bank.principal).request(
                DEBIT_OPERATION,
                target=f"{ACCOUNT_TARGET_PREFIX}alice",
                args={
                    "currency": "dollars",
                    "amount": 30,
                    "credit_account": "ghost",
                },
                amounts={"dollars": 30},
                proxy=bundle,
                anonymous=True,
            )
        # Pre-fix: alice lost 30 dollars here and nobody gained them.
        assert bank.accounts["alice"].balance("dollars") == 100
        assert non_settlement_total(bank, "dollars") == before
        assert bank.ledger.audit_discrepancies() == []

    def test_check_still_cashable_after_failed_presentation(
        self, realm, bank, alice, bob
    ):
        bundle = self._bearer_check(realm, alice, bank, number="bearer-2")
        client = bob.client_for(bank.principal)
        with pytest.raises(CheckError):
            client.request(
                DEBIT_OPERATION,
                target=f"{ACCOUNT_TARGET_PREFIX}alice",
                args={
                    "currency": "dollars",
                    "amount": 30,
                    "credit_account": "ghost",
                },
                amounts={"dollars": 30},
                proxy=bundle,
                anonymous=True,
            )
        # The accept-once rollback and the ledger rollback agree: the
        # bounced presentation consumed nothing, so the same check clears
        # fine against a real account.
        result = client.request(
            DEBIT_OPERATION,
            target=f"{ACCOUNT_TARGET_PREFIX}alice",
            args={
                "currency": "dollars",
                "amount": 30,
                "credit_account": "bob",
            },
            amounts={"dollars": 30},
            proxy=bundle,
            anonymous=True,
        )
        assert result["paid"] == 30
        assert bank.accounts["alice"].balance("dollars") == 70
        assert bank.accounts["bob"].balance("dollars") == 30

    def test_certified_hold_survives_bad_destination(
        self, realm, bank, alice, bob
    ):
        """The hold path was the nastier variant: the hold was deleted and
        the remainder re-credited before the destination lookup raised."""
        client = alice.accounting_client(bank.principal)
        check = client.write_check("alice", bob.principal, "dollars", 40)
        client.certify_check(check, bank.principal)
        assert bank.accounts["alice"].held_total("dollars") == 40
        with pytest.raises(ReproError):
            bob.client_for(bank.principal).request(
                DEBIT_OPERATION,
                target=account_target(check.payor_account),
                args={
                    "currency": "dollars",
                    "amount": 40,
                    "credit_account": "ghost",
                },
                amounts={"dollars": 40},
                proxy=check.bundle,
                anonymous=True,
            )
        assert bank.accounts["alice"].held_total("dollars") == 40
        assert bank.accounts["alice"].balance("dollars") == 60
        assert bank.ledger.audit_discrepancies() == []


# ----------------------------------------------------------------------
# Bug 2: reserved-name squatting
# ----------------------------------------------------------------------


class TestReservedNames:
    @pytest.mark.parametrize(
        "name",
        [
            CASHIER_ACCOUNT,
            f"{SETTLEMENT_PREFIX}bank",
            f"{SETTLEMENT_PREFIX}anything-at-all",
        ],
    )
    def test_open_account_rejects_reserved_names(self, realm, bank, name):
        mallory = realm.user("mallory")
        client = mallory.accounting_client(bank.principal)
        with pytest.raises(AccountingError, match="reserved"):
            client.open_account(name)
        assert name not in bank.accounts or name == CASHIER_ACCOUNT

    def test_settlement_account_must_be_owned_by_peer(self, realm, bank):
        """Even if a squatted account exists (e.g. created server-side by
        mistake), settlement resolution refuses to pay into it."""
        mallory = realm.user("mallory")
        peer = realm.principal("otherbank")
        bank.create_account(
            f"{SETTLEMENT_PREFIX}{peer.name}", mallory.principal
        )
        with pytest.raises(AccountingError, match="owned by"):
            bank._settlement_account(peer)

    def test_cross_server_settlement_hijack_is_blocked(self, realm):
        """End-to-end: a squatted settlement account at the payor bank
        makes the deposit fail — atomically, with the payor's funds and
        the check both intact."""
        bank_a = realm.accounting_server("bank-a")
        bank_b = realm.accounting_server("bank-b")
        payor = realm.user("payor")
        payee = realm.user("payee")
        mallory = realm.user("mallory2")
        bank_a.create_account("payor", payor.principal, {"dollars": 50})
        bank_b.create_account("payee", payee.principal)
        # Mallory squats bank-b's settlement account at bank-a.
        bank_a.create_account(
            f"{SETTLEMENT_PREFIX}{bank_b.principal.name}", mallory.principal
        )
        check = payor.accounting_client(bank_a.principal).write_check(
            "payor", payee.principal, "dollars", 20
        )
        with pytest.raises(ReproError):
            payee.accounting_client(bank_b.principal).deposit_check(
                check, "payee"
            )
        assert bank_a.accounts["payor"].balance("dollars") == 50
        squatted = bank_a.accounts[
            f"{SETTLEMENT_PREFIX}{bank_b.principal.name}"
        ]
        assert squatted.balance("dollars") == 0
        assert bank_a.ledger.audit_discrepancies() == []
        assert bank_b.ledger.audit_discrepancies() == []


# ----------------------------------------------------------------------
# Bug 3: missing amount/expiry validation
# ----------------------------------------------------------------------


class TestBoundaryValidation:
    @pytest.mark.parametrize("amount", [0, -1, -50])
    def test_transfer_rejects_non_positive_amounts(
        self, realm, bank, alice, bob, amount
    ):
        client = alice.accounting_client(bank.principal)
        with pytest.raises(AccountingError, match="positive"):
            client.transfer("alice", "bob", "dollars", amount)
        assert bank.accounts["alice"].balance("dollars") == 100
        assert bank.accounts["bob"].balance("dollars") == 0

    def test_negative_amount_cannot_raid_certified_hold(
        self, realm, bank, alice, bob
    ):
        """Pre-fix: clearing a certified check for a negative amount
        deleted the hold and credited the payor hold.amount - amount —
        more than was ever held."""
        client = alice.accounting_client(bank.principal)
        check = client.write_check("alice", bob.principal, "dollars", 40)
        client.certify_check(check, bank.principal)
        total_before = non_settlement_total(bank, "dollars")
        with pytest.raises(ReproError):
            bob.accounting_client(bank.principal).deposit_check(
                check, "bob", amount=-10
            )
        assert bank.accounts["alice"].held_total("dollars") == 40
        assert bank.accounts["alice"].balance("dollars") == 60
        assert non_settlement_total(bank, "dollars") == total_before
        assert bank.ledger.audit_discrepancies() == []

    def test_certify_rejects_inflated_expiry(self, realm, bank, alice, bob):
        """A hostile client forging a far-future ``expires_at`` (the
        client helper clamps to the ticket lifetime, so go raw) must not
        get a hold — funds would be locked past any check's useful life."""
        client = alice.accounting_client(bank.principal)
        check = client.write_check("alice", bob.principal, "dollars", 10)
        with pytest.raises(CheckError, match="expires_at"):
            client.service.request(
                "certify-check",
                target=account_target(check.payor_account),
                args={
                    "account": "alice",
                    "check_number": check.number,
                    "payee": check.payee.to_wire(),
                    "currency": check.currency,
                    "amount": check.amount,
                    "end_server": bank.principal.to_wire(),
                    "expires_at": realm.clock.now() + 10.0**9,
                },
            )
        assert bank.accounts["alice"].holds == {}
        assert bank.accounts["alice"].balance("dollars") == 100

    def test_certify_rejects_past_expiry(self, realm, bank, alice, bob):
        client = alice.accounting_client(bank.principal)
        check = client.write_check("alice", bob.principal, "dollars", 10)
        with pytest.raises(CheckError, match="expires_at"):
            client.service.request(
                "certify-check",
                target=account_target(check.payor_account),
                args={
                    "account": "alice",
                    "check_number": check.number,
                    "payee": check.payee.to_wire(),
                    "currency": check.currency,
                    "amount": check.amount,
                    "end_server": bank.principal.to_wire(),
                    "expires_at": realm.clock.now() - 1.0,
                },
            )
        assert bank.accounts["alice"].holds == {}

    def test_cashiers_check_rejects_inflated_expiry(
        self, realm, bank, alice, bob
    ):
        client = alice.accounting_client(bank.principal)
        with pytest.raises(CheckError, match="expires_at"):
            client.purchase_cashiers_check(
                "alice", bob.principal, "dollars", 10, lifetime=10.0**9
            )
        assert bank.accounts["alice"].balance("dollars") == 100
        assert bank.accounts[CASHIER_ACCOUNT].balance("dollars") == 0
