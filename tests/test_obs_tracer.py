"""The span tracer: nesting, runs, events, and the exporters."""

import json

import pytest

from repro.clock import SimulatedClock
from repro.errors import ReproError
from repro.obs.export import (
    render_message_trace,
    render_span_tree,
    spans_to_jsonl,
)
from repro.obs.telemetry import NO_TELEMETRY, Telemetry
from repro.obs.trace import Tracer


@pytest.fixture
def clock():
    return SimulatedClock(1000.0)


@pytest.fixture
def tracer(clock):
    return Tracer(now=clock.now)


class TestNesting:
    def test_stack_parenting(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span is inner
            assert tracer.current_span is outer
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert tracer.children_of(outer) == [inner]

    def test_timing_comes_from_the_injected_clock(self, tracer, clock):
        with tracer.span("work") as span:
            clock.advance(2.5)
        assert span.start == 1000.0
        assert span.end == 1002.5
        assert span.duration == 2.5

    def test_exception_marks_error_and_reraises(self, tracer):
        with pytest.raises(ReproError):
            with tracer.span("doomed"):
                raise ReproError("boom")
        (span,) = tracer.spans
        assert span.status == "error"
        assert "boom" in span.attributes["error"]
        assert span.end is not None
        assert tracer.current_span is None

    def test_attributes_set_and_events(self, tracer, clock):
        with tracer.span("s", a=1) as span:
            span.set(b=2)
            tracer.event("checkpoint", detail="x")
        assert span.attributes == {"a": 1, "b": 2}
        (event,) = span.events
        assert event.name == "checkpoint"
        assert event.attributes == {"detail": "x"}

    def test_orphan_events(self, tracer):
        tracer.event("floating")
        assert [e.name for e in tracer.orphan_events] == ["floating"]


class TestRuns:
    def test_runs_stamp_ids_and_open_root_spans(self, tracer):
        with tracer.run("fig3"):
            with tracer.span("child"):
                pass
        with tracer.run("fig3"):
            pass
        run_ids = [s.run_id for s in tracer.spans]
        assert run_ids == ["run-1:fig3", "run-1:fig3", "run-2:fig3"]
        assert [s.name for s in tracer.roots()] == ["run:fig3", "run:fig3"]
        assert len(tracer.spans_in_run("run-1:fig3")) == 2

    def test_outside_runs_spans_have_no_run_id(self, tracer):
        with tracer.span("loose"):
            pass
        assert tracer.spans[0].run_id is None

    def test_clear_keeps_open_spans(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            tracer.clear()
            assert [s.name for s in tracer.spans] == ["outer"]


class TestExporters:
    def test_jsonl_round_trip(self, tracer, clock):
        with tracer.span("a", who=b"\x01\x02", chain=("x", "y")):
            clock.advance(1)
        lines = spans_to_jsonl(tracer.spans).splitlines()
        (record,) = [json.loads(line) for line in lines]
        assert record["name"] == "a"
        assert record["attributes"]["who"] == "0102"  # bytes -> hex
        assert record["attributes"]["chain"] == ["x", "y"]
        assert record["end"] == record["start"] + 1

    def test_tree_renders_nesting_and_events(self, tracer):
        with tracer.span("outer"):
            tracer.event("mark")
            with tracer.span("inner"):
                pass
        tree = render_span_tree(tracer.spans)
        out = tree.splitlines()
        assert out[0].startswith("outer")
        assert any("* mark" in line for line in out)
        assert any("`- inner" in line for line in out)

    def test_message_trace_numbers_net_sends(self, tracer):
        with tracer.span(
            "net.send",
            source="a",
            destination="b",
            msg_type="request",
        ) as outer:
            outer.set(request_bytes=10, response_bytes=20)
            with tracer.span(
                "net.send", source="b", destination="c", msg_type="hop"
            ) as inner:
                inner.set(request_bytes=5)
        text = render_message_trace(tracer.spans)
        lines = text.splitlines()
        assert lines[0].startswith(" 1. a -> b : request")
        assert "(req 10 B, rsp 20 B)" in lines[0]
        # The nested server-to-server hop is indented one level.
        assert lines[1].startswith("     2. b -> c : hop")

    def test_empty_renders(self):
        assert render_span_tree([]) == "(no spans recorded)"
        assert render_message_trace([]) == "(no messages recorded)"


class TestTelemetryFacade:
    def test_null_telemetry_is_falsy_and_inert(self):
        assert not NO_TELEMETRY
        assert NO_TELEMETRY.enabled is False
        with NO_TELEMETRY.span("x", a=1) as span:
            span.set(b=2)
            span.add_event(0.0, "e")
        NO_TELEMETRY.inc("c")
        NO_TELEMETRY.observe("h", 1.0)
        NO_TELEMETRY.event("e")

    def test_live_telemetry_binds_realm_clock_once(self):
        clock_a = SimulatedClock(10.0)
        clock_b = SimulatedClock(99.0)
        t = Telemetry()
        t.bind_clock(clock_a)
        t.bind_clock(clock_b)  # second bind is ignored
        with t.span("s") as span:
            pass
        assert span.start == 10.0

    def test_pinned_clock_wins_over_bind(self):
        pinned = SimulatedClock(5.0)
        t = Telemetry(clock=pinned)
        t.bind_clock(SimulatedClock(77.0))
        with t.span("s") as span:
            pass
        assert span.start == 5.0

    def test_metric_conveniences(self):
        t = Telemetry()
        t.inc("ops_total", op="x")
        t.set_gauge("depth", 3)
        t.observe("lat", 0.5, buckets=(1.0,))
        assert t.metrics.counter("ops_total").value(op="x") == 1
        assert t.metrics.gauge("depth").value() == 3
        assert t.metrics.histogram("lat").count() == 1
