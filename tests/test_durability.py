"""Exactly-once guarantees must survive a crash-restart (the PR's bugfix).

Before the WAL, every exactly-once registry — the response cache keyed by
``_rid``, the accept-once registry holding paid check numbers and consumed
presentation proofs — lived in process memory and silently died with the
process.  A resent request re-ran its handler; a paid check cleared twice.
The tests here pin both failure modes (against servers *without*
durability, simulating what a crash does to process memory) and prove the
WAL-backed registries close them: a server rebuilt from its store still
answers resends from cache and still rejects reused check numbers.
"""

import pytest

from repro.durability import DurabilityStore
from repro.errors import ReplayError
from repro.ledger import wal
from repro.net.message import raise_if_error
from repro.testbed import Realm


def build_world(tmp_path, seed, durable=True):
    """A resilient realm with one durable bank and two funded users."""
    realm = Realm(seed=seed, resilience=True)
    alice = realm.user("alice")
    bob = realm.user("bob")
    kwargs = {}
    if durable:
        kwargs["durability"] = DurabilityStore(str(tmp_path / "bank"))
    bank = realm.accounting_server("bank", **kwargs)
    bank.create_account("alice", alice.principal, {"dollars": 100})
    bank.create_account("bob", bob.principal)
    return realm, alice, bob, bank


def crash_restart(realm, tmp_path, name="bank"):
    """What a crash-restart does: new process, same directory on disk."""
    realm.network.unregister(realm.principal(name))
    return realm.restart_accounting_server(
        name, durability=DurabilityStore(str(tmp_path / name))
    )


def capture_requests(realm, destination):
    """Tap the fabric for ``request`` messages bound for ``destination``."""
    captured = []

    def tap(message):
        if (
            message.destination == destination
            and message.msg_type == "request"
            and "_rid" in message.payload
        ):
            captured.append(message)

    realm.network.add_tap(tap)
    return captured


class TestResentRidAcrossRestart:
    def test_bug_crash_forgets_answered_requests_and_double_debits(self):
        """The pre-WAL failure mode, pinned: wiping the in-memory
        registries (exactly what a crash did before this PR) makes a
        byte-identical resend re-run the handler and debit twice."""
        realm, alice, bob, bank = build_world(None, b"durab-bug", durable=False)
        captured = capture_requests(realm, bank.principal)
        alice.accounting_client(bank.principal).transfer(
            "alice", "bob", "dollars", 30
        )
        assert len(captured) == 1
        assert bank.accounts["alice"].balance("dollars") == 70
        # A crash takes process memory with it: both exactly-once
        # registries vanish while the books (imagine them durable) stay.
        bank.dedupe._entries.clear()
        registry = bank.acceptor.verifier.accept_once
        registry._seen.clear()
        registry._counts.clear()
        bank.ledger._dedupe.clear()
        raise_if_error(bank.handle(captured[0]))
        # Debited twice for one logical transfer — the bug this PR closes.
        assert bank.accounts["alice"].balance("dollars") == 40

    def test_fix_resend_after_restart_answered_from_durable_cache(
        self, tmp_path
    ):
        realm, alice, bob, bank = build_world(tmp_path, b"durab-rid")
        captured = capture_requests(realm, bank.principal)
        alice.accounting_client(bank.principal).transfer(
            "alice", "bob", "dollars", 30
        )
        assert len(captured) == 1
        bank2 = crash_restart(realm, tmp_path)
        assert bank2.recovery is not None and bank2.recovery.ok
        before_hits = bank2.dedupe.hits
        raise_if_error(bank2.handle(captured[0]))
        # Answered from the recovered response cache — not re-executed.
        assert bank2.dedupe.hits == before_hits + 1
        assert bank2.accounts["alice"].balance("dollars") == 70
        assert bank2.accounts["bob"].balance("dollars") == 30


class TestPaidChecksAcrossRestart:
    def write_and_deposit(self, alice, bob, bank):
        check = alice.accounting_client(bank.principal).write_check(
            "alice", bob.principal, "dollars", 10
        )
        bob.accounting_client(bank.principal).deposit_check(check, "bob")
        return check

    def test_bug_crash_forgets_paid_checks(self):
        realm, alice, bob, bank = build_world(
            None, b"durab-check-bug", durable=False
        )
        check = self.write_and_deposit(alice, bob, bank)
        assert bank.accounts["alice"].balance("dollars") == 90
        registry = bank.acceptor.verifier.accept_once
        registry._seen.clear()
        registry._counts.clear()
        # §4 says the number is kept "until the expiration time on the
        # check" — but memory alone forgot it at the first crash, and the
        # same check clears a second time.
        bob.accounting_client(bank.principal).deposit_check(check, "bob")
        assert bank.accounts["alice"].balance("dollars") == 80

    def test_fix_reused_check_number_rejected_after_restart(self, tmp_path):
        realm, alice, bob, bank = build_world(tmp_path, b"durab-check")
        check = self.write_and_deposit(alice, bob, bank)
        bank2 = crash_restart(realm, tmp_path)
        assert bank2.recovery is not None and bank2.recovery.ok
        with pytest.raises(ReplayError):
            bob.accounting_client(bank2.principal).deposit_check(
                check, "bob"
            )
        assert bank2.accounts["alice"].balance("dollars") == 90
        assert bank2.accounts["bob"].balance("dollars") == 10
        # The recovered books balance: conservation is machine-checked.
        assert bank2.ledger.audit_discrepancies() == []


class TestRecoveredBooks:
    def test_balances_and_audit_survive_restart(self, tmp_path):
        realm, alice, bob, bank = build_world(tmp_path, b"durab-books")
        client = alice.accounting_client(bank.principal)
        for amount in (5, 7, 11):
            client.transfer("alice", "bob", "dollars", amount)
        audit_len = len(bank.audit)
        bank2 = crash_restart(realm, tmp_path)
        assert bank2.recovery is not None and bank2.recovery.ok
        assert bank2.accounts["alice"].balance("dollars") == 77
        assert bank2.accounts["bob"].balance("dollars") == 23
        # Audit parity: the trail is part of the durable state.
        assert len(bank2.audit) == audit_len
        assert bank2.ledger.audit_discrepancies() == []

    def test_restart_survives_compaction(self, tmp_path):
        realm = Realm(seed=b"durab-compact", resilience=True)
        alice = realm.user("alice")
        bob = realm.user("bob")
        store = DurabilityStore(str(tmp_path / "bank"), snapshot_every=10)
        bank = realm.accounting_server("bank", durability=store)
        bank.create_account("alice", alice.principal, {"dollars": 1000})
        bank.create_account("bob", bob.principal)
        client = alice.accounting_client(bank.principal)
        for _ in range(12):
            client.transfer("alice", "bob", "dollars", 1)
        assert store.compactions >= 1
        realm.network.unregister(realm.principal("bank"))
        bank2 = realm.restart_accounting_server(
            "bank",
            durability=DurabilityStore(
                str(tmp_path / "bank"), snapshot_every=10
            ),
        )
        assert bank2.recovery is not None and bank2.recovery.ok
        assert bank2.recovery.snapshot_restored
        assert bank2.accounts["alice"].balance("dollars") == 988
        assert bank2.accounts["bob"].balance("dollars") == 12
        assert bank2.ledger.audit_discrepancies() == []

    def test_torn_final_append_is_truncated_not_replayed(self, tmp_path):
        realm, alice, bob, bank = build_world(tmp_path, b"durab-torn")
        alice.accounting_client(bank.principal).transfer(
            "alice", "bob", "dollars", 30
        )
        # Corruption injection: a crash mid-append leaves half a record.
        path = bank.durability.wal_path
        with open(path, "ab") as handle:
            handle.write(wal.frame({"kind": "posting", "data": {}})[:-5])
        bank2 = crash_restart(realm, tmp_path)
        assert bank2.recovery is not None and bank2.recovery.ok
        assert bank2.recovery.torn_bytes > 0
        assert bank2.accounts["alice"].balance("dollars") == 70
        # The truncated log accepts appends again.
        alice.accounting_client(bank2.principal).transfer(
            "alice", "bob", "dollars", 5
        )
        records, torn = wal.read_records(bank2.durability.wal_path)
        assert torn == 0
        assert bank2.accounts["alice"].balance("dollars") == 65


class TestJournalTrim:
    def test_trim_is_counted_and_durability_is_unaffected(self, tmp_path):
        realm = Realm(seed=b"durab-trim", resilience=True)
        alice = realm.user("alice")
        bob = realm.user("bob")
        bank = realm.accounting_server(
            "bank", durability=DurabilityStore(str(tmp_path / "bank"))
        )
        bank.create_account("alice", alice.principal, {"dollars": 1000})
        bank.create_account("bob", bob.principal)
        bank.ledger.max_journal = 4
        client = alice.accounting_client(bank.principal)
        for _ in range(10):
            client.transfer("alice", "bob", "dollars", 1)
        # The bounded journal dropped records — visibly, not silently.
        assert bank.ledger.journal_trimmed > 0
        assert len(bank.ledger.journal) <= 4
        # Every committed posting reached the WAL before any trim: the
        # recovered books match even though the journal forgot them.
        realm.network.unregister(realm.principal("bank"))
        bank2 = realm.restart_accounting_server(
            "bank", durability=DurabilityStore(str(tmp_path / "bank"))
        )
        assert bank2.recovery is not None and bank2.recovery.ok
        assert bank2.accounts["alice"].balance("dollars") == 990
        assert bank2.accounts["bob"].balance("dollars") == 10
        assert bank2.ledger.audit_discrepancies() == []

    def test_trim_total_reaches_telemetry(self, tmp_path):
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry()
        realm = Realm(seed=b"durab-trim-obs", telemetry=telemetry)
        alice = realm.user("alice")
        bob = realm.user("bob")
        bank = realm.accounting_server("bank")
        bank.create_account("alice", alice.principal, {"dollars": 100})
        bank.create_account("bob", bob.principal)
        bank.ledger.max_journal = 2
        client = alice.accounting_client(bank.principal)
        for _ in range(5):
            client.transfer("alice", "bob", "dollars", 1)
        counter = telemetry.metrics.get("ledger.journal_trimmed_total")
        assert counter is not None
        assert bank.ledger.journal_trimmed >= 3
