"""Extension features: cashier's checks (the §4 'exercise for the reader'),
challenge-based possession proofs, end-server audit integration, honest
quota-by-transfer, and client session recovery."""

import pytest

from repro.core.restrictions import Authorized, AuthorizedEntry, Grantee
from repro.errors import (
    AuthorizationDenied,
    InsufficientFundsError,
    ProxyVerificationError,
    ReplayError,
    RestrictionViolation,
    ServiceError,
)
from repro.kerberos.proxy_support import grant_via_credentials
from repro.services.accounting import CASHIER_ACCOUNT
from repro.services.printserver import PAGES
from repro.testbed import Realm


class TestCashiersChecks:
    @pytest.fixture
    def world(self):
        realm = Realm(seed=b"cashier-test")
        alice = realm.user("alice")
        bob = realm.user("bob")
        bank = realm.accounting_server("bank")
        bank.create_account("alice", alice.principal, {"dollars": 100})
        bank.create_account("bob", bob.principal)
        return realm, alice, bob, bank

    def test_payor_is_the_bank(self, world):
        realm, alice, bob, bank = world
        check = alice.accounting_client(bank.principal).purchase_cashiers_check(
            "alice", bob.principal, "dollars", 40
        )
        assert check.payor == bank.principal
        assert check.drawn_on == bank.principal
        assert check.payor_account.account == CASHIER_ACCOUNT

    def test_funds_move_at_purchase(self, world):
        realm, alice, bob, bank = world
        alice.accounting_client(bank.principal).purchase_cashiers_check(
            "alice", bob.principal, "dollars", 40
        )
        assert bank.accounts["alice"].balance("dollars") == 60
        assert bank.accounts[CASHIER_ACCOUNT].balance("dollars") == 40

    def test_clears_from_cashier_account(self, world):
        realm, alice, bob, bank = world
        check = alice.accounting_client(bank.principal).purchase_cashiers_check(
            "alice", bob.principal, "dollars", 40
        )
        result = bob.accounting_client(bank.principal).deposit_check(
            check, "bob"
        )
        assert result["paid"] == 40
        assert bank.accounts[CASHIER_ACCOUNT].balance("dollars") == 0
        assert bank.accounts["bob"].balance("dollars") == 40

    def test_guaranteed_even_if_purchaser_drained(self, world):
        """The cashier's-check guarantee: purchaser's account is irrelevant
        after purchase."""
        realm, alice, bob, bank = world
        client = alice.accounting_client(bank.principal)
        check = client.purchase_cashiers_check(
            "alice", bob.principal, "dollars", 40
        )
        client.transfer("alice", "bob", "dollars", 60)  # drain alice
        result = bob.accounting_client(bank.principal).deposit_check(
            check, "bob"
        )
        assert result["paid"] == 40

    def test_purchase_needs_funds(self, world):
        realm, alice, bob, bank = world
        with pytest.raises(InsufficientFundsError):
            alice.accounting_client(bank.principal).purchase_cashiers_check(
                "alice", bob.principal, "dollars", 500
            )

    def test_only_owner_purchases(self, world):
        realm, alice, bob, bank = world
        with pytest.raises(AuthorizationDenied):
            bob.accounting_client(bank.principal).purchase_cashiers_check(
                "alice", bob.principal, "dollars", 10
            )

    def test_only_payee_deposits(self, world):
        realm, alice, bob, bank = world
        check = alice.accounting_client(bank.principal).purchase_cashiers_check(
            "alice", bob.principal, "dollars", 10
        )
        carol = realm.user("carol")
        bank.create_account("carol", carol.principal)
        with pytest.raises(RestrictionViolation):
            carol.accounting_client(bank.principal).deposit_check(
                check, "carol"
            )

    def test_double_deposit_rejected(self, world):
        realm, alice, bob, bank = world
        check = alice.accounting_client(bank.principal).purchase_cashiers_check(
            "alice", bob.principal, "dollars", 10
        )
        client = bob.accounting_client(bank.principal)
        client.deposit_check(check, "bob")
        with pytest.raises(ReplayError):
            client.deposit_check(check, "bob")

    def test_cross_server_deposit(self, world):
        realm, alice, bob, bank = world
        bank2 = realm.accounting_server("bank2")
        carol = realm.user("carol")
        bank2.create_account("carol", carol.principal)
        check = alice.accounting_client(bank.principal).purchase_cashiers_check(
            "alice", carol.principal, "dollars", 15
        )
        result = carol.accounting_client(bank2.principal).deposit_check(
            check, "carol"
        )
        assert result["cleared"]
        assert bank2.accounts["carol"].balance("dollars") == 15


class TestChallengeBasedPresentation:
    @pytest.fixture
    def world(self):
        realm = Realm(seed=b"challenge-test")
        alice = realm.user("alice")
        bob = realm.user("bob")
        fs = realm.file_server("files")
        fs.grant_owner(alice.principal)
        fs.put("doc", b"data")
        creds = alice.kerberos.get_ticket(fs.principal)
        cap = grant_via_credentials(
            creds,
            (Authorized(entries=(AuthorizedEntry("doc", ("read",)),)),),
            realm.clock.now(),
        )
        return realm, alice, bob, fs, cap

    def test_challenge_flow_works(self, world):
        realm, alice, bob, fs, cap = world
        client = bob.client_for(fs.principal)
        out = client.request(
            "read", "doc", proxy=cap, anonymous=True, use_challenge=True
        )
        assert out["data"] == b"data"

    def test_forged_challenge_rejected(self, world):
        realm, alice, bob, fs, cap = world
        wire = cap.presentation(
            fs.principal, realm.clock.now(), "read", target="doc",
            challenge=b"not-issued-by-server",
        )
        payload = {
            "operation": "read", "target": "doc", "args": {},
            "amounts": {}, "proxy": wire,
        }
        from repro.net.message import raise_if_error

        with pytest.raises(ProxyVerificationError):
            raise_if_error(
                realm.network.send(
                    bob.principal, fs.principal, "request", payload
                )
            )

    def test_challenge_single_use(self, world):
        realm, alice, bob, fs, cap = world
        challenge = realm.network.send(
            bob.principal, fs.principal, "get-challenge", {}
        )["challenge"]
        wire = cap.presentation(
            fs.principal, realm.clock.now(), "read", target="doc",
            challenge=challenge,
        )
        payload = {
            "operation": "read", "target": "doc", "args": {},
            "amounts": {}, "proxy": wire,
        }
        from repro.net.message import raise_if_error

        raise_if_error(
            realm.network.send(bob.principal, fs.principal, "request", payload)
        )
        # The same challenge (even with a fresh proof) is spent.
        wire2 = cap.presentation(
            fs.principal, realm.clock.now(), "read", target="doc",
            challenge=challenge,
        )
        payload["proxy"] = wire2
        with pytest.raises(ProxyVerificationError):
            raise_if_error(
                realm.network.send(
                    bob.principal, fs.principal, "request", payload
                )
            )

    def test_expired_challenge_rejected(self, world):
        realm, alice, bob, fs, cap = world
        challenge = realm.network.send(
            bob.principal, fs.principal, "get-challenge", {}
        )["challenge"]
        realm.clock.advance(fs.acceptor.verifier.freshness_window + 1)
        wire = cap.presentation(
            fs.principal, realm.clock.now(), "read", target="doc",
            challenge=challenge,
        )
        payload = {
            "operation": "read", "target": "doc", "args": {},
            "amounts": {}, "proxy": wire,
        }
        from repro.net.message import raise_if_error

        with pytest.raises(ProxyVerificationError):
            raise_if_error(
                realm.network.send(
                    bob.principal, fs.principal, "request", payload
                )
            )


class TestAuditIntegration:
    def test_proxy_requests_audited(self):
        realm = Realm(seed=b"audit-int")
        alice = realm.user("alice")
        bob = realm.user("bob")
        fs = realm.file_server("files")
        fs.grant_owner(alice.principal)
        fs.put("doc", b"data")
        creds = alice.kerberos.get_ticket(fs.principal)
        proxy = grant_via_credentials(
            creds, (Grantee(principals=(bob.principal,)),), realm.clock.now()
        )
        bob.client_for(fs.principal).request("read", "doc", proxy=proxy)
        records = fs.audit.involving(alice.principal)
        assert len(records) == 1
        assert records[0].grantor == alice.principal
        assert records[0].claimant == bob.principal
        assert records[0].operation == "read"

    def test_direct_requests_not_audited(self):
        realm = Realm(seed=b"audit-int2")
        alice = realm.user("alice")
        fs = realm.file_server("files")
        fs.grant_owner(alice.principal)
        fs.put("doc", b"data")
        alice.client_for(fs.principal).request("read", "doc")
        assert len(fs.audit) == 0


class TestQuotaByTransfer:
    @pytest.fixture
    def world(self):
        realm = Realm(seed=b"quota-transfer")
        alice = realm.user("alice")
        bank = realm.accounting_server("bank")
        bank.create_account("alice", alice.principal, {PAGES: 50})
        printer_owner = realm.user("printer-owner")
        ps = realm.print_server("printer")
        bank.create_account("printer", ps.principal)
        ps.accounting = ps.principal and None  # set below with identity
        # The print server uses its own Kerberos identity to query/transfer.
        from repro.kerberos.client import KerberosClient
        from repro.services.accounting import AccountingClient

        ps_key = realm.kdc.database.key_of(ps.principal)
        ps_kerberos = KerberosClient(
            ps.principal, ps_key, realm.network, realm.clock
        )
        ps.accounting = AccountingClient(ps_kerberos, bank.principal)
        ps.account_name = "printer"
        return realm, alice, bank, ps

    def test_unfunded_allocation_rejected(self, world):
        realm, alice, bank, ps = world
        client = alice.client_for(ps.principal)
        with pytest.raises(ServiceError):
            client.request("allocate", args={"pages": 10})

    def test_funded_allocation_and_print(self, world):
        realm, alice, bank, ps = world
        alice.accounting_client(bank.principal).transfer(
            "alice", "printer", PAGES, 10
        )
        client = alice.client_for(ps.principal)
        assert client.request("allocate", args={"pages": 10})["allocated"] == 10
        out = client.request("print", "doc.ps", amounts={PAGES: 4})
        assert out["remaining"] == 6

    def test_over_allocation_rejected(self, world):
        realm, alice, bank, ps = world
        alice.accounting_client(bank.principal).transfer(
            "alice", "printer", PAGES, 10
        )
        client = alice.client_for(ps.principal)
        client.request("allocate", args={"pages": 10})
        with pytest.raises(ServiceError):
            client.request("allocate", args={"pages": 1})

    def test_release_returns_funds(self, world):
        """§4: 'transferring the funds back when the resource is released.'"""
        realm, alice, bank, ps = world
        alice.accounting_client(bank.principal).transfer(
            "alice", "printer", PAGES, 10
        )
        client = alice.client_for(ps.principal)
        client.request("allocate", args={"pages": 10})
        client.request(
            "release", args={"pages": 4, "to_account": "alice"}
        )
        assert bank.accounts["alice"].balance(PAGES) == 44
        assert bank.accounts["printer"].balance(PAGES) == 6
        out = client.request("remaining")
        assert out["remaining"] == 6

    def test_cannot_release_more_than_held(self, world):
        realm, alice, bank, ps = world
        client = alice.client_for(ps.principal)
        with pytest.raises(ServiceError):
            client.request(
                "release", args={"pages": 1, "to_account": "alice"}
            )


class TestSessionRecovery:
    def test_expired_session_reestablished_transparently(self):
        realm = Realm(seed=b"session-recovery")
        alice = realm.user("alice")
        fs = realm.file_server("files")
        fs.grant_owner(alice.principal)
        fs.put("doc", b"data")
        client = alice.client_for(fs.principal)
        assert client.request("read", "doc")["data"] == b"data"
        # Let the ticket (and therefore the session) expire.
        realm.clock.advance(9 * 3600)
        assert client.request("read", "doc")["data"] == b"data"
