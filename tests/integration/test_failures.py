"""Failure injection: partitions and drops against the money paths.

The paper notes the distributed accounting method "requires out-of-band
mechanisms to deal with checks returned" — but the *mechanism itself* must
never double-spend or lose funds when the network fails.  These tests
partition servers and drop messages mid-flow and assert the books stay
consistent and checks stay cashable.
"""

import pytest

from repro.errors import (
    MessageDroppedError,
    ReproError,
    ServiceError,
    UnknownEndpointError,
)
from repro.services.accounting import SETTLEMENT_PREFIX
from repro.testbed import Realm


def non_settlement_total(servers, currency):
    return sum(
        account.balance(currency) + account.held_total(currency)
        for server in servers
        for name, account in server.accounts.items()
        if not name.startswith(SETTLEMENT_PREFIX)
    )


@pytest.fixture
def world():
    realm = Realm(seed=b"failure-test")
    alice = realm.user("alice")
    bob = realm.user("bob")
    bank_a = realm.accounting_server("bank-a")
    bank_b = realm.accounting_server("bank-b")
    bank_a.create_account("alice", alice.principal, {"dollars": 100})
    bank_b.create_account("bob", bob.principal)
    return realm, alice, bob, bank_a, bank_b


class TestPartitionedClearing:
    def test_deposit_fails_cleanly_when_payor_bank_partitioned(self, world):
        realm, alice, bob, bank_a, bank_b = world
        check = alice.accounting_client(bank_a.principal).write_check(
            "alice", bob.principal, "dollars", 30
        )
        realm.network.blackhole(bank_a.principal)
        with pytest.raises((MessageDroppedError, ServiceError)):
            bob.accounting_client(bank_b.principal).deposit_check(
                check, "bob"
            )
        # Nothing moved anywhere.
        assert bank_a.accounts["alice"].balance("dollars") == 100
        assert bank_b.accounts["bob"].balance("dollars") == 0

    def test_check_cashable_after_partition_heals(self, world):
        realm, alice, bob, bank_a, bank_b = world
        check = alice.accounting_client(bank_a.principal).write_check(
            "alice", bob.principal, "dollars", 30
        )
        realm.network.blackhole(bank_a.principal)
        with pytest.raises(ReproError):
            bob.accounting_client(bank_b.principal).deposit_check(
                check, "bob"
            )
        realm.network.heal(bank_a.principal)
        result = bob.accounting_client(bank_b.principal).deposit_check(
            check, "bob"
        )
        assert result["paid"] == 30

    def test_conservation_through_failed_attempts(self, world):
        realm, alice, bob, bank_a, bank_b = world
        banks = [bank_a, bank_b]
        before = non_settlement_total(banks, "dollars")
        check = alice.accounting_client(bank_a.principal).write_check(
            "alice", bob.principal, "dollars", 30
        )
        realm.network.blackhole(bank_a.principal)
        for _ in range(3):
            with pytest.raises(ReproError):
                bob.accounting_client(bank_b.principal).deposit_check(
                    check, "bob"
                )
        realm.network.heal(bank_a.principal)
        bob.accounting_client(bank_b.principal).deposit_check(check, "bob")
        assert non_settlement_total(banks, "dollars") == before


class TestRandomDrops:
    def test_workload_under_lossy_network_conserves_funds(self, world):
        """Random request drops: every completed or failed clearing leaves
        the books consistent."""
        realm, alice, bob, bank_a, bank_b = world
        banks = [bank_a, bank_b]
        before = non_settlement_total(banks, "dollars")
        realm.network.set_drop_probability(0.15)
        successes = 0
        for i in range(20):
            try:
                check = alice.accounting_client(
                    bank_a.principal
                ).write_check("alice", bob.principal, "dollars", 1)
                bob.accounting_client(bank_b.principal).deposit_check(
                    check, "bob"
                )
                successes += 1
            except ReproError:
                pass
        realm.network.set_drop_probability(0.0)
        assert non_settlement_total(banks, "dollars") == before
        assert bank_b.accounts["bob"].balance("dollars") == successes

    def test_kdc_outage_blocks_new_tickets_only(self, world):
        """With the KDC down, fresh authentications fail but established
        credentials keep working (the offline-verification property)."""
        realm, alice, bob, bank_a, bank_b = world
        fs = realm.file_server("files")
        fs.grant_owner(alice.principal)
        fs.put("doc", b"data")
        client = alice.client_for(fs.principal)
        client.request("read", "doc")  # warm: tickets + session exist

        realm.network.blackhole(realm.kdc.principal)
        # Established session: still fine.
        assert client.request("read", "doc")["data"] == b"data"
        # A brand-new principal cannot start.
        carol = realm.user("carol")
        with pytest.raises(ReproError):
            carol.client_for(fs.principal).request("read", "doc")
        realm.network.heal(realm.kdc.principal)


class TestServerLoss:
    def test_unregistered_server(self, world):
        realm, alice, bob, bank_a, bank_b = world
        ghost = realm.principal("ghost")
        with pytest.raises(UnknownEndpointError):
            realm.network.send(alice.principal, ghost, "request", {})
