"""End-to-end scenarios: the paper's motivating workflows run whole.

Each test is a miniature of one paper section: the capability lifecycle
(§3.1), cascaded pipelines (§3.4), TGS fan-out (§6.3), separation of
privilege (§3.5), and the electronic-commerce flow (§1/§4).
"""

import pytest

from repro.acl import AclEntry, GroupSubject, SinglePrincipal
from repro.core.proxy import cascade
from repro.core.restrictions import (
    Authorized,
    AuthorizedEntry,
    ForUseByGroup,
    Grantee,
    Quota,
)
from repro.errors import AuthorizationDenied, RestrictionViolation
from repro.kerberos.proxy_support import (
    KerberosProxy,
    endorse,
    grant_via_credentials,
)
from repro.testbed import Realm


class TestCapabilityLifecycle:
    """§3.1's full story: grant, pass on, re-restrict, use, revoke."""

    def test_lifecycle(self):
        realm = Realm(seed=b"cap-life")
        alice, bob, carol = (
            realm.user("alice"), realm.user("bob"), realm.user("carol")
        )
        fs = realm.file_server("files")
        fs.grant_owner(alice.principal)
        fs.put("proj/readme", b"hello")

        # Alice creates a read capability for one file.
        creds = alice.kerberos.get_ticket(fs.principal)
        cap = grant_via_credentials(
            creds,
            (Authorized(entries=(AuthorizedEntry("proj/*", ("read",)),)),),
            realm.clock.now(),
        )
        # Bob receives it (over a protected channel) and passes a further
        # restricted version to carol.
        bob_copy = KerberosProxy.from_transferable(cap.transferable())
        narrower = cascade(
            bob_copy.proxy,
            (Authorized(entries=(AuthorizedEntry("proj/readme", ("read",)),)),),
            realm.clock.now(),
            realm.clock.now() + 60,
        )
        carol_copy = bob_copy.handoff(narrower)

        out = carol.client_for(fs.principal).request(
            "read", "proj/readme", proxy=carol_copy, anonymous=True
        )
        assert out["data"] == b"hello"

        # Carol's copy cannot reach other files even though bob's can.
        fs.put("proj/other", b"x")
        with pytest.raises(RestrictionViolation):
            carol.client_for(fs.principal).request(
                "read", "proj/other", proxy=carol_copy, anonymous=True
            )
        bob.client_for(fs.principal).request(
            "read", "proj/other", proxy=bob_copy, anonymous=True
        )

        # Revoking alice revokes every derived capability at once (§3.1).
        fs.acl.remove_subject(SinglePrincipal(alice.principal))
        for user, bundle in ((bob, bob_copy), (carol, carol_copy)):
            with pytest.raises(AuthorizationDenied):
                user.client_for(fs.principal).request(
                    "read", "proj/readme", proxy=bundle, anonymous=True
                )


class TestCascadedPipeline:
    """§3.4: a task flowing through partially-trusted intermediaries."""

    def test_print_pipeline_with_audit_trail(self):
        realm = Realm(seed=b"pipeline")
        alice = realm.user("alice")
        formatter = realm.user("format-service")
        spooler = realm.user("spool-service")
        ps = realm.print_server("printer")
        alice.client_for(ps.principal).request("allocate", args={"pages": 50})

        # Alice grants the formatter a delegate proxy capped at 10 pages.
        creds = alice.kerberos.get_ticket(ps.principal)
        to_formatter = grant_via_credentials(
            creds,
            (
                Grantee(principals=(formatter.principal,)),
                Quota(currency="pages", limit=10),
            ),
            realm.clock.now(),
        )
        # The formatter endorses it onward to the spooler, tightening more.
        to_spooler = endorse(
            to_formatter,
            formatter.kerberos.get_ticket(ps.principal),
            spooler.principal,
            (Quota(currency="pages", limit=5),),
            realm.clock.now(),
            realm.clock.now() + 300,
        )
        out = spooler.client_for(ps.principal).request(
            "print", "thesis.ps", amounts={"pages": 5}, proxy=to_spooler
        )
        assert out["job_id"] == 0
        # The job ran under alice's rights, submitted by the spooler:
        assert ps.jobs[0]["owner"] == str(alice.principal)
        assert ps.jobs[0]["submitted_by"] == str(spooler.principal)
        # And the quota tightening held:
        with pytest.raises(RestrictionViolation):
            spooler.client_for(ps.principal).request(
                "print", "more.ps", amounts={"pages": 6}, proxy=to_spooler
            )


class TestTgsFanOut:
    """§6.3: one TGS proxy reaches many end-servers."""

    def test_one_proxy_many_servers(self):
        realm = Realm(seed=b"fanout")
        alice, bob = realm.user("alice"), realm.user("bob")
        servers = [realm.file_server(f"files-{i}") for i in range(3)]
        for fs in servers:
            fs.grant_owner(alice.principal)
            fs.put("f", b"data")

        from repro.kerberos.ticket import Credentials

        tgt = alice.kerberos.login()
        tgs_proxy = grant_via_credentials(
            Credentials(
                ticket=tgt.ticket,
                session_key=tgt.session_key,
                client=alice.principal,
                expires_at=tgt.expires_at,
            ),
            (Authorized(entries=(AuthorizedEntry("f", ("read",)),)),),
            realm.clock.now(),
        )
        bob.kerberos.login()
        for fs in servers:
            creds = bob.kerberos.redeem_tgs_proxy(
                tgt.ticket, tgs_proxy.proxy, fs.principal
            )
            from repro.kerberos.session import make_ap_request

            session = fs.ap.accept(
                make_ap_request(creds, realm.clock, presenter=bob.principal)
            )
            assert session.client == alice.principal
            assert session.presenter == bob.principal


class TestSeparationOfPrivilege:
    """§3.5/§7.2: no single principal can act alone."""

    def test_two_disjoint_groups_required(self):
        realm = Realm(seed=b"sep-priv")
        operator = realm.user("operator")
        fs = realm.file_server("vault")
        fs.put("launch-codes", b"0000")
        gs = realm.group_server("groups")
        ops = gs.create_group("operators", (operator.principal,))
        sec = gs.create_group("security", (operator.principal,))

        owner = realm.user("owner")
        fs.grant_owner(owner.principal)
        creds = owner.kerberos.get_ticket(fs.principal)
        proxy = grant_via_credentials(
            creds,
            (ForUseByGroup(groups=(ops, sec), required=2),),
            realm.clock.now(),
        )
        gc = operator.group_client(gs.principal)
        g1 = gc.get_group_proxy("operators", fs.principal)
        client = operator.client_for(fs.principal)
        # One group is not enough.
        with pytest.raises(RestrictionViolation):
            client.request(
                "read", "launch-codes", proxy=proxy, group_proxies=[g1]
            )
        g2 = gc.get_group_proxy("security", fs.principal)
        out = client.request(
            "read", "launch-codes", proxy=proxy, group_proxies=[g1, g2]
        )
        assert out["data"] == b"0000"


class TestElectronicCommerce:
    """§1's motivation: stranger-to-stranger commerce with payment."""

    def test_purchase_with_certified_check(self):
        realm = Realm(seed=b"commerce")
        buyer = realm.user("buyer")
        merchant = realm.user("merchant")
        bank_a = realm.accounting_server("bank-a")
        bank_b = realm.accounting_server("bank-b")
        bank_a.create_account("buyer", buyer.principal, {"dollars": 100})
        bank_b.create_account("merchant", merchant.principal)

        shop = realm.file_server("shop")
        shop.grant_owner(merchant.principal)
        shop.put("catalog/widget", b"a fine widget")

        # Buyer draws + certifies a check; merchant verifies certification
        # at its shop before shipping, then deposits cross-bank.
        buyer_acct = buyer.accounting_client(bank_a.principal)
        check = buyer_acct.write_check(
            "buyer", merchant.principal, "dollars", 30
        )
        certification = buyer_acct.certify_check(check, shop.principal)

        from repro.core.evaluation import RequestContext

        wire = certification.presentation(
            shop.principal,
            realm.clock.now(),
            "verify-certification",
            target=f"check:{check.number}",
        )
        verified = shop.acceptor.accept(
            wire,
            RequestContext(
                server=shop.principal,
                operation="verify-certification",
                target=f"check:{check.number}",
            ),
        )
        assert verified.grantor == bank_a.principal  # the bank's word

        result = merchant.accounting_client(bank_b.principal).deposit_check(
            check, "merchant"
        )
        assert result["paid"] == 30
        assert bank_a.accounts["buyer"].balance("dollars") == 70
        assert bank_b.accounts["merchant"].balance("dollars") == 30
