"""Adversarial integration tests: the paper's security claims, attacked.

Each test stages an attack against the full stack (network + Kerberos +
services) and asserts the design holds — or, for the baseline, that the same
attack succeeds, demonstrating the paper's §3.1 comparison.
"""

import dataclasses

import pytest

from repro.core.restrictions import (
    Authorized,
    AuthorizedEntry,
    Grantee,
    Quota,
)
from repro.errors import (
    AuthorizationDenied,
    ProxyVerificationError,
    ReplayError,
    RestrictionViolation,
    ServiceError,
)
from repro.kerberos.proxy_support import KerberosProxy, grant_via_credentials
from repro.net import Eavesdropper
from repro.net.message import is_error, raise_if_error
from repro.testbed import Realm


@pytest.fixture
def world():
    realm = Realm(seed=b"attack-test")
    alice = realm.user("alice")
    bob = realm.user("bob")
    fs = realm.file_server("files")
    fs.grant_owner(alice.principal)
    fs.put("doc/secret", b"the secret")
    return realm, alice, bob, fs


def read_capability(realm, alice, fs):
    creds = alice.kerberos.get_ticket(fs.principal)
    return grant_via_credentials(
        creds,
        (Authorized(entries=(AuthorizedEntry("doc/secret", ("read",)),)),),
        realm.clock.now(),
    )


class TestEavesdropping:
    def test_replayed_presentation_rejected(self, world):
        """§3.1: tapping a capability presentation yields nothing usable."""
        realm, alice, bob, fs = world
        mallory = Eavesdropper()
        mallory.attach(realm.network)
        cap = read_capability(realm, alice, fs)
        bob.client_for(fs.principal).request(
            "read", "doc/secret", proxy=cap, anonymous=True
        )
        captured = mallory.last_of_type("request")
        # Mallory replays the whole captured request verbatim.
        reply = mallory.replay(realm.network, captured)
        assert is_error(reply)
        with pytest.raises((ReplayError, ProxyVerificationError)):
            raise_if_error(reply)

    def test_captured_certificates_unusable_for_new_requests(self, world):
        """Certificates alone (no proxy key) cannot mint fresh requests."""
        realm, alice, bob, fs = world
        mallory_user = realm.user("mallory")
        mallory = Eavesdropper()
        mallory.attach(realm.network)
        cap = read_capability(realm, alice, fs)
        bob.client_for(fs.principal).request(
            "read", "doc/secret", proxy=cap, anonymous=True
        )
        captured = mallory.last_of_type("request")
        # Rebuild the bundle from what crossed the wire: certificates +
        # tickets, but no key material.
        stolen = KerberosProxy.from_transferable(
            {
                "tickets": captured.payload["proxy"]["tickets"],
                "certificates": captured.payload["proxy"]["presented"][
                    "certificates"
                ],
                "proxy_key": None,
            }
        )
        client = mallory_user.client_for(fs.principal)
        with pytest.raises((ProxyVerificationError, ServiceError)):
            client.request(
                "read", "doc/secret", proxy=stolen, anonymous=True
            )

    def test_proxy_key_never_visible_to_tap(self, world):
        realm, alice, bob, fs = world
        mallory = Eavesdropper()
        mallory.attach(realm.network)
        cap = read_capability(realm, alice, fs)
        bob.client_for(fs.principal).request(
            "read", "doc/secret", proxy=cap, anonymous=True
        )
        from repro.encoding.canonical import encode

        key_bytes = cap.proxy.proxy_key.secret
        for message in mallory.captured:
            assert key_bytes not in encode(message.payload)


class TestTampering:
    def test_widening_authorized_list_rejected(self, world):
        realm, alice, bob, fs = world
        cap = read_capability(realm, alice, fs)
        widened_cert = dataclasses.replace(
            cap.proxy.certificates[0],
            restrictions=(
                Authorized(entries=(AuthorizedEntry("*", None),)),
            ),
        )
        forged = KerberosProxy(
            tickets=cap.tickets,
            proxy=dataclasses.replace(
                cap.proxy, certificates=(widened_cert,)
            ),
        )
        client = bob.client_for(fs.principal)
        with pytest.raises(ProxyVerificationError):
            client.request("delete", "doc/secret", proxy=forged)

    def test_removing_grantee_restriction_rejected(self, world):
        """A delegate proxy cannot be laundered into a bearer proxy."""
        realm, alice, bob, fs = world
        creds = alice.kerberos.get_ticket(fs.principal)
        delegate = grant_via_credentials(
            creds, (Grantee(principals=(bob.principal,)),), realm.clock.now()
        )
        stripped_cert = dataclasses.replace(
            delegate.proxy.certificates[0], restrictions=()
        )
        forged = KerberosProxy(
            tickets=delegate.tickets,
            proxy=dataclasses.replace(
                delegate.proxy, certificates=(stripped_cert,)
            ),
        )
        mallory = realm.user("mallory")
        with pytest.raises(ProxyVerificationError):
            mallory.client_for(fs.principal).request(
                "read", "doc/secret", proxy=forged
            )

    def test_quota_cannot_be_loosened_by_cascade(self, world):
        """Restrictions are additive: a cascade cannot raise a quota."""
        realm, alice, bob, fs = world
        from repro.core.proxy import cascade

        creds = alice.kerberos.get_ticket(fs.principal)
        tight = grant_via_credentials(
            creds, (Quota(currency="bytes", limit=2),), realm.clock.now()
        )
        loosened = cascade(
            tight.proxy,
            (Quota(currency="bytes", limit=10_000),),
            realm.clock.now(),
            realm.clock.now() + 100,
        )
        client = bob.client_for(fs.principal)
        with pytest.raises(RestrictionViolation):
            client.request(
                "write", "doc/new", proxy=tight.handoff(loosened),
                args={"data": b"xxxx"}, amounts={"bytes": 4},
            )


class TestStolenCredentials:
    def test_delegate_proxy_useless_to_thief(self, world):
        """A stolen delegate proxy (with key!) needs the grantee's identity."""
        realm, alice, bob, fs = world
        creds = alice.kerberos.get_ticket(fs.principal)
        delegate = grant_via_credentials(
            creds, (Grantee(principals=(bob.principal,)),), realm.clock.now()
        )
        mallory = realm.user("mallory")
        client = mallory.client_for(fs.principal)
        with pytest.raises(RestrictionViolation):
            client.request("read", "doc/secret", proxy=delegate)

    def test_proxy_for_wrong_server_rejected(self, world):
        """Conventional proxies bind to one end-server (§6.3)."""
        realm, alice, bob, fs = world
        other = realm.file_server("other-files")
        other.grant_owner(alice.principal)
        cap = read_capability(realm, alice, fs)
        from repro.errors import TicketError

        with pytest.raises((TicketError, ProxyVerificationError)):
            bob.client_for(other.principal).request(
                "read", "doc/secret", proxy=cap
            )


class TestExpiry:
    def test_expired_capability_dies(self, world):
        realm, alice, bob, fs = world
        creds = alice.kerberos.get_ticket(fs.principal)
        cap = grant_via_credentials(
            creds,
            (Authorized(entries=(AuthorizedEntry("doc/secret", ("read",)),)),),
            realm.clock.now(),
            expires_at=realm.clock.now() + 5,
        )
        client = bob.client_for(fs.principal)
        client.request("read", "doc/secret", proxy=cap, anonymous=True)
        realm.clock.advance(6)
        from repro.errors import ProxyExpiredError

        with pytest.raises(ProxyExpiredError):
            client.request("read", "doc/secret", proxy=cap, anonymous=True)
