"""A deployment-scale smoke test: many principals, every mechanism at once.

Exercises the paper's whole surface in one realm — direct ACL access,
capabilities, group proxies, authorization-server proxies, payments — under
a mixed workload, then asserts global invariants: funds conserved, audit
trail complete, replay caches consistent.
"""

import pytest

from repro.acl import AclEntry, GroupSubject, SinglePrincipal
from repro.core.restrictions import Authorized, AuthorizedEntry, Grantee
from repro.errors import ReproError
from repro.kerberos.proxy_support import grant_via_credentials
from repro.services.accounting import SETTLEMENT_PREFIX
from repro.testbed import Realm
from repro.workloads import Zipf
from repro.crypto.rng import Rng

N_USERS = 24
N_FILES = 40
N_OPS = 200


@pytest.fixture(scope="module")
def world():
    realm = Realm(seed=b"scale-test")
    users = [realm.user(f"user{i}") for i in range(N_USERS)]
    fs = realm.file_server("files")
    gs = realm.group_server("groups")
    azs = realm.authorization_server("authz")
    bank = realm.accounting_server("bank")

    # Population: first third are owners, second third staff, rest guests.
    owners = users[: N_USERS // 3]
    staff = users[N_USERS // 3 : 2 * N_USERS // 3]
    guests = users[2 * N_USERS // 3 :]

    for owner in owners:
        fs.grant_owner(owner.principal)
    staff_gid = gs.create_group("staff", tuple(u.principal for u in staff))
    fs.acl.add(AclEntry(subject=GroupSubject(staff_gid), operations=("read",)))
    fs.acl.add(AclEntry(subject=SinglePrincipal(azs.principal)))
    for guest in guests:
        azs.database_for(fs.principal).add(
            AclEntry(
                subject=SinglePrincipal(guest.principal), operations=("read",)
            )
        )
    for i in range(N_FILES):
        fs.put(f"data/{i}", b"x" * (i + 1))
    for user in users:
        bank.create_account(
            user.principal.name, user.principal, {"credits": 1000}
        )
    return realm, users, owners, staff, guests, fs, gs, azs, bank, staff_gid


def total_credits(bank):
    return sum(
        account.balance("credits")
        for name, account in bank.accounts.items()
        if not name.startswith(SETTLEMENT_PREFIX)
    )


def test_mixed_workload(world):
    realm, users, owners, staff, guests, fs, gs, azs, bank, staff_gid = world
    rng = Rng(seed=b"scale-workload")
    file_popularity = Zipf(N_FILES, s=1.1, rng=rng)
    initial_credits = total_credits(bank)

    # Pre-fetch credentials per population.
    staff_proxies = {
        u.principal: u.group_client(gs.principal).get_group_proxy(
            "staff", fs.principal
        )
        for u in staff
    }
    guest_proxies = {
        u.principal: u.authorization_client(azs.principal).authorize(
            fs.principal, ("read",)
        )
        for u in guests
    }
    clients = {u.principal: u.client_for(fs.principal) for u in users}
    bank_clients = {
        u.principal: u.accounting_client(bank.principal) for u in users
    }

    reads = writes = payments = denials = 0
    for i in range(N_OPS):
        user = users[rng.int_below(N_USERS)]
        path = f"data/{file_popularity.sample()}"
        action = rng.int_below(10)
        try:
            if action < 5:  # read, via whatever authority the user has
                if user in owners:
                    clients[user.principal].request("read", path)
                elif user in staff:
                    clients[user.principal].request(
                        "read", path,
                        group_proxies=[staff_proxies[user.principal]],
                    )
                else:
                    clients[user.principal].request(
                        "read", path, proxy=guest_proxies[user.principal]
                    )
                reads += 1
            elif action < 7:  # write (owners only)
                data = b"w" * (1 + rng.int_below(64))
                clients[user.principal].request(
                    "write", path, args={"data": data},
                    amounts={"bytes": len(data)},
                )
                writes += 1
            else:  # pay another user by check
                payee = users[rng.int_below(N_USERS)]
                if payee.principal == user.principal:
                    continue
                amount = 1 + rng.int_below(20)
                check = bank_clients[user.principal].write_check(
                    user.principal.name, payee.principal, "credits", amount
                )
                bank_clients[payee.principal].deposit_check(
                    check, payee.principal.name
                )
                payments += 1
        except ReproError:
            denials += 1

    # The workload actually exercised everything.
    assert reads > 50 and payments > 20
    # Non-owners were denied writes (that is where denials come from).
    assert denials > 0
    # Invariant: credits conserved across ~payments transfers.
    assert total_credits(bank) == initial_credits
    # Guests/staff proxy uses were audited; owners' direct reads were not.
    assert len(fs.audit) > 0
    for record in fs.audit.all():
        assert record.grantor in (
            [azs.principal] + [g.principal for g in staff + owners]
            + [gs.principal]
        )


def test_post_workload_integrity(world):
    """After the storm: fresh operations still behave correctly."""
    realm, users, owners, staff, guests, fs, gs, azs, bank, staff_gid = world
    owner = owners[0]
    guest = guests[0]
    # An owner can still delegate...
    creds = owner.kerberos.get_ticket(fs.principal)
    cap = grant_via_credentials(
        creds,
        (Authorized(entries=(AuthorizedEntry("data/0", ("read",)),)),),
        realm.clock.now(),
    )
    out = guest.client_for(fs.principal).request(
        "read", "data/0", proxy=cap, anonymous=True
    )
    assert out["data"]
    # ...and replay protection still works at scale.
    from repro.errors import ReplayError

    check = owners[1].accounting_client(bank.principal).write_check(
        owners[1].principal.name, guest.principal, "credits", 5
    )
    guest.accounting_client(bank.principal).deposit_check(
        check, guest.principal.name
    )
    with pytest.raises(ReplayError):
        guest.accounting_client(bank.principal).deposit_check(
            check, guest.principal.name
        )
