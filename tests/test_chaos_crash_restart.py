"""Crash-restart chaos: kill a server mid-campaign, recover, demand parity.

Each campaign runs a figure workload twice on identically-seeded realms —
once untouched, once with a server killed before a randomized unit and
rebuilt from its WAL+snapshot.  The recovered arm must reach the exact
outcomes, finale balances, and audit trail of the uninterrupted run, on
both the sync and asyncio runtimes; ``recovery_problems`` (conservation,
audit parity, recovery-report problems) must stay empty.
"""

import random

import pytest

from repro.ledger.fuzz import run_fuzz
from repro.resil.chaos import CampaignSpec, run_campaign

#: Figure workloads with a restartable server, and which one dies.
ARMS = [
    ("fig1", "files"),
    ("fig4", "files"),
    ("fig5", "bank-payor"),
    ("fig5", "bank-payee"),
]


def campaign(figure, server, tick, **kwargs):
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("units", 10)
    return run_campaign(
        CampaignSpec(
            figure=figure,
            crash_restart=(server, tick),
            **kwargs,
        )
    )


def randomized_tick(figure, server, units=10):
    """A seeded draw so 'randomized' stays reproducible per arm."""
    return random.Random(f"{figure}:{server}").randrange(1, units)


class TestSyncParity:
    @pytest.mark.parametrize("figure,server", ARMS)
    def test_recovered_run_matches_uninterrupted_run(self, figure, server):
        tick = randomized_tick(figure, server)
        report = campaign(figure, server, tick)
        assert report.unrecoverable == 0
        assert report.parity
        assert report.recovery_problems == []
        assert report.exit_code() == 0
        assert report.extras["crash restarts"] == 1
        # Identical balances: the finale audit matches the baseline's.
        assert report.finale == report.baseline_finale

    def test_accounting_restart_replays_the_ledger_wal(self):
        report = campaign("fig5", "bank-payor", 6, units=12)
        assert report.exit_code() == 0
        assert report.extras["wal records replayed"] > 0

    def test_crash_restart_composes_with_message_loss(self):
        report = campaign(
            "fig5", "bank-payee", 4, units=12, drop_rate=0.1
        )
        assert report.unrecoverable == 0
        assert report.parity
        assert report.recovery_problems == []
        assert report.finale == report.baseline_finale


class TestAioParity:
    @pytest.mark.parametrize(
        "figure,server", [("fig4", "files"), ("fig5", "bank-payor")]
    )
    def test_aio_runtime_recovers_identically(self, figure, server):
        tick = randomized_tick(figure, server)
        report = campaign(figure, server, tick, runtime="aio")
        assert report.unrecoverable == 0
        assert report.parity
        assert report.recovery_problems == []
        assert report.exit_code() == 0
        assert report.finale == report.baseline_finale


class TestSpecValidation:
    def test_tick_beyond_campaign_rejected(self):
        with pytest.raises(ValueError):
            campaign("fig4", "files", 99, units=10)

    def test_server_without_restart_support_rejected(self):
        with pytest.raises(ValueError):
            campaign("fig4", "kdc", 3)

    def test_data_dir_keeps_the_store_inspectable(self, tmp_path):
        import os

        report = campaign(
            "fig4", "files", 3, data_dir=str(tmp_path)
        )
        assert report.exit_code() == 0
        assert os.path.exists(str(tmp_path / "files" / "wal.log"))


class TestFuzzCrashRestarts:
    def test_short_campaign_with_restarts_holds_invariants(self):
        report = run_fuzz(seed=11, episodes=80, banks=2, crash_restarts=3)
        assert report.ok, report.violations
        assert report.crash_restarts == 3
        assert report.wal_replayed > 0

    def test_restarts_compose_with_injected_faults(self):
        report = run_fuzz(
            seed=23, episodes=60, banks=2, faults=True, crash_restarts=2
        )
        assert report.ok, report.violations
        assert report.crash_restarts == 2

    def test_three_bank_topology_restarts_round_robin(self):
        report = run_fuzz(seed=5, episodes=60, banks=3, crash_restarts=3)
        assert report.ok, report.violations
        assert report.crash_restarts == 3

    def test_negative_restarts_rejected(self):
        with pytest.raises(ValueError):
            run_fuzz(seed=1, episodes=10, crash_restarts=-1)
