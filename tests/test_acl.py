"""ACLs, compound principals, and entry restrictions (§3.5)."""

import pytest

from repro.acl import (
    AccessControlList,
    AclEntry,
    Anyone,
    Compound,
    GroupSubject,
    SinglePrincipal,
    subject_from_wire,
)
from repro.core.restrictions import Quota
from repro.encoding.identifiers import GroupId, PrincipalId
from repro.errors import AuthorizationDenied, DecodingError

ALICE = PrincipalId("alice")
BOB = PrincipalId("bob")
HOST = PrincipalId("workstation-7")
STAFF = GroupId(server=PrincipalId("gs"), group="staff")
ADMINS = GroupId(server=PrincipalId("gs"), group="admins")

P = frozenset
G = frozenset


class TestSubjects:
    def test_single_principal(self):
        s = SinglePrincipal(ALICE)
        assert s.matches(P({ALICE}), G())
        assert not s.matches(P({BOB}), G())

    def test_group_subject(self):
        s = GroupSubject(STAFF)
        assert s.matches(P(), G({STAFF}))
        assert not s.matches(P({ALICE}), G({ADMINS}))

    def test_anyone(self):
        assert Anyone().matches(P(), G())

    def test_compound_conjunction(self):
        """§3.5: user AND host credentials required."""
        s = Compound(
            subjects=(SinglePrincipal(ALICE), SinglePrincipal(HOST))
        )
        assert s.matches(P({ALICE, HOST}), G())
        assert not s.matches(P({ALICE}), G())
        assert not s.matches(P({HOST}), G())

    def test_compound_k_of_n(self):
        s = Compound(
            subjects=(
                SinglePrincipal(ALICE),
                SinglePrincipal(BOB),
                SinglePrincipal(HOST),
            ),
            required=2,
        )
        assert s.matches(P({ALICE, BOB}), G())
        assert not s.matches(P({ALICE}), G())

    def test_compound_mixed_groups_and_principals(self):
        s = Compound(
            subjects=(SinglePrincipal(ALICE), GroupSubject(STAFF))
        )
        assert s.matches(P({ALICE}), G({STAFF}))
        assert not s.matches(P({ALICE}), G())

    def test_compound_validation(self):
        with pytest.raises(ValueError):
            Compound(subjects=())
        with pytest.raises(ValueError):
            Compound(subjects=(SinglePrincipal(ALICE),), required=2)

    def test_wire_round_trips(self):
        subjects = [
            SinglePrincipal(ALICE),
            GroupSubject(STAFF),
            Anyone(),
            Compound(
                subjects=(SinglePrincipal(ALICE), GroupSubject(STAFF)),
                required=1,
            ),
        ]
        for s in subjects:
            assert subject_from_wire(s.to_wire()) == s

    def test_unknown_subject_kind(self):
        with pytest.raises(DecodingError):
            subject_from_wire({"kind": "martian"})


class TestAclEntry:
    def test_operation_filter(self):
        entry = AclEntry(subject=SinglePrincipal(ALICE), operations=("read",))
        assert entry.permits(P({ALICE}), G(), "read", "x")
        assert not entry.permits(P({ALICE}), G(), "write", "x")

    def test_target_globs(self):
        entry = AclEntry(
            subject=SinglePrincipal(ALICE), targets=("doc/*", "tmp/?")
        )
        assert entry.permits(P({ALICE}), G(), "read", "doc/a")
        assert entry.permits(P({ALICE}), G(), "read", "tmp/x")
        assert not entry.permits(P({ALICE}), G(), "read", "etc/passwd")

    def test_none_target_matches(self):
        entry = AclEntry(subject=SinglePrincipal(ALICE), targets=("doc/*",))
        assert entry.permits(P({ALICE}), G(), "list", None)

    def test_wire_round_trip_with_restrictions(self):
        entry = AclEntry(
            subject=SinglePrincipal(ALICE),
            operations=("read", "write"),
            targets=("a/*",),
            restrictions=(Quota(currency="c", limit=5),),
        )
        assert AclEntry.from_wire(entry.to_wire()) == entry


class TestAccessControlList:
    def test_first_match_wins(self):
        acl = AccessControlList()
        acl.add(
            AclEntry(
                subject=SinglePrincipal(ALICE),
                operations=("read",),
                restrictions=(Quota(currency="c", limit=1),),
            )
        )
        acl.add(AclEntry(subject=Anyone(), operations=("read",)))
        matched = acl.match(P({ALICE}), G(), "read", "x")
        assert matched.restrictions  # got alice's entry, not anyone's

    def test_authorize_raises_on_denial(self):
        acl = AccessControlList()
        with pytest.raises(AuthorizationDenied):
            acl.authorize(P({ALICE}), G(), "read", "x")

    def test_open_to_all(self):
        acl = AccessControlList.open_to_all()
        acl.authorize(P(), G(), "anything", "anywhere")

    def test_remove_subject_revocation(self):
        """§3.1's revocation lever: drop the grantor from the ACL."""
        acl = AccessControlList()
        acl.add(AclEntry(subject=SinglePrincipal(ALICE)))
        acl.add(AclEntry(subject=SinglePrincipal(ALICE), operations=("x",)))
        acl.add(AclEntry(subject=SinglePrincipal(BOB)))
        assert acl.remove_subject(SinglePrincipal(ALICE)) == 2
        assert acl.match(P({ALICE}), G(), "read", None) is None
        assert acl.match(P({BOB}), G(), "read", None) is not None

    def test_wire_round_trip(self):
        acl = AccessControlList()
        acl.add(AclEntry(subject=SinglePrincipal(ALICE), operations=("r",)))
        acl.add(AclEntry(subject=GroupSubject(STAFF)))
        again = AccessControlList.from_wire(acl.to_wire())
        assert again.entries == acl.entries

    def test_group_entry_matching(self):
        """§3.3: group names appear wherever principals might."""
        acl = AccessControlList()
        acl.add(AclEntry(subject=GroupSubject(STAFF), operations=("read",)))
        assert acl.match(P({BOB}), G({STAFF}), "read", "x") is not None
        assert acl.match(P({BOB}), G(), "read", "x") is None

    def test_len(self):
        acl = AccessControlList()
        assert len(acl) == 0
        acl.add(AclEntry(subject=Anyone()))
        assert len(acl) == 1
