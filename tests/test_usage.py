"""Per-principal usage metering, attribution, pricing, and charging."""

import pytest

from repro.clock import SimulatedClock
from repro.encoding.identifiers import PrincipalId
from repro.ledger import Account, Ledger, Posting, credit
from repro.net.message import ENVELOPE_KEYS, Message
from repro.obs import Telemetry
from repro.obs.figures import run_figure
from repro.obs.usage import (
    QuantileDigest,
    REVENUE_ACCOUNT,
    Tariff,
    UNATTRIBUTED,
    UsageMeter,
    UsageRecord,
    post_usage_charges,
)
from repro.testbed import Realm

ALICE = PrincipalId("alice")
BOB = PrincipalId("bob")


def metered_figure(figure):
    telemetry = Telemetry(capture_crypto=True, meter_usage=True)
    try:
        run_figure(figure, telemetry)
    finally:
        telemetry.release_crypto()
    return telemetry


class TestQuantileDigest:
    def test_quantile_answers_bucket_upper_bound(self):
        d = QuantileDigest(low=0.001, high=10.0, bins_per_decade=1)
        for value in (0.002, 0.002, 0.002, 5.0):
            d.observe(value)
        # 3 of 4 samples land in the (0.001, 0.01] bucket.
        assert d.quantile(0.5) == pytest.approx(0.01)
        assert d.quantile(0.75) == pytest.approx(0.01)
        assert d.quantile(1.0) == pytest.approx(10.0)

    def test_empty_digest_answers_zero(self):
        assert QuantileDigest().quantile(0.99) == 0.0

    def test_overflow_clamps_to_top_bound(self):
        d = QuantileDigest(low=0.001, high=1.0, bins_per_decade=1)
        d.observe(50.0)
        assert d.quantile(0.5) == d.bounds[-1]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            QuantileDigest(low=0.0)
        with pytest.raises(ValueError):
            QuantileDigest().quantile(0.0)
        with pytest.raises(ValueError):
            QuantileDigest().quantile(1.5)


class TestUsageRecord:
    def test_merge_and_bytes_total(self):
        a = UsageRecord(messages=1, bytes_sent=10, bytes_received=5)
        b = UsageRecord(messages=2, bytes_sent=1, retries=3)
        a.merge(b)
        assert a.messages == 3
        assert a.bytes_total == 16
        assert a.retries == 3

    def test_to_dict_hides_cpu_by_default(self):
        record = UsageRecord(crypto_ops=2, crypto_seconds=0.5)
        assert "crypto_seconds" not in record.to_dict()
        assert record.to_dict(include_cpu=True)["crypto_ops"] == 2


class TestAttribution:
    def test_request_leg_registers_the_trace_owner(self):
        meter = UsageMeter()
        meter.on_wire("t1", "alice@R", "files@R", "read", 100)
        assert meter.owner_of("t1") == ("alice@R", "read")
        # A nested hop in the same trace bills to the registered owner.
        meter.on_wire("t1", "files@R", "bank@R", "debit", 50)
        assert meter.records[("alice@R", "read")].bytes_sent == 150
        assert ("files@R", "debit") not in meter.records

    def test_response_leg_bills_to_the_owner(self):
        meter = UsageMeter()
        meter.on_wire("t1", "alice@R", "files@R", "read", 100)
        meter.on_wire(
            "t1", "files@R", "alice@R", "read-reply", 40, response=True
        )
        record = meter.records[("alice@R", "read")]
        assert record.bytes_sent == 100
        assert record.bytes_received == 40
        assert record.messages == 2

    def test_untraced_response_falls_back_to_destination(self):
        meter = UsageMeter()
        meter.on_wire(
            None, "files@R", "alice@R", "read-reply", 40, response=True
        )
        assert meter.records[("alice@R", "read")].bytes_received == 40

    def test_owner_table_is_bounded_fifo(self):
        meter = UsageMeter(max_traces=2)
        for i in range(3):
            meter.on_wire(f"t{i}", "alice@R", "files@R", "read", 1)
        assert meter.owner_of("t0") is None
        assert meter.owner_of("t2") == ("alice@R", "read")

    def test_crypto_outside_any_trace_is_unattributed(self):
        meter = UsageMeter()
        meter.on_crypto("schnorr", "verify", 0.001, True)
        record = meter.records[(UNATTRIBUTED, UNATTRIBUTED)]
        assert record.crypto_ops == 1

    def test_crypto_resolves_span_principal_attrs(self):
        meter = UsageMeter()

        class FakeSpan:
            attributes = {"grantor": "alice@R", "operation": "verify"}

        meter.on_crypto(
            "schnorr", "verify", 0.001, True, trace_id=None,
            spans=(FakeSpan(),),
        )
        assert meter.records[("alice@R", "verify")].crypto_ops == 1

    def test_fig5_clearing_hop_bills_the_principals_not_the_banks(self):
        telemetry = metered_figure("fig5")
        principals = {key[0] for key in telemetry.usage.records}
        assert "payee@REPRO.ORG" in principals
        assert not any(p.startswith("bank-") for p in principals)


class TestReconciliation:
    """The acceptance bar: metered totals equal the network's counters."""

    @pytest.mark.parametrize("figure", ["fig1", "fig3", "fig4", "fig5"])
    def test_metered_totals_match_network_counters(self, figure):
        telemetry = metered_figure(figure)
        meter = telemetry.usage
        messages = telemetry.metrics.counter("network_messages_total").total()
        wire_bytes = telemetry.metrics.counter("network_bytes_total").total()
        assert meter.total_messages() == messages
        assert meter.total_bytes() == wire_bytes

    def test_per_record_bytes_sum_to_the_total(self):
        meter = metered_figure("fig5").usage
        assert (
            sum(r.bytes_total for r in meter.records.values())
            == meter.total_bytes()
        )


class TestSpanFinishFeeds:
    def _span(self, name, trace_id=None, events=(), duration=0.0):
        class FakeEvent:
            def __init__(self, event_name):
                self.name = event_name

        class FakeSpan:
            pass

        span = FakeSpan()
        span.name = name
        span.span_id = 1
        span.parent_id = None
        span.trace_id = trace_id
        span.duration = duration
        span.attributes = {}
        span.events = [FakeEvent(e) for e in events]
        return span

    def test_retry_and_degraded_events_are_counted(self):
        meter = UsageMeter()
        meter.on_wire("t1", "alice@R", "files@R", "read", 10)
        span = self._span(
            "resil.send",
            trace_id="t1",
            events=("resil.retry", "resil.retry", "degraded.grant"),
        )
        meter.on_span_finish(span)
        record = meter.records[("alice@R", "read")]
        assert record.retries == 2
        assert record.degraded_grants == 1

    def test_net_send_duration_lands_in_the_owner_digest(self):
        meter = UsageMeter()
        meter.on_wire("t1", "alice@R", "files@R", "read", 10)
        meter.on_span_finish(
            self._span("net.send", trace_id="t1", duration=0.01)
        )
        assert meter.digests["alice@R"].count == 1
        p50, p95, p99 = meter.percentiles("alice@R")
        assert p50 >= 0.01
        assert p50 <= p95 <= p99

    def test_unknown_principal_percentiles_are_zero(self):
        assert UsageMeter().percentiles("nobody@R") == (0.0, 0.0, 0.0)


class TestSlidingWindow:
    def test_window_totals_drop_old_buckets(self):
        clock = [0.0]
        meter = UsageMeter(
            now=lambda: clock[0], window_seconds=10.0, window_buckets=3
        )
        meter.on_wire("t1", "alice@R", "files@R", "read", 100)
        clock[0] = 25.0
        meter.on_wire("t2", "alice@R", "files@R", "read", 7)
        recent = meter.window_totals(seconds=10.0)
        assert recent[("alice@R", "read")].bytes_sent == 7
        # The full ring still holds both buckets.
        full = meter.window_totals()
        assert full[("alice@R", "read")].bytes_sent == 107
        # Totals are never windowed.
        assert meter.total_bytes() == 107


class TestDeterminism:
    """Same seed => byte-identical default report (the CPU columns are
    real measurements and are excluded unless asked for)."""

    def test_fig5_report_is_byte_identical_across_runs(self):
        first = metered_figure("fig5").usage
        second = metered_figure("fig5").usage
        assert first.report() == second.report()
        assert first.to_json() == second.to_json()

    def test_include_cpu_adds_the_measured_columns(self):
        meter = metered_figure("fig5").usage
        assert "crypto(ms)" not in meter.report()
        assert "crypto(ms)" in meter.report(include_cpu=True)
        dump = meter.to_json(include_cpu=True)
        assert any(
            "crypto_seconds" in entry for entry in dump["records"]
        )

    def test_report_filters(self):
        meter = metered_figure("fig5").usage
        only = meter.report(principal="payor@REPRO.ORG")
        assert "payee@REPRO.ORG" not in only
        top = meter.report(top=1)
        # header + separator + one row + totals line
        assert len(top.splitlines()) == 4


class TestEnvelopeExclusion:
    """Satellite: envelope-only fields never enter metered byte counts."""

    def test_rid_is_excluded_from_wire_size(self):
        plain = Message(ALICE, BOB, "ping", {"x": 1})
        stamped = Message(ALICE, BOB, "ping", {"x": 1, "_rid": "r-123"})
        assert "_rid" in ENVELOPE_KEYS
        assert stamped.wire_size() == plain.wire_size()

    def test_traceparent_is_excluded_from_wire_size(self):
        plain = Message(ALICE, BOB, "ping", {"x": 1})
        traced = Message(
            ALICE, BOB, "ping", {"x": 1},
            traceparent="00-" + "a" * 32 + "-" + "b" * 16 + "-01",
        )
        assert traced.wire_size() == plain.wire_size()

    def test_metered_bytes_agree_with_wire_size_under_resilience(self):
        # End to end: a resilient (rid-stamping) realm's metered bytes
        # still reconcile exactly with the byte counter.
        telemetry = Telemetry(meter_usage=True)
        realm = Realm(seed=b"usage-envelope", telemetry=telemetry)
        server = realm.accounting_server("envelope-bank")
        server.create_account("alice", ALICE, {"credits": 5})
        assert (
            telemetry.usage.total_bytes()
            == telemetry.metrics.counter("network_bytes_total").total()
        )


class TestTariff:
    def test_price_is_exact_integer_arithmetic(self):
        tariff = Tariff(
            per_message=1,
            per_kib=2,
            per_crypto_ms=3,
            per_handler_ms=1,
            per_retry=4,
            per_degraded_grant=5,
        )
        record = UsageRecord(
            messages=3,
            bytes_sent=1024,
            bytes_received=1,  # 1025 bytes -> 2 KiB, rounded up
            crypto_seconds=0.0021,  # -> 3 ms, rounded up
            handler_seconds=0.0005,  # -> 1 ms, rounded up
            retries=2,
            degraded_grants=1,
        )
        assert tariff.price(record) == 3 + 2 * 2 + 3 * 3 + 1 + 2 * 4 + 5

    def test_empty_record_costs_nothing(self):
        assert Tariff().price(UsageRecord()) == 0

    def test_to_dict_round_trips_the_config(self):
        tariff = Tariff(currency="repro-credits", per_message=7)
        assert tariff.to_dict()["currency"] == "repro-credits"
        assert tariff.to_dict()["per_message"] == 7


class TestChargePosting:
    def _funded_ledger(self, meter, tariff):
        accounts = {
            name: Account(name=name, owner=ALICE)
            for name in list(meter.by_principal()) + [REVENUE_ACCOUNT]
        }
        ledger = Ledger(accounts, SimulatedClock(0.0))
        for principal, record in meter.by_principal().items():
            amount = tariff.price(record)
            if amount > 0:
                ledger.post(
                    Posting(
                        legs=(
                            credit(principal, tariff.currency, amount),
                        ),
                        kind="mint",
                        description="fund",
                    )
                )
        return ledger

    def _meter(self):
        meter = UsageMeter()
        meter.on_wire("t1", "alice@R", "files@R", "read", 2048)
        meter.on_wire("t2", "bob@R", "files@R", "write", 100)
        return meter

    def test_charges_are_conserved_transfers(self):
        meter = self._meter()
        tariff = Tariff()
        ledger = self._funded_ledger(meter, tariff)
        minted_before = dict(ledger.expected_totals())
        charges = post_usage_charges(ledger, meter, tariff)
        assert {c.principal for c in charges} == {"alice@R", "bob@R"}
        # Charging moved funds but created none.
        assert ledger.expected_totals() == minted_before
        assert ledger.audit_discrepancies() == []
        assert sum(c.amount for c in charges) > 0

    def test_period_makes_charging_idempotent(self):
        meter = self._meter()
        tariff = Tariff()
        ledger = self._funded_ledger(meter, tariff)
        first = post_usage_charges(ledger, meter, tariff, period="2026-08")
        again = post_usage_charges(ledger, meter, tariff, period="2026-08")
        assert [c.posting_id for c in first] == [
            c.posting_id for c in again
        ]
        # Revenue accrued once, not twice.
        assert ledger.audit_discrepancies() == []

    def test_accounting_server_charges_and_conserves(self):
        telemetry = metered_figure("fig5")
        realm = Realm(seed=b"usage-bank")
        bank = realm.accounting_server("charge-bank")
        charges = bank.charge_usage(telemetry.usage, period="fig5")
        assert charges
        assert REVENUE_ACCOUNT in bank.accounts
        revenue = bank.accounts[REVENUE_ACCOUNT].balance("credits")
        assert revenue == sum(c.amount for c in charges)
        # Each provisioned account drains exactly to zero.
        for charge in charges:
            assert bank.accounts[charge.principal].balance("credits") == 0
        assert bank.ledger.audit_discrepancies() == []

    def test_accounting_server_recharge_is_idempotent(self):
        telemetry = metered_figure("fig5")
        realm = Realm(seed=b"usage-bank-2")
        bank = realm.accounting_server("charge-bank")
        first = bank.charge_usage(telemetry.usage, period="fig5")
        again = bank.charge_usage(telemetry.usage, period="fig5")
        assert [c.posting_id for c in first] == [
            c.posting_id for c in again
        ]
        assert bank.ledger.audit_discrepancies() == []


class TestTelemetryWiring:
    def test_meter_usage_flag_attaches_and_mirrors(self):
        telemetry = metered_figure("fig3")
        assert telemetry.usage is not None
        assert (
            telemetry.metrics.counter("usage.messages_total").total()
            == telemetry.usage.total_messages()
        )
        assert (
            telemetry.metrics.counter("usage.bytes_total").total()
            == telemetry.usage.total_bytes()
        )

    def test_default_telemetry_has_no_meter(self):
        assert Telemetry().usage is None

    def test_unmetered_trace_shape_is_unchanged(self):
        # op.exec spans exist only under metering, so unmetered runs'
        # span trees stay exactly as the seed recorded them.
        metered = metered_figure("fig5")
        plain = Telemetry(capture_crypto=True)
        try:
            run_figure("fig5", plain)
        finally:
            plain.release_crypto()
        assert not plain.tracer.find("op.exec")
        assert metered.tracer.find("op.exec")
