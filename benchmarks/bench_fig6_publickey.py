"""F6 — Figure 6 and §6.1: public-key and hybrid proxies.

Regenerates Fig. 6 ({restrictions, Kproxy} under the grantor's private key)
and measures the three schemes side by side:

* conventional (HMAC + sealed symmetric key, §6.2) — fast, single server;
* pure public-key (Schnorr certificate + Schnorr proxy key, Fig. 6) —
  verifiable everywhere, so ``issued-for`` matters (§7.3);
* hybrid (public-key signature, symmetric proxy key encrypted to the
  end-server, §6.1) — cheap proxy key, locked to one server;
* RSA variants for the grantor identity, to show scheme-independence.
"""

import pytest

from conftest import report
from repro.clock import SimulatedClock
from repro.core.evaluation import RequestContext
from repro.core.presentation import present
from repro.core.proxy import (
    grant_conventional,
    grant_hybrid,
    grant_public,
)
from repro.core.restrictions import IssuedFor
from repro.core.verification import (
    ProxyVerifier,
    PublicKeyCrypto,
    SharedKeyCrypto,
)
from repro.crypto import rsa, schnorr
from repro.crypto.dh import TEST_GROUP
from repro.crypto.keys import KeyPair, SymmetricKey
from repro.crypto.rng import Rng
from repro.crypto.signature import RsaSigner, SchnorrSigner
from repro.encoding.identifiers import PrincipalId

ALICE = PrincipalId("alice")
SERVER = PrincipalId("server")
START = 1_000_000.0

RNG = Rng(seed=b"f6")
IDENTITY = schnorr.generate_keypair(TEST_GROUP, rng=RNG)
SERVER_KEY = schnorr.generate_keypair(TEST_GROUP, rng=RNG)
RSA_IDENTITY = KeyPair.generate(bits=1024, rng=Rng(seed=b"f6-rsa"))
SHARED = SymmetricKey.generate(rng=RNG)


def public_verifier(clock):
    return ProxyVerifier(
        server=SERVER,
        crypto=PublicKeyCrypto(
            directory={
                ALICE: SchnorrSigner(IDENTITY).verifier(),
            },
            own_schnorr=SERVER_KEY,
        ),
        clock=clock,
    )


def test_grant_pure_public(benchmark):
    benchmark(
        grant_public,
        ALICE, SchnorrSigner(IDENTITY), (), START, START + 3600,
        RNG, TEST_GROUP,
    )


def test_grant_hybrid(benchmark):
    benchmark(
        grant_hybrid,
        ALICE, SchnorrSigner(IDENTITY), SERVER, SERVER_KEY.public,
        (), START, START + 3600, RNG,
    )


def test_grant_rsa_signed(benchmark):
    benchmark(
        grant_hybrid,
        ALICE, RsaSigner(RSA_IDENTITY), SERVER, SERVER_KEY.public,
        (), START, START + 3600, RNG,
    )


def test_verify_pure_public(benchmark):
    clock = SimulatedClock(START)
    verifier = public_verifier(clock)
    proxy = grant_public(
        ALICE, SchnorrSigner(IDENTITY), (), START, START + 3600,
        RNG, TEST_GROUP,
    )
    context = RequestContext(server=SERVER, operation="read")

    def run():
        return verifier.verify(
            present(proxy, SERVER, clock.now(), "read"), context
        )

    assert benchmark(run).grantor == ALICE


def test_verify_hybrid(benchmark):
    clock = SimulatedClock(START)
    verifier = public_verifier(clock)
    proxy = grant_hybrid(
        ALICE, SchnorrSigner(IDENTITY), SERVER, SERVER_KEY.public,
        (), START, START + 3600, RNG,
    )
    context = RequestContext(server=SERVER, operation="read")

    def run():
        return verifier.verify(
            present(proxy, SERVER, clock.now(), "read"), context
        )

    assert benchmark(run).grantor == ALICE


def test_verify_conventional_baseline(benchmark):
    clock = SimulatedClock(START)
    verifier = ProxyVerifier(
        server=SERVER, crypto=SharedKeyCrypto({ALICE: SHARED}), clock=clock
    )
    proxy = grant_conventional(ALICE, SHARED, (), START, START + 3600, RNG)
    context = RequestContext(server=SERVER, operation="read")

    def run():
        return verifier.verify(
            present(proxy, SERVER, clock.now(), "read"), context
        )

    assert benchmark(run).grantor == ALICE


def test_pk_service_request(benchmark):
    """Service-level §6.1: a full request through the no-KDC end-server."""
    from repro.acl import AclEntry, SinglePrincipal
    from repro.net import Network
    from repro.services.pk_endserver import (
        PkClient,
        PkEndServer,
        PublicKeyDirectory,
    )

    rng = Rng(seed=b"f6-svc")
    clock = SimulatedClock(START)
    network = Network(clock, rng=rng)
    directory = PublicKeyDirectory()
    server = PkEndServer(
        PrincipalId("pk-srv"), network, clock, directory,
        group=TEST_GROUP, rng=rng,
    )
    server.register_operation(
        "read", lambda rights, claimant, args, amounts: {"data": b"d"}
    )
    alice = PkClient(
        PrincipalId("alice-svc"), network, clock, directory,
        group=TEST_GROUP, rng=rng,
    )
    server.acl.add(AclEntry(subject=SinglePrincipal(alice.principal)))

    def run():
        return alice.request(server.principal, "read", target="doc")

    assert benchmark(run)["data"] == b"d"


def test_fig6_scheme_report(benchmark):
    """Fig. 6 structure plus the §6/§7.3 scheme-property matrix."""
    clock = SimulatedClock(START)
    pure = grant_public(
        ALICE, SchnorrSigner(IDENTITY), (), START, START + 3600,
        RNG, TEST_GROUP,
    )
    hybrid = grant_hybrid(
        ALICE, SchnorrSigner(IDENTITY), SERVER, SERVER_KEY.public,
        (IssuedFor(servers=(SERVER,)),), START, START + 3600, RNG,
    )
    conventional = grant_conventional(
        ALICE, SHARED, (), START, START + 3600, RNG
    )
    rows = [
        (
            "conventional (§6.2)",
            len(conventional.final.to_bytes()),
            "sealed symmetric",
            "one (sealing key's server)",
        ),
        (
            "pure public-key (Fig. 6)",
            len(pure.final.to_bytes()),
            "public (Schnorr)",
            "ALL — needs issued-for (§7.3)",
        ),
        (
            "hybrid (§6.1)",
            len(hybrid.final.to_bytes()),
            "symmetric, encrypted to server",
            "one (key-encryption target)",
        ),
    ]
    report(
        "F6 / Fig.6: proxy schemes",
        rows,
        ("scheme", "cert bytes", "proxy-key binding", "verifiable at"),
    )

    # §7.3 demonstrated: without issued-for, a pure public-key proxy
    # verifies at a second server too; with it, it does not.
    other_server = PrincipalId("other-server")
    other = ProxyVerifier(
        server=other_server,
        crypto=PublicKeyCrypto(
            directory={ALICE: SchnorrSigner(IDENTITY).verifier()}
        ),
        clock=clock,
    )
    other.verify(
        present(pure, other_server, clock.now(), "read"),
        RequestContext(server=other_server, operation="read"),
    )
    restricted = grant_public(
        ALICE, SchnorrSigner(IDENTITY),
        (IssuedFor(servers=(SERVER,)),), START, START + 3600,
        RNG, TEST_GROUP,
    )
    from repro.errors import RestrictionViolation

    try:
        other.verify(
            present(restricted, other_server, clock.now(), "read"),
            RequestContext(server=other_server, operation="read"),
        )
        issued_for_held = False
    except RestrictionViolation:
        issued_for_held = True
    report(
        "F6: issued-for on public-key proxies (§7.3)",
        [
            ("unrestricted proxy at other server", "accepted (the hazard)"),
            ("issued-for proxy at other server",
             "rejected" if issued_for_held else "ACCEPTED (bug)"),
        ],
        ("presentation", "outcome"),
    )
    assert issued_for_held
    benchmark(lambda: None)
