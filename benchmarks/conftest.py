"""Shared benchmark scaffolding.

Every benchmark builds its own :class:`~repro.testbed.Realm` (seeded, so
runs are reproducible) and reports two kinds of results:

* **timing** via pytest-benchmark (the ``benchmark`` fixture);
* **protocol shape** — message counts from the network meter — printed as
  small tables through :func:`report`, because the paper's claims are about
  who talks to whom, not nanoseconds.

``EXPERIMENTS.md`` collects the printed tables.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone

import pytest

from repro.obs import Telemetry
from repro.testbed import Realm

_REPORTED = []

#: Version of the BENCH_*.json envelope below.  Bump when the shape of the
#: envelope itself changes (not when a benchmark adds a metric).
BENCH_SCHEMA = 1


def bench_payload(name, config, metrics, passed=True):
    """The common envelope every ``BENCH_*.json`` artifact uses.

    All script-mode benchmarks write the same four-field shape —
    ``name``, ``config`` (the knobs this run used), ``metrics`` (whatever
    the benchmark measured), and a ``run_at`` timestamp — so
    ``benchmarks/trajectory.py`` can aggregate artifacts from different
    benchmarks and different CI runs into one table without per-benchmark
    parsing.
    """
    return {
        "schema": BENCH_SCHEMA,
        "name": str(name),
        "config": dict(config),
        "metrics": dict(metrics),
        "passed": bool(passed),
        "run_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def write_bench_json(path, payload) -> str:
    """Print the payload and, when ``path`` is set, write it to disk."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    print(text)
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return text


def report(title: str, rows, columns) -> None:
    """Print one experiment table (also collected for the session summary).

    Rows shorter than the header are padded (and longer ones truncated) so
    a benchmark that filtered everything out — or emitted a partial row —
    still renders every column instead of crashing or silently dropping
    trailing columns in the zip below.
    """
    columns = [str(c) for c in columns]
    padded = [
        [str(v) for v in list(row)[: len(columns)]]
        + [""] * max(0, len(columns) - len(row))
        for row in rows
    ]
    widths = [
        max(len(column), *(len(row[i]) for row in padded))
        if padded
        else len(column)
        for i, column in enumerate(columns)
    ]
    lines = [
        "",
        f"--- {title} ---",
        "  " + " | ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "  " + "-+-".join("-" * w for w in widths),
    ]
    for row in padded:
        lines.append(
            "  " + " | ".join(v.ljust(w) for v, w in zip(row, widths))
        )
    text = "\n".join(lines)
    _REPORTED.append(text)
    print(text)


@pytest.fixture
def realm():
    return Realm(seed=b"bench-realm")


@pytest.fixture
def telemetry():
    """A live Telemetry capturing crypto hot paths for one benchmark."""
    t = Telemetry(capture_crypto=True)
    try:
        yield t
    finally:
        t.release_crypto()


def fresh_realm(tag: bytes, telemetry=None) -> Realm:
    return Realm(seed=b"bench-" + tag, telemetry=telemetry)
