"""F4 — Figure 4 and the §3.4 claim: cascaded proxies vs Sollins.

"A similar mechanism is supported **more efficiently** by restricted
proxies ... in Sollins's approach the end-server has to contact the
authentication server to verify the authenticity of a chain of proxies."

Sweep chain length 1–16 and measure, for both designs:

* messages to the authentication server per verification (proxies: 0,
  Sollins: 1 round-trip — the crossover the paper claims);
* end-to-end verification latency (simulated network time + compute).
"""

import pytest

from conftest import fresh_realm, report
from repro.baselines import (
    SollinsAuthServer,
    SollinsEndServer,
    create_passport,
    extend_passport,
)
from repro.clock import SimulatedClock
from repro.core.evaluation import RequestContext
from repro.core.presentation import present
from repro.core.proxy import cascade, grant_conventional
from repro.core.restrictions import Quota
from repro.core.verification import ProxyVerifier, SharedKeyCrypto
from repro.crypto.keys import SymmetricKey
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.net.network import Network

START = 1_000_000.0
ALICE = PrincipalId("alice")
SERVER = PrincipalId("server")
CHAIN_LENGTHS = [1, 2, 4, 8, 16]


def build_proxy_chain(length):
    rng = Rng(seed=b"f4-proxy")
    shared = SymmetricKey.generate(rng=rng)
    clock = SimulatedClock(START)
    verifier = ProxyVerifier(
        server=SERVER, crypto=SharedKeyCrypto({ALICE: shared}), clock=clock
    )
    proxy = grant_conventional(ALICE, shared, (), START, START + 3600, rng)
    for i in range(length - 1):
        proxy = cascade(
            proxy, (Quota(currency=f"hop{i}", limit=100),),
            START, START + 3600, rng,
        )
    return clock, verifier, proxy


def build_sollins_chain(length):
    rng = Rng(seed=b"f4-sollins")
    clock = SimulatedClock(START)
    network = Network(clock, rng=rng)
    auth = SollinsAuthServer(PrincipalId("auth"), network, clock)
    end = SollinsEndServer(SERVER, network, clock, auth.principal)
    end.register_operation("read", lambda originator, payload: {"ok": True})
    principals = [ALICE] + [PrincipalId(f"hop{i}") for i in range(length - 1)]
    keys = [auth.register(p) for p in principals]
    passport = create_passport(principals[0], keys[0], ())
    for i in range(1, length):
        passport = extend_passport(
            passport, principals[i], keys[i],
            (Quota(currency=f"hop{i}", limit=100),),
        )
    return clock, network, auth, end, passport, principals[-1]


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_proxy_chain_verification(benchmark, length):
    clock, verifier, proxy = build_proxy_chain(length)
    context = RequestContext(server=SERVER, operation="read")

    def run():
        presented = present(proxy, SERVER, clock.now(), "read")
        return verifier.verify(presented, context)

    result = benchmark(run)
    assert result.chain_length == length


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_sollins_chain_verification(benchmark, length):
    clock, network, auth, end, passport, presenter = build_sollins_chain(
        length
    )

    def run():
        return network.send(
            presenter, SERVER, "request",
            {"passport": passport.to_wire(), "operation": "read"},
        )

    result = benchmark(run)
    assert result.get("ok")


def test_fig4_comparison_report(benchmark):
    """The paper's claim as a table: online contacts and wire cost."""
    rows = []
    for length in CHAIN_LENGTHS:
        # Restricted proxies: verification is entirely local.
        clock, verifier, proxy = build_proxy_chain(length)
        presented = present(proxy, SERVER, clock.now(), "read")
        verifier.verify(
            presented, RequestContext(server=SERVER, operation="read")
        )
        proxy_auth_contacts = 0  # no network exists in the local path at all

        # Sollins: count messages to the auth server per request.
        clock, network, auth, end, passport, presenter = (
            build_sollins_chain(length)
        )
        before = network.metrics.snapshot()
        network.send(
            presenter, SERVER, "request",
            {"passport": passport.to_wire(), "operation": "read"},
        )
        delta = network.metrics.delta_since(before)
        rows.append(
            (
                length,
                proxy_auth_contacts,
                delta.messages_to(auth.principal),
                len(
                    b"".join(c.to_bytes() for c in proxy.certificates)
                ),
            )
        )
    report(
        "F4 / Fig.4 + §3.4: offline proxy chains vs Sollins online verification",
        rows,
        ("chain length", "proxy: auth-server msgs", "sollins: auth-server msgs",
         "proxy chain bytes"),
    )
    assert all(row[1] == 0 and row[2] == 1 for row in rows)
    benchmark(lambda: None)


def test_fig4_chain_structure(benchmark):
    """Print the Fig. 4 chain for length 3, in the paper's notation."""
    from repro.core.chain import describe

    _, _, proxy = build_proxy_chain(3)
    print("\n--- F4 / Fig.4: cascaded proxies (as verified) ---")
    for line in describe(proxy.certificates).splitlines():
        print("  " + line)
    print("  Proxy-key: Kproxy3 (held by the final subordinate only)")
    benchmark(lambda: None)
