"""F5 — Figure 5: processing a check.

Regenerates the figure's three-message flow (check, E1 endorsement/deposit,
E2 endorsement/forward) and measures:

* same-server vs cross-server clearing latency and message count;
* endorsement-chain depth (multi-hop correspondent clearing);
* the duplicate-check rejection guarantee and its cost;
* certified-check issue + clear.
"""

import pytest

from conftest import fresh_realm, report
from repro.errors import ReplayError


def build_world(hops=0):
    """hops = number of intermediate accounting servers between $1 and $2."""
    realm = fresh_realm(b"f5-%d" % hops)
    payor = realm.user("payor")
    payee = realm.user("payee")
    bank_payor = realm.accounting_server("bank-payor")
    bank_payee = realm.accounting_server("bank-payee")
    bank_payor.create_account("payor", payor.principal, {"dollars": 10**9})
    bank_payee.create_account("payee", payee.principal)
    previous = bank_payee
    for i in range(hops):
        middle = realm.accounting_server(f"bank-mid{i}")
        previous.routes[bank_payor.principal] = middle.principal
        previous = middle
    return realm, payor, payee, bank_payor, bank_payee


def test_same_server_clearing(benchmark):
    realm = fresh_realm(b"f5-same")
    payor = realm.user("payor")
    payee = realm.user("payee")
    bank = realm.accounting_server("bank")
    bank.create_account("payor", payor.principal, {"dollars": 10**9})
    bank.create_account("payee", payee.principal)
    payor_client = payor.accounting_client(bank.principal)
    payee_client = payee.accounting_client(bank.principal)

    def run():
        check = payor_client.write_check(
            "payor", payee.principal, "dollars", 1
        )
        return payee_client.deposit_check(check, "payee")

    result = benchmark(run)
    assert result["paid"] == 1


@pytest.mark.parametrize("hops", [0, 1, 2])
def test_cross_server_clearing(benchmark, hops):
    realm, payor, payee, bank_payor, bank_payee = build_world(hops)
    payor_client = payor.accounting_client(bank_payor.principal)
    payee_client = payee.accounting_client(bank_payee.principal)

    def run():
        check = payor_client.write_check(
            "payor", payee.principal, "dollars", 1
        )
        return payee_client.deposit_check(check, "payee")

    result = benchmark(run)
    assert result["cleared"]


def test_certified_check_flow(benchmark):
    realm, payor, payee, bank_payor, bank_payee = build_world()
    shop = realm.file_server("shop")
    payor_client = payor.accounting_client(bank_payor.principal)
    payee_client = payee.accounting_client(bank_payee.principal)

    def run():
        check = payor_client.write_check(
            "payor", payee.principal, "dollars", 1
        )
        payor_client.certify_check(check, shop.principal)
        return payee_client.deposit_check(check, "payee")

    result = benchmark(run)
    assert result["cleared"]


def test_fig5_message_trace_report(benchmark):
    """The E1/E2 trace with per-hop message counts and audit trail."""
    rows = []
    for hops in (0, 1, 2):
        realm, payor, payee, bank_payor, bank_payee = build_world(hops)
        payor_client = payor.accounting_client(bank_payor.principal)
        payee_client = payee.accounting_client(bank_payee.principal)
        # Warm every server's tickets with one clearing, then measure.
        check = payor_client.write_check(
            "payor", payee.principal, "dollars", 1
        )
        payee_client.deposit_check(check, "payee")
        check = payor_client.write_check(
            "payor", payee.principal, "dollars", 5
        )
        before = realm.network.metrics.snapshot()
        payee_client.deposit_check(check, "payee")
        delta = realm.network.metrics.delta_since(before)
        rows.append(
            (
                f"{2 + hops} servers",
                delta.messages,
                delta.messages_to(bank_payor.principal),
                2 + hops,  # endorsement chain length incl. the check itself
            )
        )
    report(
        "F5 / Fig.5: check clearing by endorsement chain depth (warm tickets)",
        rows,
        ("topology", "total msgs", "msgs to payor's server", "chain links"),
    )
    benchmark(lambda: None)


def test_duplicate_check_rejected_report(benchmark):
    """'If ... another check with the same number is seen, it is rejected.'"""
    realm, payor, payee, bank_payor, bank_payee = build_world()
    payor_client = payor.accounting_client(bank_payor.principal)
    payee_client = payee.accounting_client(bank_payee.principal)
    check = payor_client.write_check("payor", payee.principal, "dollars", 7)
    payee_client.deposit_check(check, "payee")
    try:
        payee_client.deposit_check(check, "payee")
        outcome = "ACCEPTED (bug!)"
    except ReplayError:
        outcome = "rejected (accept-once)"
    report(
        "F5: double-deposit attack",
        [("second deposit of the same check", outcome)],
        ("attack", "outcome"),
    )
    assert outcome.startswith("rejected")
    benchmark(lambda: None)
