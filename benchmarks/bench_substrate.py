"""Substrate microbenchmarks (ablation support).

Not a paper figure — these isolate the building blocks so the figure-level
numbers can be decomposed: canonical encoding, authenticated sealing, the
three signature schemes, replay registries at size, and ticket handling.
Useful when judging which layer dominates a protocol-level cost.
"""

import pytest

from repro.clock import SimulatedClock
from repro.core.replay import AcceptOnceRegistry, AuthenticatorCache
from repro.crypto import mac, rsa, schnorr, symmetric
from repro.crypto.dh import TEST_GROUP
from repro.crypto.keys import KeyPair, SymmetricKey
from repro.crypto.rng import Rng
from repro.encoding.canonical import decode, encode
from repro.encoding.identifiers import PrincipalId
from repro.kerberos.ticket import Ticket, TicketBody

RNG = Rng(seed=b"substrate")
KEY = symmetric.new_key(RNG)
SCHNORR = schnorr.generate_keypair(TEST_GROUP, rng=RNG)
RSA = rsa.generate_keypair(bits=1024, rng=Rng(seed=b"substrate-rsa"))

SAMPLE_VALUE = {
    "grantor": "alice@REPRO.ORG",
    "restrictions": [
        {"type": "authorized", "entries": [{"target": "doc/*", "operations": ["read"]}]},
        {"type": "quota", "currency": "pages", "limit": 10},
    ],
    "issued_at": 1_000_000.0,
    "expires_at": 1_003_600.0,
    "nonce": b"n" * 16,
}
SAMPLE_BYTES = encode(SAMPLE_VALUE)
PLAINTEXT = b"p" * 512


def test_canonical_encode(benchmark):
    benchmark(encode, SAMPLE_VALUE)


def test_canonical_decode(benchmark):
    benchmark(decode, SAMPLE_BYTES)


def test_seal(benchmark):
    benchmark(symmetric.seal, KEY, PLAINTEXT)


def test_unseal(benchmark):
    box = symmetric.seal(KEY, PLAINTEXT)
    benchmark(symmetric.unseal, KEY, box)


def test_hmac_sign(benchmark):
    benchmark(mac.tag, KEY, SAMPLE_BYTES)


def test_schnorr_sign(benchmark):
    benchmark(schnorr.sign, SCHNORR, SAMPLE_BYTES, RNG)


def test_schnorr_verify(benchmark):
    sig = schnorr.sign(SCHNORR, SAMPLE_BYTES, rng=RNG)
    benchmark(schnorr.verify, SCHNORR.public, SAMPLE_BYTES, sig)


def test_schnorr_keygen(benchmark):
    """The per-proxy cost that made Schnorr the public-key default."""
    benchmark(schnorr.generate_keypair, TEST_GROUP, RNG)


def test_rsa_sign(benchmark):
    benchmark(rsa.sign, RSA, SAMPLE_BYTES)


def test_rsa_verify(benchmark):
    sig = rsa.sign(RSA, SAMPLE_BYTES)
    benchmark(rsa.verify, RSA.public, SAMPLE_BYTES, sig)


def test_ticket_seal_open(benchmark):
    server_key = SymmetricKey.generate(rng=RNG)
    body = TicketBody(
        client=PrincipalId("alice"),
        server=PrincipalId("server"),
        session_key=SymmetricKey.generate(rng=RNG),
        auth_time=0.0,
        expires_at=3600.0,
    )

    def run():
        return Ticket.seal(body, server_key, rng=RNG).open(server_key)

    assert benchmark(run).client == PrincipalId("alice")


@pytest.mark.parametrize("live_entries", [100, 10_000])
def test_accept_once_register(benchmark, live_entries):
    clock = SimulatedClock(0.0)
    registry = AcceptOnceRegistry(clock)
    grantor = PrincipalId("g")
    for i in range(live_entries):
        registry.register(grantor, f"seed-{i}", 1e12)
    counter = [live_entries]

    def run():
        counter[0] += 1
        return registry.register(grantor, f"id-{counter[0]}", 1e12)

    assert benchmark(run)


@pytest.mark.parametrize("live_entries", [100, 10_000])
def test_authenticator_cache_register(benchmark, live_entries):
    clock = SimulatedClock(0.0)
    cache = AuthenticatorCache(clock, window=1e12)
    for i in range(live_entries):
        cache.register(b"seed-%d" % i)
    counter = [live_entries]

    def run():
        counter[0] += 1
        return cache.register(b"id-%d" % counter[0])

    assert benchmark(run)


# -- delivery substrate: one round trip, per mode ---------------------------
#
# The cost the asyncio runtime adds to a single request: the sync network
# calls the handler inline; the aio network hops the request onto the event
# loop, through an inbox queue, and settles a future back across threads.
# The delta is the per-request price of concurrency (amortized away under
# wire latency — bench_c12_async_load.py measures that trade at load).


def _echo_handler(message):
    return {"echo": message.payload["x"]}


def test_net_sync_round_trip(benchmark):
    from repro.net.network import Network

    clock = SimulatedClock()
    net = Network(clock, rng=Rng(seed=b"substrate-net"))
    ep = PrincipalId("echo")
    net.register(ep, _echo_handler)
    client = PrincipalId("client")
    assert benchmark(net.send, client, ep, "ping", {"x": 1}) == {"echo": 1}


def test_net_aio_queued_round_trip(benchmark):
    import asyncio
    import threading

    from repro.net.aio import AioNetwork

    clock = SimulatedClock()
    net = AioNetwork(clock, rng=Rng(seed=b"substrate-aio"))
    ep = PrincipalId("echo")
    net.register(ep, _echo_handler)
    client = PrincipalId("client")
    ready = threading.Event()
    stop = threading.Event()

    def loop_main():
        async def _run():
            async with net.serve():
                ready.set()
                while not stop.is_set():
                    await asyncio.sleep(0.0005)

        asyncio.run(_run())

    runner = threading.Thread(target=loop_main)
    runner.start()
    ready.wait()
    try:
        assert benchmark(net.send, client, ep, "ping", {"x": 1}) == {
            "echo": 1
        }
    finally:
        stop.set()
        runner.join()
