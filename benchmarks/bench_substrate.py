"""Substrate microbenchmarks (ablation support).

Not a paper figure — these isolate the building blocks so the figure-level
numbers can be decomposed: canonical encoding, authenticated sealing, the
three signature schemes, replay registries at size, and ticket handling.
Useful when judging which layer dominates a protocol-level cost.
"""

import pytest

from repro.clock import SimulatedClock
from repro.core.replay import AcceptOnceRegistry, AuthenticatorCache
from repro.crypto import mac, rsa, schnorr, symmetric
from repro.crypto.dh import TEST_GROUP
from repro.crypto.keys import KeyPair, SymmetricKey
from repro.crypto.rng import Rng
from repro.encoding.canonical import decode, encode
from repro.encoding.identifiers import PrincipalId
from repro.kerberos.ticket import Ticket, TicketBody

RNG = Rng(seed=b"substrate")
KEY = symmetric.new_key(RNG)
SCHNORR = schnorr.generate_keypair(TEST_GROUP, rng=RNG)
RSA = rsa.generate_keypair(bits=1024, rng=Rng(seed=b"substrate-rsa"))

SAMPLE_VALUE = {
    "grantor": "alice@REPRO.ORG",
    "restrictions": [
        {"type": "authorized", "entries": [{"target": "doc/*", "operations": ["read"]}]},
        {"type": "quota", "currency": "pages", "limit": 10},
    ],
    "issued_at": 1_000_000.0,
    "expires_at": 1_003_600.0,
    "nonce": b"n" * 16,
}
SAMPLE_BYTES = encode(SAMPLE_VALUE)
PLAINTEXT = b"p" * 512


def test_canonical_encode(benchmark):
    benchmark(encode, SAMPLE_VALUE)


def test_canonical_decode(benchmark):
    benchmark(decode, SAMPLE_BYTES)


def test_seal(benchmark):
    benchmark(symmetric.seal, KEY, PLAINTEXT)


def test_unseal(benchmark):
    box = symmetric.seal(KEY, PLAINTEXT)
    benchmark(symmetric.unseal, KEY, box)


def test_hmac_sign(benchmark):
    benchmark(mac.tag, KEY, SAMPLE_BYTES)


def test_schnorr_sign(benchmark):
    benchmark(schnorr.sign, SCHNORR, SAMPLE_BYTES, RNG)


def test_schnorr_verify(benchmark):
    sig = schnorr.sign(SCHNORR, SAMPLE_BYTES, rng=RNG)
    benchmark(schnorr.verify, SCHNORR.public, SAMPLE_BYTES, sig)


def test_schnorr_keygen(benchmark):
    """The per-proxy cost that made Schnorr the public-key default."""
    benchmark(schnorr.generate_keypair, TEST_GROUP, RNG)


def test_rsa_sign(benchmark):
    benchmark(rsa.sign, RSA, SAMPLE_BYTES)


def test_rsa_verify(benchmark):
    sig = rsa.sign(RSA, SAMPLE_BYTES)
    benchmark(rsa.verify, RSA.public, SAMPLE_BYTES, sig)


def test_ticket_seal_open(benchmark):
    server_key = SymmetricKey.generate(rng=RNG)
    body = TicketBody(
        client=PrincipalId("alice"),
        server=PrincipalId("server"),
        session_key=SymmetricKey.generate(rng=RNG),
        auth_time=0.0,
        expires_at=3600.0,
    )

    def run():
        return Ticket.seal(body, server_key, rng=RNG).open(server_key)

    assert benchmark(run).client == PrincipalId("alice")


@pytest.mark.parametrize("live_entries", [100, 10_000])
def test_accept_once_register(benchmark, live_entries):
    clock = SimulatedClock(0.0)
    registry = AcceptOnceRegistry(clock)
    grantor = PrincipalId("g")
    for i in range(live_entries):
        registry.register(grantor, f"seed-{i}", 1e12)
    counter = [live_entries]

    def run():
        counter[0] += 1
        return registry.register(grantor, f"id-{counter[0]}", 1e12)

    assert benchmark(run)


@pytest.mark.parametrize("live_entries", [100, 10_000])
def test_authenticator_cache_register(benchmark, live_entries):
    clock = SimulatedClock(0.0)
    cache = AuthenticatorCache(clock, window=1e12)
    for i in range(live_entries):
        cache.register(b"seed-%d" % i)
    counter = [live_entries]

    def run():
        counter[0] += 1
        return cache.register(b"id-%d" % counter[0])

    assert benchmark(run)
