"""C1 — §3.1: proxy capabilities vs traditional capabilities under attack.

"An attacker can not obtain such a capability by tapping the network to
observe the presentation of capabilities by legitimate users."  We stage
exactly that attack against both designs, and also measure the price of the
protection (presentation cost: possession proof vs raw token) and the
revocation property (revoking the grantor revokes all derived copies).
"""

import pytest

from conftest import fresh_realm, report
from repro.acl import SinglePrincipal
from repro.baselines import PlainCapabilityServer
from repro.core.restrictions import Authorized, AuthorizedEntry
from repro.errors import ReproError
from repro.kerberos.proxy_support import grant_via_credentials
from repro.net import Eavesdropper
from repro.net.message import is_error, raise_if_error


def proxy_world():
    realm = fresh_realm(b"c1-proxy")
    alice = realm.user("alice")
    bob = realm.user("bob")
    fs = realm.file_server("files")
    fs.grant_owner(alice.principal)
    fs.put("doc", b"data")
    creds = alice.kerberos.get_ticket(fs.principal)
    cap = grant_via_credentials(
        creds,
        (Authorized(entries=(AuthorizedEntry("doc", ("read",)),)),),
        realm.clock.now(),
    )
    return realm, alice, bob, fs, cap


def plain_world():
    realm = fresh_realm(b"c1-plain")
    alice = realm.user("alice")
    bob = realm.user("bob")
    server = PlainCapabilityServer(
        realm.principal("cap-server"), realm.network, realm.clock
    )
    server.add_owner(alice.principal)
    server.register_operation("read", lambda who, p: {"data": b"data"})
    token = realm.network.send(
        alice.principal, server.principal, "issue",
        {"operations": ["read"], "target": "doc", "expires_at": None},
    )["token"]
    return realm, alice, bob, server, token


def test_proxy_presentation_cost(benchmark):
    realm, alice, bob, fs, cap = proxy_world()
    client = bob.client_for(fs.principal)

    def run():
        return client.request("read", "doc", proxy=cap, anonymous=True)

    assert benchmark(run)["data"] == b"data"


def test_plain_token_presentation_cost(benchmark):
    realm, alice, bob, server, token = plain_world()

    def run():
        return realm.network.send(
            bob.principal, server.principal, "request",
            {"token": token, "operation": "read", "target": "doc"},
        )

    assert benchmark(run)["data"] == b"data"


def test_c1_attack_report(benchmark):
    rows = []

    # Attack 1: tap + replay against restricted proxies.
    realm, alice, bob, fs, cap = proxy_world()
    mallory = Eavesdropper("mallory")
    mallory.attach(realm.network)
    bob.client_for(fs.principal).request(
        "read", "doc", proxy=cap, anonymous=True
    )
    captured = mallory.last_of_type("request")
    reply = mallory.replay(realm.network, captured)
    rows.append(
        (
            "restricted proxy",
            "tap + replay presentation",
            "REJECTED" if is_error(reply) else "succeeded (bug)",
        )
    )
    assert is_error(reply)

    # Attack 2: the same against traditional capabilities.
    realm, alice, bob, server, token = plain_world()
    mallory = Eavesdropper("mallory2")
    mallory.attach(realm.network)
    realm.network.send(
        bob.principal, server.principal, "request",
        {"token": token, "operation": "read", "target": "doc"},
    )
    stolen = mallory.last_of_type("request").payload["token"]
    reply = realm.network.send(
        mallory.principal, server.principal, "request",
        {"token": stolen, "operation": "read", "target": "doc"},
    )
    rows.append(
        (
            "traditional capability",
            "tap + reuse stolen token",
            "succeeded" if not is_error(reply) else "rejected (?)",
        )
    )
    assert not is_error(reply)

    report(
        "C1 / §3.1: eavesdropping attack outcome",
        rows, ("design", "attack", "outcome"),
    )
    benchmark(lambda: None)


def test_c1_revocation_report(benchmark):
    """'One can revoke a capability by changing the access rights available
    to the grantor' — all copies die at once."""
    realm, alice, bob, fs, cap = proxy_world()
    from repro.core.proxy import cascade

    copy1 = cap
    copy2 = cap.handoff(
        cascade(cap.proxy, (), realm.clock.now(), realm.clock.now() + 600)
    )
    client = bob.client_for(fs.principal)
    assert client.request("read", "doc", proxy=copy1, anonymous=True)
    assert client.request("read", "doc", proxy=copy2, anonymous=True)

    fs.acl.remove_subject(SinglePrincipal(alice.principal))
    outcomes = []
    for label, bundle in (("original", copy1), ("derived copy", copy2)):
        try:
            client.request("read", "doc", proxy=bundle, anonymous=True)
            outcomes.append((label, "still works (bug)"))
        except ReproError:
            outcomes.append((label, "revoked"))
    report(
        "C1 / §3.1: revocation via the grantor's rights",
        outcomes, ("capability copy", "after ACL change"),
    )
    assert all(outcome == "revoked" for _, outcome in outcomes)
    benchmark(lambda: None)
