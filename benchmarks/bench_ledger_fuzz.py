"""C10 — ledger: seeded fuzz campaigns under conservation invariants.

One campaign per bank topology (2-bank direct clearing, 3-bank with a
routed ``collect-check`` hop), each driving the full accounting surface
— checks, endorsement cascades, certified and cashier's checks,
replays, malformed arguments — and asserting after every episode that

* funds are conserved globally (non-settlement totals never change), and
* every bank's live account state matches its ledger-derived balances.

The 2-bank campaign also runs with request/response fault injection, so
the invariants are exercised under retries and dedupe.  Throughput
(postings applied per wall second) is reported alongside the verdict.

Run under pytest for the in-suite assertion, or as a script::

    PYTHONPATH=src python benchmarks/bench_ledger_fuzz.py \
        --json BENCH_ledger.json --smoke

The script exits non-zero if any campaign records a violation.
"""

import argparse
import sys
import time

from repro.ledger.fuzz import run_fuzz

SEED = 7
FULL_EPISODES = 400
SMOKE_EPISODES = 120


def run_arm(seed: int, episodes: int, banks: int, faults: bool) -> dict:
    start = time.perf_counter()
    report = run_fuzz(seed=seed, episodes=episodes, banks=banks, faults=faults)
    elapsed = time.perf_counter() - start
    summary = report.summary()
    summary["wall_seconds"] = round(elapsed, 3)
    summary["postings_per_sec"] = (
        round(report.postings_applied / elapsed, 1) if elapsed > 0 else 0.0
    )
    summary["episodes_per_sec"] = (
        round(report.episodes / elapsed, 1) if elapsed > 0 else 0.0
    )
    return summary


def run_sweep(episodes: int) -> dict:
    from conftest import report as table

    arms = [
        run_arm(SEED, episodes, banks=2, faults=False),
        run_arm(SEED + 1, episodes, banks=3, faults=False),
        run_arm(SEED + 2, episodes, banks=2, faults=True),
    ]
    rows = [
        (
            f"{arm['banks']} banks"
            + (" + faults" if arm["faults"] else ""),
            arm["episodes"],
            arm["accepted"],
            arm["rejected"],
            arm["postings_applied"],
            arm["postings_rolled_back"],
            f"{arm['postings_per_sec']:.0f}",
            arm["conservation"],
        )
        for arm in arms
    ]
    table(
        "C10: accounting fuzz campaigns (seeded; invariants checked "
        "every episode)",
        rows,
        (
            "topology",
            "episodes",
            "accepted",
            "rejected",
            "postings",
            "rolled back",
            "postings/s",
            "conservation",
        ),
    )
    return {
        "benchmark": "ledger-fuzz",
        "workload": "accounting-surface-fuzz",
        "seed": SEED,
        "episodes_per_campaign": episodes,
        "passed": all(arm["conservation"] == "ok" for arm in arms),
        "arms": arms,
    }


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------

def test_fuzz_campaigns_conserve_funds(benchmark):
    arm = run_arm(SEED, 60, banks=2, faults=False)
    assert arm["conservation"] == "ok", arm["violations"]
    assert arm["postings_applied"] > 0
    benchmark(lambda: None)


# ---------------------------------------------------------------------------
# script mode (CI writes BENCH_ledger.json from here)
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", default="", help="write results to this JSON file"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer episodes per campaign (CI)",
    )
    parser.add_argument(
        "--episodes",
        type=int,
        default=None,
        help=f"episodes per campaign (default {FULL_EPISODES}, or "
        f"{SMOKE_EPISODES} with --smoke)",
    )
    args = parser.parse_args(argv)
    episodes = (
        args.episodes
        if args.episodes is not None
        else (SMOKE_EPISODES if args.smoke else FULL_EPISODES)
    )
    from conftest import bench_payload, write_bench_json

    payload = run_sweep(episodes)
    write_bench_json(
        args.json,
        bench_payload(
            name="ledger_fuzz",
            config={"seed": SEED, "episodes_per_campaign": episodes},
            metrics=payload,
            passed=payload["passed"],
        ),
    )
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
