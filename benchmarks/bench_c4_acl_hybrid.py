"""C4 — §3.5: ACLs and capabilities combined, compound principals.

"The proxy model strikes a balance between access-control-list and
capability-based mechanisms allowing each to be used where appropriate and
allowing their use in combination."  We measure the authorization paths a
single end-server serves simultaneously (direct ACL, capability, group
entry, compound principal) and how matching scales with ACL size.
"""

import pytest

from conftest import fresh_realm, report
from repro.acl import (
    AccessControlList,
    AclEntry,
    Compound,
    GroupSubject,
    SinglePrincipal,
)
from repro.core.restrictions import Authorized, AuthorizedEntry, Grantee
from repro.encoding.identifiers import GroupId, PrincipalId
from repro.kerberos.proxy_support import grant_via_credentials


def test_acl_match_scaling(benchmark):
    """Pure data-structure cost of a worst-case (last-entry) ACL match."""
    acl = AccessControlList()
    for i in range(512):
        acl.add(
            AclEntry(
                subject=SinglePrincipal(PrincipalId(f"user{i}")),
                operations=("read",),
            )
        )
    target_principal = frozenset({PrincipalId("user511")})

    def run():
        return acl.match(target_principal, frozenset(), "read", "x")

    assert benchmark(run) is not None


@pytest.mark.parametrize("acl_size", [1, 64, 512])
def test_end_to_end_with_acl_size(benchmark, acl_size):
    realm = fresh_realm(b"c4-size-%d" % acl_size)
    fs = realm.file_server("files")
    fs.put("doc", b"data")
    for i in range(acl_size - 1):
        fs.acl.add(
            AclEntry(
                subject=SinglePrincipal(realm.principal(f"filler{i}")),
                operations=("read",),
            )
        )
    alice = realm.user("alice")
    fs.grant_owner(alice.principal)  # last entry
    client = alice.client_for(fs.principal)
    client.establish_session()

    def run():
        return client.request("read", "doc")

    assert benchmark(run)["data"] == b"data"


def test_compound_principal_check(benchmark):
    realm = fresh_realm(b"c4-compound")
    fs = realm.file_server("vault")
    fs.put("keys", b"k")
    alice = realm.user("alice")
    host = realm.user("host-1")
    fs.acl.add(
        AclEntry(
            subject=Compound(
                subjects=(
                    SinglePrincipal(alice.principal),
                    SinglePrincipal(host.principal),
                )
            ),
            operations=("read",),
        )
    )
    host_proxy = grant_via_credentials(
        host.kerberos.get_ticket(fs.principal),
        (Grantee(principals=(alice.principal,)),),
        realm.clock.now(),
    )
    client = alice.client_for(fs.principal)
    client.establish_session()

    def run():
        return client.request("read", "keys", proxy=host_proxy)

    assert benchmark(run)["data"] == b"k"


def test_c4_hybrid_matrix_report(benchmark):
    """One server, four authorization styles, side by side."""
    realm = fresh_realm(b"c4-matrix")
    fs = realm.file_server("files")
    fs.put("doc", b"data")
    alice = realm.user("alice")
    bob = realm.user("bob")
    host = realm.user("host-1")
    gs = realm.group_server("groups")
    staff = gs.create_group("staff", (bob.principal,))

    fs.grant_owner(alice.principal)
    fs.acl.add(AclEntry(subject=GroupSubject(staff), operations=("read",)))
    fs.acl.add(
        AclEntry(
            subject=Compound(
                subjects=(
                    SinglePrincipal(bob.principal),
                    SinglePrincipal(host.principal),
                )
            ),
            operations=("delete",),
        )
    )

    rows = []
    # 1. direct ACL
    out = alice.client_for(fs.principal).request("read", "doc")
    rows.append(("direct ACL entry", "alice", "read", "ok"))
    # 2. capability issued by alice
    cap = grant_via_credentials(
        alice.kerberos.get_ticket(fs.principal),
        (Authorized(entries=(AuthorizedEntry("doc", ("read",)),)),),
        realm.clock.now(),
    )
    bob.client_for(fs.principal).request(
        "read", "doc", proxy=cap, anonymous=True
    )
    rows.append(("capability (bearer proxy)", "anyone holding it", "read", "ok"))
    # 3. group entry
    gid, gproxy = bob.group_client(gs.principal).get_group_proxy(
        "staff", fs.principal
    )
    bob.client_for(fs.principal).request(
        "read", "doc", group_proxies=[(gid, gproxy)]
    )
    rows.append(("group ACL entry + group proxy", "staff members", "read", "ok"))
    # 4. compound principal (bob AND host-1)
    host_proxy = grant_via_credentials(
        host.kerberos.get_ticket(fs.principal),
        (Grantee(principals=(bob.principal,)),),
        realm.clock.now(),
    )
    bob.client_for(fs.principal).request(
        "delete", "doc", proxy=host_proxy
    )
    rows.append(
        ("compound principal (user AND host)", "bob on host-1", "delete", "ok")
    )
    report(
        "C4 / §3.5: one ACL, four authorization styles",
        rows, ("style", "who", "operation", "outcome"),
    )
    benchmark(lambda: None)
