"""C6 — §6.3: the TGS proxy makes conventional proxies multi-server.

"A disadvantage of using conventional cryptography to implement proxies is
that each proxy can be used at only a particular end-server.  This is
offset by implementing proxies within Kerberos itself since it is possible
to issue a proxy for the Kerberos ticket-granting service.  Such a proxy
allows the grantee to obtain proxies with identical restrictions for
additional end-servers as needed."

We fan a delegation out to K end-servers two ways and compare who does the
work:

* **per-server grants** — the grantor must be online and grant K times;
* **TGS proxy** — the grantor grants once; the grantee redeems at the TGS
  per server, without the grantor.
"""

import pytest

from conftest import fresh_realm, report
from repro.core.restrictions import Authorized, AuthorizedEntry
from repro.kerberos.proxy_support import grant_via_credentials
from repro.kerberos.session import make_ap_request
from repro.kerberos.ticket import Credentials

FAN_OUTS = [1, 4, 8]
RESTRICTIONS = (Authorized(entries=(AuthorizedEntry("doc", ("read",)),)),)


def build_world(k):
    realm = fresh_realm(b"c6-%d" % k)
    alice = realm.user("alice")
    bob = realm.user("bob")
    servers = [realm.file_server(f"srv{i}") for i in range(k)]
    for fs in servers:
        fs.grant_owner(alice.principal)
        fs.put("doc", b"data")
    return realm, alice, bob, servers


def tgt_credentials(alice):
    tgt = alice.kerberos.login()
    return tgt, Credentials(
        ticket=tgt.ticket,
        session_key=tgt.session_key,
        client=alice.principal,
        expires_at=tgt.expires_at,
    )


@pytest.mark.parametrize("k", FAN_OUTS)
def test_per_server_grants(benchmark, k):
    realm, alice, bob, servers = build_world(k)

    def run():
        bundles = []
        for fs in servers:
            creds = alice.kerberos.get_ticket(fs.principal)
            bundles.append(
                grant_via_credentials(creds, RESTRICTIONS, realm.clock.now())
            )
        return bundles

    assert len(benchmark(run)) == k


@pytest.mark.parametrize("k", FAN_OUTS)
def test_tgs_proxy_fanout(benchmark, k):
    realm, alice, bob, servers = build_world(k)
    tgt, creds = tgt_credentials(alice)
    tgs_proxy = grant_via_credentials(creds, RESTRICTIONS, realm.clock.now())
    bob.kerberos.login()

    def run():
        out = []
        for fs in servers:
            out.append(
                bob.kerberos.redeem_tgs_proxy(
                    tgt.ticket, tgs_proxy.proxy, fs.principal
                )
            )
        return out

    results = benchmark(run)
    assert all(c.client == alice.principal for c in results)


def test_c6_grantor_burden_report(benchmark):
    """Messages the *grantor* must send, by fan-out: the §6.3 point."""
    rows = []
    for k in FAN_OUTS:
        # Per-server: grantor fetches K tickets (warm TGT) and grants K
        # proxies locally; measure grantor-sourced messages.
        realm, alice, bob, servers = build_world(k)
        alice.kerberos.login()
        before = realm.network.metrics.snapshot()
        for fs in servers:
            creds = alice.kerberos.get_ticket(fs.principal)
            grant_via_credentials(creds, RESTRICTIONS, realm.clock.now())
        per_server = realm.network.metrics.delta_since(before)
        grantor_msgs_direct = sum(
            count
            for (src, _), count in per_server.by_pair.items()
            if src == str(alice.principal)
        )

        # TGS proxy: grantor grants once (offline after login); grantee
        # redeems K times.
        realm, alice, bob, servers = build_world(k)
        tgt, creds = tgt_credentials(alice)
        before = realm.network.metrics.snapshot()
        tgs_proxy = grant_via_credentials(
            creds, RESTRICTIONS, realm.clock.now()
        )
        delta = realm.network.metrics.delta_since(before)
        grantor_msgs_tgs = sum(
            count
            for (src, _), count in delta.by_pair.items()
            if src == str(alice.principal)
        )
        bob.kerberos.login()
        before = realm.network.metrics.snapshot()
        for fs in servers:
            bob.kerberos.redeem_tgs_proxy(
                tgt.ticket, tgs_proxy.proxy, fs.principal
            )
        grantee_msgs = realm.network.metrics.delta_since(before).messages
        rows.append(
            (k, grantor_msgs_direct, grantor_msgs_tgs, grantee_msgs)
        )
    report(
        "C6 / §6.3: grantor burden for K-server fan-out (messages sent)",
        rows,
        ("K", "per-server grants: grantor msgs", "TGS proxy: grantor msgs",
         "TGS proxy: grantee msgs"),
    )
    # The grantor's cost is constant (0 after login) with the TGS proxy and
    # grows with K otherwise.
    assert rows[-1][1] > rows[0][2]
    assert all(row[2] == 0 for row in rows)
    benchmark(lambda: None)


def test_c6_identical_restrictions_report(benchmark):
    """'Proxies with identical restrictions for additional end-servers.'"""
    realm, alice, bob, servers = build_world(3)
    tgt, creds = tgt_credentials(alice)
    tgs_proxy = grant_via_credentials(creds, RESTRICTIONS, realm.clock.now())
    bob.kerberos.login()
    rows = []
    for fs in servers:
        redeemed = bob.kerberos.redeem_tgs_proxy(
            tgt.ticket, tgs_proxy.proxy, fs.principal
        )
        types = sorted(
            r.to_wire()["type"] for r in redeemed.authorization_data
        )
        session = fs.ap.accept(
            make_ap_request(redeemed, realm.clock, presenter=bob.principal)
        )
        rows.append(
            (fs.principal.name, ",".join(types), str(session.client))
        )
    report(
        "C6: restrictions carried to each end-server",
        rows, ("end-server", "authorization-data", "rights of"),
    )
    assert all("authorized" in row[1] and "grantee" in row[1] for row in rows)
    benchmark(lambda: None)
