"""C8 — the verification fast path: cached vs uncached chain verification.

Repeated presentation of the same Fig. 4 cascade is the workload the
chain-prefix cache and signature memo exist for: the chain's stage 1–2
work (canonical encoding + one signature verify per link) is identical
every time, while freshness, possession, and replay checks stay
per-request.  This benchmark measures verification throughput for the
same chain presented many times, with the caches on and off, for both
crypto substrates:

* **Schnorr** public-key chains — each link verify is a pure-Python
  modular exponentiation, the expensive case the cache targets;
* **HMAC** conventional chains — hashlib-fast links, reported for
  completeness (the cache still wins, by less).

Run under pytest for the timing fixtures, or as a script::

    PYTHONPATH=src python benchmarks/bench_c8_verify_cache.py \
        --json BENCH_verify_cache.json --smoke

The script exits non-zero when the cached Schnorr cascade path is not at
least ``--min-speedup`` times faster than uncached (3.0 by default; the
CI smoke run uses a deliberately forgiving 1.2 so shared runners do not
flake).
"""

import argparse
import sys
import time

import pytest

from conftest import bench_payload, report, write_bench_json
from repro.clock import SimulatedClock
from repro.core.evaluation import RequestContext
from repro.core.presentation import present
from repro.core.proxy import cascade, grant_conventional, grant_public
from repro.core.restrictions import Quota
from repro.core.vcache import (
    DEFAULT_CONFIG,
    DISABLED_CONFIG,
    override as vcache_override,
)
from repro.core.verification import (
    ProxyVerifier,
    PublicKeyCrypto,
    SharedKeyCrypto,
)
from repro.crypto import signature as _signature
from repro.crypto.dh import TEST_GROUP
from repro.crypto.keys import SymmetricKey
from repro.crypto.rng import Rng
from repro.crypto.schnorr import generate_keypair
from repro.crypto.signature import SchnorrSigner
from repro.encoding.identifiers import PrincipalId

START = 1_000_000.0
ALICE = PrincipalId("alice")
SERVER = PrincipalId("server")
CHAIN_LENGTH = 6


def build_schnorr_chain(length=CHAIN_LENGTH):
    """A Fig. 4 bearer cascade under pure public-key crypto."""
    rng = Rng(seed=b"c8-schnorr")
    clock = SimulatedClock(START)
    identity = generate_keypair(TEST_GROUP, rng=rng)
    proxy = grant_public(
        ALICE, SchnorrSigner(identity), (), START, START + 3600, rng,
        group=TEST_GROUP,
    )
    for i in range(length - 1):
        proxy = cascade(
            proxy, (Quota(currency=f"hop{i}", limit=100),),
            START, START + 3600, rng,
        )
    crypto = PublicKeyCrypto(
        directory={ALICE: SchnorrSigner(identity).verifier()}
    )
    return clock, crypto, proxy


def build_hmac_chain(length=CHAIN_LENGTH):
    """The same cascade shape under conventional (shared-key) crypto."""
    rng = Rng(seed=b"c8-hmac")
    clock = SimulatedClock(START)
    shared = SymmetricKey.generate(rng=rng)
    proxy = grant_conventional(ALICE, shared, (), START, START + 3600, rng)
    for i in range(length - 1):
        proxy = cascade(
            proxy, (Quota(currency=f"hop{i}", limit=100),),
            START, START + 3600, rng,
        )
    crypto = SharedKeyCrypto({ALICE: shared})
    return clock, crypto, proxy


def _presentations(clock, proxy, count):
    """Pre-signed presentations (presenter cost excluded from the timing)."""
    return [
        present(proxy, SERVER, clock.now(), "read") for _ in range(count)
    ]


def measure(builder, config, iterations):
    """Verify ``iterations`` fresh presentations of one chain under ``config``.

    Returns (ops_per_sec, seconds, stats) where stats carries the cache
    hit/miss counts observed by this run's verifier and signature cache.
    """
    clock, crypto, proxy = builder()
    with vcache_override(config):
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        presentations = _presentations(clock, proxy, iterations)
        context = RequestContext(server=SERVER, operation="read")
        start = time.perf_counter()
        for presented in presentations:
            verifier.verify(presented, context)
        elapsed = time.perf_counter() - start
        sig_cache = _signature.get_signature_cache()
        stats = {
            "chain": (
                verifier.chain_cache.stats()
                if verifier.chain_cache is not None
                else None
            ),
            "sig": sig_cache.stats() if sig_cache is not None else None,
        }
    ops = iterations / elapsed if elapsed > 0 else float("inf")
    return ops, elapsed, stats


def run_comparison(iterations, min_speedup):
    """The full cached-vs-uncached comparison; returns the JSON payload."""
    results = {}
    rows = []
    for name, builder in (
        ("schnorr", build_schnorr_chain),
        ("hmac", build_hmac_chain),
    ):
        on_ops, on_s, on_stats = measure(builder, DEFAULT_CONFIG, iterations)
        off_ops, off_s, _ = measure(builder, DISABLED_CONFIG, iterations)
        speedup = on_ops / off_ops if off_ops > 0 else float("inf")
        chain = on_stats["chain"] or {}
        sig = on_stats["sig"] or {}
        chain_total = chain.get("hits", 0) + chain.get("misses", 0)
        results[name] = {
            "iterations": iterations,
            "chain_length": CHAIN_LENGTH,
            "cached_ops_per_sec": round(on_ops, 2),
            "uncached_ops_per_sec": round(off_ops, 2),
            "speedup": round(speedup, 3),
            "chain_hit_rate": (
                round(chain.get("hits", 0) / chain_total, 4)
                if chain_total
                else 0.0
            ),
            "sig_hits": sig.get("hits", 0),
            "sig_misses": sig.get("misses", 0),
        }
        rows.append(
            (
                name,
                f"{off_ops:.1f}",
                f"{on_ops:.1f}",
                f"{speedup:.2f}x",
                f"{results[name]['chain_hit_rate']:.0%}",
            )
        )
    report(
        "C8: repeated Fig.4 cascade verification, cache off vs on",
        rows,
        ("scheme", "uncached ops/s", "cached ops/s", "speedup", "chain hits"),
    )
    passed = results["schnorr"]["speedup"] >= min_speedup
    return {
        "benchmark": "verify_cache",
        "workload": "fig4-cascade-repeat",
        "min_speedup": min_speedup,
        "passed": passed,
        "schemes": results,
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("cached", [True, False], ids=["cached", "uncached"])
def test_schnorr_cascade_verify(benchmark, cached):
    clock, crypto, proxy = build_schnorr_chain()
    config = DEFAULT_CONFIG if cached else DISABLED_CONFIG
    with vcache_override(config):
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        context = RequestContext(server=SERVER, operation="read")

        def run():
            presented = present(proxy, SERVER, clock.now(), "read")
            return verifier.verify(presented, context)

        result = benchmark(run)
    assert result.chain_length == CHAIN_LENGTH
    if cached:
        assert verifier.chain_cache.stats()["hits"] > 0


def test_cached_faster_than_uncached(benchmark):
    """The acceptance claim, in-suite: a quick comparison run."""
    payload = run_comparison(iterations=20, min_speedup=1.0)
    assert payload["schemes"]["schnorr"]["speedup"] > 1.0
    assert payload["schemes"]["schnorr"]["chain_hit_rate"] > 0.5
    benchmark(lambda: None)


# ---------------------------------------------------------------------------
# script mode (CI writes BENCH_verify_cache.json from here)
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", default="", help="write results to this JSON file"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small iteration count and a forgiving speedup floor (CI)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless cached schnorr is this many times faster "
        "(default 3.0, or 1.2 with --smoke)",
    )
    args = parser.parse_args(argv)
    iterations = 30 if args.smoke else 200
    min_speedup = (
        args.min_speedup
        if args.min_speedup is not None
        else (1.2 if args.smoke else 3.0)
    )
    payload = run_comparison(iterations, min_speedup)
    write_bench_json(
        args.json,
        bench_payload(
            name="verify_cache",
            config={
                "iterations": iterations,
                "min_speedup": min_speedup,
            },
            metrics=payload,
            passed=payload["passed"],
        ),
    )
    if not payload["passed"]:
        print(
            f"FAIL: cached schnorr speedup "
            f"{payload['schemes']['schnorr']['speedup']} < {min_speedup}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
