"""Telemetry overhead: the fig4 cascade traced vs with ``NO_TELEMETRY``.

The trace-context machinery promises two things at once: every wire
message carries a traceparent when telemetry is live, and the null
object costs nearly nothing when it is not.  This benchmark runs the
complete Fig. 4 protocol (grant, two cascade hops, offline chain
verification) both ways and gates on the ratio — full tracing (spans,
span events, trace store indexing, metrics with exemplars) must stay
under ``--max-overhead`` times the untraced run.

Run under pytest for the timing fixtures, or as a script::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py \
        --json BENCH_trace_overhead.json --smoke

The script exits non-zero when the overhead ratio exceeds the ceiling
(2.5 by default; the CI smoke run keeps the same ceiling — the margin
is wide enough that shared runners do not flake).
"""

import argparse
import sys
import time

from conftest import bench_payload, report, write_bench_json
from repro.obs.figures import run_fig4
from repro.obs.telemetry import NO_TELEMETRY, Telemetry

MAX_OVERHEAD = 2.5


def run_traced():
    """One full fig4 protocol run under live telemetry."""
    return run_fig4(Telemetry())


def run_untraced():
    """The same run against the null object — the seed-parity path."""
    return run_fig4(NO_TELEMETRY)


def measure(runner, iterations):
    runner()  # warm imports and first-use caches outside the timing
    start = time.perf_counter()
    for _ in range(iterations):
        runner()
    elapsed = time.perf_counter() - start
    return elapsed / iterations


def run_comparison(iterations, max_overhead):
    """Time both arms; returns the JSON payload."""
    traced = measure(run_traced, iterations)
    untraced = measure(run_untraced, iterations)
    overhead = traced / untraced if untraced > 0 else float("inf")

    telemetry = run_fig4(Telemetry())
    spans = len(telemetry.tracer.spans)
    events = sum(len(s.events) for s in telemetry.tracer.spans)

    report(
        "trace overhead: fig4 with full telemetry vs NO_TELEMETRY",
        [
            ("untraced", f"{untraced * 1e3:.3f}", "-", "-"),
            ("traced", f"{traced * 1e3:.3f}", str(spans), str(events)),
            ("overhead", f"{overhead:.2f}x", "-", "-"),
        ],
        ("arm", "ms/run", "spans", "events"),
    )
    return {
        "benchmark": "trace_overhead",
        "workload": "fig4",
        "iterations": iterations,
        "traced_ms_per_run": round(traced * 1e3, 4),
        "untraced_ms_per_run": round(untraced * 1e3, 4),
        "overhead": round(overhead, 3),
        "max_overhead": max_overhead,
        "spans_per_run": spans,
        "events_per_run": events,
        "passed": overhead < max_overhead,
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------

def test_fig4_traced(benchmark):
    telemetry = benchmark(run_traced)
    assert len(telemetry.tracer.spans) > 0
    assert len(telemetry.store) > 0


def test_fig4_untraced(benchmark):
    telemetry = benchmark(run_untraced)
    assert telemetry is NO_TELEMETRY


def test_overhead_within_budget(benchmark):
    """The acceptance claim, in-suite: a quick comparison run."""
    payload = run_comparison(iterations=10, max_overhead=MAX_OVERHEAD)
    assert payload["passed"], (
        f"telemetry overhead {payload['overhead']}x "
        f">= {MAX_OVERHEAD}x budget"
    )
    benchmark(lambda: None)


# ---------------------------------------------------------------------------
# script mode (CI writes BENCH_trace_overhead.json from here)
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", default="", help="write results to this JSON file"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small iteration count for CI",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=MAX_OVERHEAD,
        help=f"fail when traced/untraced exceeds this "
        f"(default {MAX_OVERHEAD})",
    )
    args = parser.parse_args(argv)
    iterations = 20 if args.smoke else 200
    payload = run_comparison(iterations, args.max_overhead)
    write_bench_json(
        args.json,
        bench_payload(
            name="trace_overhead",
            config={
                "workload": "fig4",
                "iterations": iterations,
                "max_overhead": args.max_overhead,
            },
            metrics=payload,
            passed=payload["passed"],
        ),
    )
    if not payload["passed"]:
        print(
            f"FAIL: telemetry overhead {payload['overhead']}x "
            f">= {args.max_overhead}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
