"""F1 — Figure 1: the restricted proxy primitive.

Regenerates the paper's Fig. 1 structure (certificate + proxy key) and
measures the cost of the two fundamental operations — granting and
verifying — under both cryptosystems (§6), swept over restriction count.
The paper claims proxies are a cheap generalization of authentication;
the numbers quantify "cheap".
"""

import pytest

from conftest import report
from repro.clock import SimulatedClock
from repro.core.evaluation import RequestContext
from repro.core.presentation import present
from repro.core.proxy import grant_conventional, grant_public
from repro.core.restrictions import Authorized, AuthorizedEntry, Quota
from repro.core.verification import (
    ProxyVerifier,
    PublicKeyCrypto,
    SharedKeyCrypto,
)
from repro.crypto import schnorr
from repro.crypto.dh import TEST_GROUP
from repro.crypto.keys import SymmetricKey
from repro.crypto.rng import Rng
from repro.crypto.signature import SchnorrSigner
from repro.encoding.identifiers import PrincipalId

ALICE = PrincipalId("alice")
SERVER = PrincipalId("server")
START = 1_000_000.0


def restrictions_of(n):
    return tuple(
        Quota(currency=f"c{i}", limit=i + 1) for i in range(n)
    )


def conventional_setup():
    rng = Rng(seed=b"f1-conv")
    shared = SymmetricKey.generate(rng=rng)
    clock = SimulatedClock(START)
    verifier = ProxyVerifier(
        server=SERVER, crypto=SharedKeyCrypto({ALICE: shared}), clock=clock
    )
    return rng, shared, clock, verifier


def public_setup():
    rng = Rng(seed=b"f1-pub")
    identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
    clock = SimulatedClock(START)
    verifier = ProxyVerifier(
        server=SERVER,
        crypto=PublicKeyCrypto(
            directory={ALICE: SchnorrSigner(identity).verifier()}
        ),
        clock=clock,
    )
    return rng, identity, clock, verifier


@pytest.mark.parametrize("n_restrictions", [0, 8, 32])
def test_grant_conventional(benchmark, n_restrictions):
    rng, shared, clock, _ = conventional_setup()
    restrictions = restrictions_of(n_restrictions)
    benchmark(
        grant_conventional,
        ALICE, shared, restrictions, START, START + 3600, rng,
    )


@pytest.mark.parametrize("n_restrictions", [0, 8, 32])
def test_verify_conventional(benchmark, n_restrictions):
    rng, shared, clock, verifier = conventional_setup()
    proxy = grant_conventional(
        ALICE, shared, restrictions_of(n_restrictions),
        START, START + 3600, rng,
    )
    context = RequestContext(server=SERVER, operation="read")

    def run():
        presented = present(proxy, SERVER, clock.now(), "read")
        return verifier.verify(presented, context)

    result = benchmark(run)
    assert result.grantor == ALICE


@pytest.mark.parametrize("n_restrictions", [0, 8])
def test_grant_public(benchmark, n_restrictions):
    rng, identity, clock, _ = public_setup()
    signer = SchnorrSigner(identity)
    restrictions = restrictions_of(n_restrictions)
    benchmark(
        grant_public,
        ALICE, signer, restrictions, START, START + 3600, rng, TEST_GROUP,
    )


@pytest.mark.parametrize("n_restrictions", [0, 8])
def test_verify_public(benchmark, n_restrictions):
    rng, identity, clock, verifier = public_setup()
    proxy = grant_public(
        ALICE, SchnorrSigner(identity), restrictions_of(n_restrictions),
        START, START + 3600, rng, TEST_GROUP,
    )
    context = RequestContext(server=SERVER, operation="read")

    def run():
        presented = present(proxy, SERVER, clock.now(), "read")
        return verifier.verify(presented, context)

    result = benchmark(run)
    assert result.grantor == ALICE


def test_fig1_instrumented_verify(benchmark, telemetry):
    """Grant/verify under live telemetry: the hot-path histograms fill up.

    The exported Prometheus text must carry nonzero ``verify_chain_seconds``
    samples — the observability acceptance gate for the verifier hot path.
    """
    rng, shared, clock, _ = conventional_setup()
    verifier = ProxyVerifier(
        server=SERVER,
        crypto=SharedKeyCrypto({ALICE: shared}),
        clock=clock,
        telemetry=telemetry,
    )
    proxy = grant_conventional(
        ALICE, shared, restrictions_of(4), START, START + 3600, rng
    )
    context = RequestContext(server=SERVER, operation="read")

    def run():
        presented = present(proxy, SERVER, clock.now(), "read")
        return verifier.verify(presented, context)

    assert benchmark(run).grantor == ALICE
    text = telemetry.prometheus()
    assert "verify_chain_seconds" in text
    verifications = telemetry.metrics.counter(
        "proxy_verifications_total"
    ).total()
    assert verifications > 0
    report(
        "F1: instrumented verification (telemetry on)",
        [
            ("proxy_verifications_total", int(verifications)),
            (
                "signature ops observed",
                int(
                    telemetry.metrics.counter(
                        "signature_operations_total"
                    ).total()
                ),
            ),
        ],
        ("metric", "value"),
    )


def test_fig1_structure_report(benchmark):
    """Print Fig. 1 as built: certificate fields and wire sizes."""
    rng, shared, clock, verifier = conventional_setup()

    def grant():
        return grant_conventional(
            ALICE, shared,
            (Authorized(entries=(AuthorizedEntry("file", ("read",)),)),),
            START, START + 3600, rng,
        )

    proxy = benchmark(grant)
    cert = proxy.final
    rows = [
        ("grantor", str(cert.grantor)),
        ("restrictions", [r.to_wire()["type"] for r in cert.restrictions]),
        ("key binding", cert.key_binding.KIND),
        ("certificate bytes", len(cert.to_bytes())),
        ("signature bytes", len(cert.signature)),
        ("proxy-key bytes (held by grantee)", len(proxy.proxy_key.secret)),
    ]
    report(
        "F1 / Fig.1: [restrictions, Kproxy]_grantor + proxy key",
        rows, ("field", "value"),
    )
