"""Usage-metering overhead: fig4 with the meter on vs plain telemetry.

The :class:`~repro.obs.usage.UsageMeter` piggybacks on metering points
that already exist — the network's ``_observe`` hook, the signature
observer, span-finish listeners — so attribution must stay cheap: a
metered run may cost at most ``--max-overhead`` times an unmetered run
under otherwise identical telemetry (1.5x, the ISSUE acceptance bar).
Both arms run the complete Fig. 4 protocol with live tracing; only
``meter_usage`` differs.

Run under pytest for the timing fixtures, or as a script::

    PYTHONPATH=src python benchmarks/bench_usage_overhead.py \
        --json BENCH_usage_overhead.json --smoke

The script exits non-zero when the overhead ratio exceeds the ceiling.
"""

import argparse
import sys
import time

from conftest import bench_payload, report, write_bench_json
from repro.obs.figures import run_fig4
from repro.obs.telemetry import Telemetry

MAX_OVERHEAD = 1.5


def run_metered():
    """One full fig4 run with per-principal usage attribution live."""
    return run_fig4(Telemetry(meter_usage=True))


def run_unmetered():
    """The same run with identical tracing but no meter attached."""
    return run_fig4(Telemetry())


def measure(runner, iterations):
    runner()  # warm imports and first-use caches outside the timing
    start = time.perf_counter()
    for _ in range(iterations):
        runner()
    elapsed = time.perf_counter() - start
    return elapsed / iterations


def run_comparison(iterations, max_overhead):
    """Time both arms; returns the metrics payload."""
    metered = measure(run_metered, iterations)
    unmetered = measure(run_unmetered, iterations)
    overhead = metered / unmetered if unmetered > 0 else float("inf")

    telemetry = run_fig4(Telemetry(meter_usage=True))
    meter = telemetry.usage
    principals = len({key[0] for key in meter.by_principal()})

    report(
        "usage-metering overhead: fig4 metered vs unmetered telemetry",
        [
            ("unmetered", f"{unmetered * 1e3:.3f}", "-", "-"),
            (
                "metered",
                f"{metered * 1e3:.3f}",
                str(meter.total_messages()),
                str(principals),
            ),
            ("overhead", f"{overhead:.2f}x", "-", "-"),
        ],
        ("arm", "ms/run", "msgs attributed", "principals"),
    )
    return {
        "workload": "fig4",
        "iterations": iterations,
        "metered_ms_per_run": round(metered * 1e3, 4),
        "unmetered_ms_per_run": round(unmetered * 1e3, 4),
        "overhead": round(overhead, 3),
        "max_overhead": max_overhead,
        "messages_attributed_per_run": meter.total_messages(),
        "bytes_attributed_per_run": meter.total_bytes(),
        "principals": principals,
        "passed": overhead < max_overhead,
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------

def test_fig4_metered(benchmark):
    telemetry = benchmark(run_metered)
    assert telemetry.usage is not None
    assert len(telemetry.usage.by_principal()) > 0


def test_fig4_unmetered(benchmark):
    telemetry = benchmark(run_unmetered)
    assert telemetry.usage is None


def test_overhead_within_budget(benchmark):
    """The acceptance claim, in-suite: a quick comparison run."""
    payload = run_comparison(iterations=10, max_overhead=MAX_OVERHEAD)
    assert payload["passed"], (
        f"usage-metering overhead {payload['overhead']}x "
        f">= {MAX_OVERHEAD}x budget"
    )
    benchmark(lambda: None)


# ---------------------------------------------------------------------------
# script mode (CI writes BENCH_usage_overhead.json from here)
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", default="", help="write results to this JSON file"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small iteration count for CI",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=MAX_OVERHEAD,
        help=f"fail when metered/unmetered exceeds this "
        f"(default {MAX_OVERHEAD})",
    )
    args = parser.parse_args(argv)
    iterations = 20 if args.smoke else 200
    payload = run_comparison(iterations, args.max_overhead)
    write_bench_json(
        args.json,
        bench_payload(
            name="usage_overhead",
            config={
                "workload": "fig4",
                "iterations": iterations,
                "max_overhead": args.max_overhead,
            },
            metrics=payload,
            passed=payload["passed"],
        ),
    )
    if not payload["passed"]:
        print(
            f"FAIL: usage-metering overhead {payload['overhead']}x "
            f">= {args.max_overhead}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
