"""C7 — §7.9: propagation of restrictions through issuing servers.

"Authentication, authorization, and group servers accept proxies and issue
proxies.  If a proxy is issued based upon a proxy that includes
restrictions, those restrictions should be passed on."  We push authority
through a chain of authorization servers — each one delegating to the next,
as §3.5 describes ("the name of an authorization server to which the
function of authorizing remote users has been assigned") — and measure:

* monotonicity: the restriction multiset only grows along the chain;
* the limit-restriction optimization of §7.8/§7.9;
* per-hop issue cost as carried restrictions accumulate.
"""

import pytest

from conftest import fresh_realm, report
from repro.acl import AclEntry, SinglePrincipal
from repro.core.policy import is_narrower
from repro.core.restrictions import (
    IssuedFor,
    LimitRestriction,
    Quota,
    propagate_restrictions,
)
from repro.encoding.identifiers import PrincipalId

DEPTHS = [1, 2, 4]


def build_chain_world(depth):
    """stage0 -> stage1 -> ... -> fs: each stage trusts the previous one.

    Stage 0 knows the *user*; each later stage's database holds only the
    previous stage's principal (authority has been delegated to it); the
    file server's ACL holds only the last stage.
    """
    realm = fresh_realm(b"c7-%d" % depth)
    user = realm.user("user")
    fs = realm.file_server("files")
    fs.put("doc", b"data")
    stages = [realm.authorization_server(f"authz{i}") for i in range(depth)]
    targets = stages[1:] + [fs]
    for i, azs in enumerate(stages):
        subject = (
            SinglePrincipal(user.principal)
            if i == 0
            else SinglePrincipal(stages[i - 1].principal)
        )
        azs.database_for(targets[i].principal).add(
            AclEntry(subject=subject, operations=("read",))
        )
    fs.acl.add(AclEntry(subject=SinglePrincipal(stages[-1].principal)))
    return realm, user, fs, stages, targets


def run_pipeline(user, fs, stages, targets):
    proxy = None
    for azs, target in zip(stages, targets):
        proxy = user.authorization_client(azs.principal).authorize(
            target.principal, ("read",), proxy=proxy
        )
    return proxy


@pytest.mark.parametrize("depth", DEPTHS)
def test_reissue_pipeline(benchmark, depth):
    realm, user, fs, stages, targets = build_chain_world(depth)

    def run():
        return run_pipeline(user, fs, stages, targets)

    proxy = benchmark.pedantic(run, rounds=3, iterations=1)
    out = user.client_for(fs.principal).request("read", "doc", proxy=proxy)
    assert out["data"] == b"data"


def test_c7_monotonicity_report(benchmark):
    """Restriction counts through the pipeline: they only grow."""
    realm, user, fs, stages, targets = build_chain_world(4)
    rows = []
    proxy = None
    previous = ()
    counts = []
    for hop, (azs, target) in enumerate(zip(stages, targets)):
        proxy = user.authorization_client(azs.principal).authorize(
            target.principal, ("read",), proxy=proxy
        )
        carried = tuple(
            r
            for cert in proxy.proxy.certificates
            for r in cert.restrictions
            if not isinstance(r, IssuedFor)  # rebound per hop by design
        )
        assert is_narrower(carried, previous)
        previous = carried
        counts.append(len(carried))
        rows.append((hop, azs.principal.name, len(carried)))
    report(
        "C7 / §7.9: restriction accumulation through re-issue hops",
        rows, ("hop", "issuer", "restrictions carried (excl. issued-for)"),
    )
    assert counts == sorted(counts)
    # The final proxy still works end to end.
    out = user.client_for(fs.principal).request("read", "doc", proxy=proxy)
    assert out["data"] == b"data"
    benchmark(lambda: None)


def test_c7_limit_restriction_drop(benchmark):
    """The §7.9 optimization, measured on wire size."""
    servers = [PrincipalId(f"s{i}") for i in range(8)]
    reachable = (servers[0],)
    incoming = tuple(
        LimitRestriction(
            servers=(servers[i],),
            restrictions=(Quota(currency=f"c{i}", limit=i + 1),),
        )
        for i in range(8)
    ) + (Quota(currency="global", limit=9),)

    def run():
        return propagate_restrictions(incoming, reachable_servers=reachable)

    propagated = benchmark(run)
    from repro.core.restrictions import restrictions_to_wire
    from repro.encoding.canonical import encode

    full = len(encode(restrictions_to_wire(incoming)))
    dropped = len(encode(restrictions_to_wire(propagated)))
    report(
        "C7 / §7.8-7.9: dropping unreachable limit-restrictions",
        [
            ("restrictions in", len(incoming)),
            ("restrictions out", len(propagated)),
            ("wire bytes in", full),
            ("wire bytes out", dropped),
        ],
        ("measure", "value"),
    )
    # Only the reachable limit-restriction and the global quota survive.
    assert len(propagated) == 2
    assert dropped < full
