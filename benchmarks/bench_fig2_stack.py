"""F2 — Figure 2: the layering of security services.

Fig. 2 places authorization and accounting mechanisms above restricted
proxies, above authentication.  This benchmark drives one request down each
stack path — direct authentication (session), capability (proxy),
authorization-server proxy, group proxy — and measures the incremental cost
of each layer on top of the same substrate, confirming that every service
really is "just proxies" (same verification engine, same message shapes).
"""

import pytest

from conftest import fresh_realm, report
from repro.acl import AclEntry, GroupSubject, SinglePrincipal
from repro.core.restrictions import Authorized, AuthorizedEntry
from repro.kerberos.proxy_support import grant_via_credentials


def build_world():
    realm = fresh_realm(b"f2")
    alice = realm.user("alice")
    bob = realm.user("bob")
    fs = realm.file_server("files")
    fs.grant_owner(alice.principal)
    fs.put("doc", b"data")

    authz = realm.authorization_server("authz")
    fs.acl.add(AclEntry(subject=SinglePrincipal(authz.principal)))
    authz.database_for(fs.principal).add(
        AclEntry(subject=SinglePrincipal(bob.principal), operations=("read",))
    )

    groups = realm.group_server("groups")
    staff = groups.create_group("staff", (bob.principal,))
    fs.acl.add(AclEntry(subject=GroupSubject(staff), operations=("read",)))
    return realm, alice, bob, fs, authz, groups, staff


def test_direct_session_request(benchmark):
    realm, alice, bob, fs, *_ = build_world()
    client = alice.client_for(fs.principal)
    client.establish_session()
    result = benchmark(client.request, "read", "doc")
    assert result["data"] == b"data"


def test_capability_request(benchmark):
    realm, alice, bob, fs, *_ = build_world()
    creds = alice.kerberos.get_ticket(fs.principal)
    cap = grant_via_credentials(
        creds,
        (Authorized(entries=(AuthorizedEntry("doc", ("read",)),)),),
        realm.clock.now(),
    )
    client = bob.client_for(fs.principal)

    def run():
        return client.request("read", "doc", proxy=cap, anonymous=True)

    assert benchmark(run)["data"] == b"data"


def test_authorization_proxy_request(benchmark):
    realm, alice, bob, fs, authz, *_ = build_world()
    proxy = bob.authorization_client(authz.principal).authorize(
        fs.principal, ("read",)
    )
    client = bob.client_for(fs.principal)
    client.establish_session()

    def run():
        return client.request("read", "doc", proxy=proxy)

    assert benchmark(run)["data"] == b"data"


def test_group_proxy_request(benchmark):
    realm, alice, bob, fs, authz, groups, staff = build_world()
    gid, gproxy = bob.group_client(groups.principal).get_group_proxy(
        "staff", fs.principal
    )
    client = bob.client_for(fs.principal)
    client.establish_session()

    def run():
        return client.request("read", "doc", group_proxies=[(gid, gproxy)])

    assert benchmark(run)["data"] == b"data"


def test_stack_shape_report(benchmark):
    """Message counts per path — all paths ride the same 2-message request."""
    realm, alice, bob, fs, authz, groups, staff = build_world()
    rows = []

    client = alice.client_for(fs.principal)
    client.establish_session()
    before = realm.network.metrics.snapshot()
    client.request("read", "doc")
    rows.append(
        ("session (authentication only)",
         realm.network.metrics.delta_since(before).messages)
    )

    creds = alice.kerberos.get_ticket(fs.principal)
    cap = grant_via_credentials(
        creds,
        (Authorized(entries=(AuthorizedEntry("doc", ("read",)),)),),
        realm.clock.now(),
    )
    bclient = bob.client_for(fs.principal)
    before = realm.network.metrics.snapshot()
    bclient.request("read", "doc", proxy=cap, anonymous=True)
    rows.append(
        ("capability (proxy layer)",
         realm.network.metrics.delta_since(before).messages)
    )

    proxy = bob.authorization_client(authz.principal).authorize(
        fs.principal, ("read",)
    )
    bclient.establish_session()
    before = realm.network.metrics.snapshot()
    bclient.request("read", "doc", proxy=proxy)
    rows.append(
        ("authorization service (proxy of R)",
         realm.network.metrics.delta_since(before).messages)
    )

    gid, gproxy = bob.group_client(groups.principal).get_group_proxy(
        "staff", fs.principal
    )
    before = realm.network.metrics.snapshot()
    bclient.request("read", "doc", group_proxies=[(gid, gproxy)])
    rows.append(
        ("group service (proxy of group server)",
         realm.network.metrics.delta_since(before).messages)
    )

    report(
        "F2 / Fig.2: every layer rides the same request shape",
        rows, ("stack path", "messages per request"),
    )
    # All four paths cost exactly one request/response pair — the layering
    # adds restriction checks, not protocol round-trips.
    assert all(count == 2 for _, count in rows)
    benchmark(lambda: None)
