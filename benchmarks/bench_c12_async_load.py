"""C12 — concurrent delivery: async runtime throughput vs the sync baseline.

Three arms over the load generator (``repro.workloads.load``):

* **echo / zero latency** — the substrate price of the queue hop.  With
  no wire latency to hide and one interpreter lock, the async runtime
  cannot beat inline delivery; this arm keeps that cost honest.
* **pk-verify / wire latency** — the headline: per-hop latency dilated
  into real time, many principals in flight.  The sync network pays
  every transit sequentially; the async runtime overlaps them (and
  batch-prefetches signature checks across queued requests).  The gate
  is async throughput >= sync throughput on this arm.
* **scale** — one burst of 10k concurrent principals (1k in smoke)
  through the async engine, gated on ``peak_in_flight`` reaching the
  whole population with clean invariants and sane percentiles.

Run under pytest for the in-suite assertion, or as a script::

    PYTHONPATH=src python benchmarks/bench_c12_async_load.py \
        --json BENCH_async_load.json --smoke

The script exits non-zero when the wire-latency gate fails, the scale
arm cannot hold the full population in flight, or any arm ends with
invariant problems.
"""

import argparse
import sys

from repro.workloads.load import LoadConfig, run_load

SEED = 7

#: (name, scenario, mode, dilated) -> size knobs per profile.
FULL = {
    "echo_principals": 500,
    "pk_principals": 100,
    "pk_ops": 3,
    "scale_principals": 10_000,
}
SMOKE = {
    "echo_principals": 100,
    "pk_principals": 24,
    "pk_ops": 2,
    "scale_principals": 1_000,
}

#: The dilated arm's wire: 2 ms base + 1 ms jitter per hop, paid for
#: real (time_dilation=1.0).  Small enough for CI, large enough that
#: the sync mode's serialized transits dominate its wall clock.
WIRE = dict(time_dilation=1.0, base_latency=0.002, jitter=0.001)


def run_arm(arm: str, **kwargs) -> dict:
    config = LoadConfig(seed=SEED, **kwargs)
    report = run_load(config)
    return {
        "arm": arm,
        "mode": report.mode,
        "scenario": report.scenario,
        "principals": report.principals,
        "ops_ok": report.ops_ok,
        "ops_failed": report.ops_failed,
        "throughput": round(report.throughput, 1),
        "p50_ms": round(report.percentiles_ms["p50"], 2),
        "p95_ms": round(report.percentiles_ms["p95"], 2),
        "p99_ms": round(report.percentiles_ms["p99"], 2),
        "peak_in_flight": report.peak_in_flight,
        "messages": report.messages,
        "prefetched_checks": report.runtime.get("prefetched_checks", 0),
        "problems": list(report.problems),
    }


def run_arms(sizes: dict) -> dict:
    from conftest import report as table

    arms = [
        run_arm(
            "echo-zero-latency",
            scenario="echo",
            mode="sync",
            principals=sizes["echo_principals"],
            ops=2,
        ),
        run_arm(
            "echo-zero-latency",
            scenario="echo",
            mode="aio",
            principals=sizes["echo_principals"],
            ops=2,
            concurrency=64,
        ),
        run_arm(
            "pk-verify-wire",
            scenario="pk-verify",
            mode="sync",
            principals=sizes["pk_principals"],
            ops=sizes["pk_ops"],
            **WIRE,
        ),
        run_arm(
            "pk-verify-wire",
            scenario="pk-verify",
            mode="aio",
            principals=sizes["pk_principals"],
            ops=sizes["pk_ops"],
            concurrency=64,
            **WIRE,
        ),
        run_arm(
            "scale-burst",
            scenario="echo",
            mode="aio",
            principals=sizes["scale_principals"],
            ops=1,
            concurrency=256,
        ),
    ]
    table(
        "C12: load-generator throughput by delivery mode (seeded runs)",
        [
            (
                arm["arm"],
                arm["mode"],
                arm["principals"],
                f"{arm['throughput']:,.1f}",
                f"{arm['p50_ms']:.2f}",
                f"{arm['p95_ms']:.2f}",
                f"{arm['p99_ms']:.2f}",
                arm["peak_in_flight"],
                "none" if not arm["problems"] else "; ".join(arm["problems"]),
            )
            for arm in arms
        ],
        (
            "arm",
            "mode",
            "principals",
            "ops/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "peak",
            "problems",
        ),
    )
    pk_sync = next(
        a for a in arms if a["arm"] == "pk-verify-wire" and a["mode"] == "sync"
    )
    pk_aio = next(
        a for a in arms if a["arm"] == "pk-verify-wire" and a["mode"] == "aio"
    )
    scale = next(a for a in arms if a["arm"] == "scale-burst")
    gates = {
        "wire_latency_speedup": round(
            pk_aio["throughput"] / pk_sync["throughput"], 2
        )
        if pk_sync["throughput"]
        else 0.0,
        "wire_latency_gate": pk_aio["throughput"] >= pk_sync["throughput"],
        "scale_gate": scale["peak_in_flight"] >= scale["principals"],
        "clean": all(not arm["problems"] for arm in arms),
    }
    passed = (
        gates["wire_latency_gate"] and gates["scale_gate"] and gates["clean"]
    )
    return {
        "benchmark": "async_load",
        "seed": SEED,
        # Top-level scalar for trajectory.py's headline column.
        "speedup": gates["wire_latency_speedup"],
        "arms": arms,
        "gates": gates,
        "passed": passed,
    }


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------

def test_async_beats_sync_under_wire_latency(benchmark):
    sync = run_arm(
        "pk-verify-wire",
        scenario="pk-verify",
        mode="sync",
        principals=32,
        ops=2,
        **WIRE,
    )
    aio = run_arm(
        "pk-verify-wire",
        scenario="pk-verify",
        mode="aio",
        principals=32,
        ops=2,
        concurrency=32,
        **WIRE,
    )
    assert sync["problems"] == [] and aio["problems"] == []
    assert aio["ops_failed"] == 0
    # Overlapped transits beat serialized ones; the ~2x headroom here
    # keeps the in-suite gate far from scheduler noise.
    assert aio["throughput"] >= sync["throughput"]
    benchmark(lambda: None)


def test_scale_burst_holds_the_population_in_flight(benchmark):
    scale = run_arm(
        "scale-burst",
        scenario="echo",
        mode="aio",
        principals=500,
        ops=1,
        concurrency=128,
    )
    assert scale["problems"] == []
    assert scale["peak_in_flight"] == 500
    benchmark(lambda: None)


# ---------------------------------------------------------------------------
# script mode (CI writes BENCH_async_load.json from here)
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", default="", help="write results to this JSON file"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smaller populations (CI): 1k scale burst instead of 10k",
    )
    args = parser.parse_args(argv)
    sizes = SMOKE if args.smoke else FULL
    from conftest import bench_payload, write_bench_json

    payload = run_arms(sizes)
    write_bench_json(
        args.json,
        bench_payload(
            name="async_load",
            config=dict(sizes, **WIRE),
            metrics=payload,
            passed=payload["passed"],
        ),
    )
    if not payload["passed"]:
        print(
            "FAIL: async delivery lost to the sync baseline under wire "
            "latency, the scale burst fell short, or an invariant broke",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
