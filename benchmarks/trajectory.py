"""Aggregate ``BENCH_*.json`` artifacts into one trajectory table.

Every script-mode benchmark writes the common envelope from
:func:`conftest.bench_payload` — ``{schema, name, config, metrics,
passed, run_at}`` — so CI artifacts from different benchmarks (and from
different runs, when collected into one directory) can be summarized
without per-benchmark parsing::

    python benchmarks/trajectory.py BENCH_*.json
    python benchmarks/trajectory.py --dir artifacts/ --json trajectory.json

Pre-envelope artifacts (a bare metrics payload with a ``benchmark`` key)
are accepted and normalized, so the aggregator still works on history
downloaded from runs before the schema existed.  Exit status is non-zero
when any aggregated result failed its own gate.
"""

import argparse
import glob
import json
import os
import sys

#: Scalar metrics worth surfacing in the one-line summary, in preference
#: order; the first few present in a result are shown.
_HEADLINE_KEYS = (
    "overhead",
    "speedup",
    "goodput",
    "postings_per_sec",
    "messages_attributed_per_run",
    "spans_per_run",
)


def normalize(raw, source=""):
    """Coerce one loaded JSON document to the common envelope shape."""
    if isinstance(raw, dict) and "metrics" in raw and "name" in raw:
        result = dict(raw)
    elif isinstance(raw, dict):
        # Pre-schema artifact: the whole document is the metrics payload.
        result = {
            "schema": 0,
            "name": str(raw.get("benchmark", source or "unknown")),
            "config": {},
            "metrics": raw,
            "passed": bool(raw.get("passed", True)),
            "run_at": "",
        }
    else:
        raise ValueError(f"{source or 'artifact'}: not a JSON object")
    result["source"] = source
    return result


def headline(metrics):
    """A compact 'key=value' string of the most telling scalar metrics."""
    parts = []
    for key in _HEADLINE_KEYS:
        value = metrics.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            parts.append(f"{key}={value}")
        if len(parts) >= 2:
            break
    return " ".join(parts)


def load_results(paths):
    results = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        results.append(normalize(raw, source=os.path.basename(path)))
    return sorted(results, key=lambda r: (r["name"], r.get("run_at", "")))


def render(results) -> str:
    columns = ("benchmark", "run at", "verdict", "headline", "source")
    rows = [
        (
            result["name"],
            result.get("run_at") or "-",
            "pass" if result["passed"] else "FAIL",
            headline(result.get("metrics", {})) or "-",
            result.get("source", "-"),
        )
        for result in results
    ]
    widths = [
        max(len(column), *(len(str(row[i])) for row in rows))
        if rows
        else len(column)
        for i, column in enumerate(columns)
    ]
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    failed = sum(1 for result in results if not result["passed"])
    lines.append("")
    lines.append(
        f"{len(results)} result(s), {failed} failed"
        if results
        else "no BENCH_*.json artifacts found"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths", nargs="*", help="BENCH_*.json files to aggregate"
    )
    parser.add_argument(
        "--dir",
        default="",
        help="also aggregate every BENCH_*.json under this directory",
    )
    parser.add_argument(
        "--json", default="", help="write the merged results to this file"
    )
    args = parser.parse_args(argv)
    paths = list(args.paths)
    if args.dir:
        paths.extend(
            sorted(
                glob.glob(
                    os.path.join(args.dir, "**", "BENCH_*.json"),
                    recursive=True,
                )
            )
        )
    if not paths:
        paths = sorted(glob.glob("BENCH_*.json"))
    results = load_results(paths)
    print(render(results))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {"schema": 1, "results": results},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
    return 1 if any(not result["passed"] for result in results) else 0


if __name__ == "__main__":
    sys.exit(main())
