"""C3 — §4/§5: check-based accounting vs Amoeba's prepay bank.

"In Amoeba, a client must contact the bank and transfer funds into the
server's account before it contacts the server."  The consequence: every
new client/server pairing pays up-front bank round-trips on the client's
critical path, while a check rides along with the request and clears
afterwards.  We drive the same Zipf payment workload through both designs.
"""

import pytest

from conftest import fresh_realm, report
from repro.baselines import AmoebaBank, AmoebaClient, AmoebaServer
from repro.crypto.rng import Rng
from repro.workloads import payment_workload

N_PAYMENTS = 15
N_CLIENTS = 4
N_MERCHANTS = 3


def checks_world():
    realm = fresh_realm(b"c3-checks")
    bank = realm.accounting_server("bank")
    clients = []
    for i in range(N_CLIENTS):
        user = realm.user(f"client{i}")
        bank.create_account(f"client{i}", user.principal, {"credits": 10**6})
        clients.append(user)
    merchants = []
    for i in range(N_MERCHANTS):
        user = realm.user(f"merchant{i}")
        bank.create_account(f"merchant{i}", user.principal)
        merchants.append(user)
    return realm, bank, clients, merchants


def amoeba_world():
    realm = fresh_realm(b"c3-amoeba")
    bank = AmoebaBank(realm.principal("amoeba-bank"), realm.network, realm.clock)
    clients = []
    for i in range(N_CLIENTS):
        user = realm.user(f"client{i}")
        bank.create_account(f"client{i}", user.principal, {"credits": 10**6})
        clients.append(
            AmoebaClient(
                user.principal, realm.network, bank.principal, f"client{i}"
            )
        )
    servers = []
    for i in range(N_MERCHANTS):
        owner = realm.user(f"merchant{i}")
        server = AmoebaServer(
            realm.principal(f"amoeba-srv{i}"), realm.network, realm.clock,
            bank.principal, f"srv{i}", "credits", price=1,
        )
        bank.create_account(f"srv{i}", server.principal)
        servers.append(server)
    return realm, bank, clients, servers


def workload():
    return payment_workload(
        N_PAYMENTS, N_CLIENTS, N_MERCHANTS, max_amount=10,
        rng=Rng(seed=b"c3-workload"),
    )


def test_checks_payment_workload(benchmark):
    realm, bank, clients, merchants = checks_world()
    payments = workload()

    def run():
        for payment in payments:
            payor = clients[payment.payor]
            payee = merchants[payment.payee]
            check = payor.accounting_client(bank.principal).write_check(
                f"client{payment.payor}", payee.principal, "credits",
                payment.amount,
            )
            payee.accounting_client(bank.principal).deposit_check(
                check, f"merchant{payment.payee}"
            )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_amoeba_payment_workload(benchmark):
    realm, bank, clients, servers = amoeba_world()
    payments = workload()

    def run():
        for payment in payments:
            client = clients[payment.payor]
            server = servers[payment.payee]
            # Prepay exactly the price, then consume it: the paper's
            # "transfer funds into the server's account before it
            # contacts the server".
            client.prepay(server, "credits", payment.amount)
            for _ in range(payment.amount):
                client.use(server)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_c3_protocol_shape_report(benchmark):
    rows = []

    realm, bank, clients, merchants = checks_world()
    payments = workload()
    # Warm tickets first so the comparison is steady-state.
    payor = clients[0]
    payee = merchants[0]
    check = payor.accounting_client(bank.principal).write_check(
        "client0", payee.principal, "credits", 1
    )
    payee.accounting_client(bank.principal).deposit_check(check, "merchant0")
    before = realm.network.metrics.snapshot()
    for payment in payments:
        p = clients[payment.payor]
        m = merchants[payment.payee]
        check = p.accounting_client(bank.principal).write_check(
            f"client{payment.payor}", m.principal, "credits", payment.amount
        )
        m.accounting_client(bank.principal).deposit_check(
            check, f"merchant{payment.payee}"
        )
    delta = realm.network.metrics.delta_since(before)
    rows.append(
        (
            "restricted-proxy checks",
            round(delta.messages / N_PAYMENTS, 1),
            "0 (check travels with payee)",
        )
    )

    realm, bank, clients, servers = amoeba_world()
    before = realm.network.metrics.snapshot()
    payor_msgs = 0
    for payment in payments:
        client = clients[payment.payor]
        server = servers[payment.payee]
        b = realm.network.metrics.snapshot()
        client.prepay(server, "credits", payment.amount)
        payor_msgs += realm.network.metrics.delta_since(b).messages
        for _ in range(payment.amount):
            client.use(server)
    delta = realm.network.metrics.delta_since(before)
    rows.append(
        (
            "amoeba prepay",
            round(delta.messages / N_PAYMENTS, 1),
            f"{round(payor_msgs / N_PAYMENTS, 1)} up-front per payment",
        )
    )
    report(
        "C3 / §5 vs Amoeba: messages per payment (Zipf workload, warm)",
        rows, ("design", "total msgs/payment", "payor critical-path msgs"),
    )
    benchmark(lambda: None)


def test_c3_multi_currency_report(benchmark):
    """Both designs support multiple currencies; ours also mixes them in
    one account and one check workload."""
    realm = fresh_realm(b"c3-multi")
    bank = realm.accounting_server("bank")
    alice = realm.user("alice")
    bob = realm.user("bob")
    bank.create_account(
        "alice", alice.principal,
        {"dollars": 100, "pages": 40, "cpu-seconds": 1000},
    )
    bank.create_account("bob", bob.principal)
    for currency, amount in (("dollars", 5), ("pages", 7), ("cpu-seconds", 90)):
        check = alice.accounting_client(bank.principal).write_check(
            "alice", bob.principal, currency, amount
        )
        bob.accounting_client(bank.principal).deposit_check(check, "bob")
    balances = bob.accounting_client(bank.principal).balance("bob")
    report(
        "C3: multi-currency accounting (§4)",
        sorted(balances.items()),
        ("currency", "bob's balance after three checks"),
    )
    assert balances == {"dollars": 5, "pages": 7, "cpu-seconds": 90}
    benchmark(lambda: None)
