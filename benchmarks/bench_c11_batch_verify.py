"""C11 — cold-path chain verification: batched + precomputed vs per-signature.

PR 2's caches made *warm* chains cheap; this benchmark measures the cold
path they never touch — every presentation fully re-verified (all caches
disabled) — under three arms:

* **baseline** — per-signature verification with fixed-base precompute
  disabled: the pre-batching cost model (square-and-multiply ``pow()``
  per exponentiation, one ``verify()`` per link);
* **tables** — per-signature verification with the fixed-base generator
  tables enabled;
* **batched** — the full fast path: generator + registered-identity-key
  tables plus the one-shot multi-scalar batch check per chain.

Two cascade shapes at depths 2/4/8:

* **delegate** chains (Fig. 4 with an audit trail) — every link signed
  by a *registered* identity key, the CERN-style mediated-delegation
  workload where per-verifier key tables apply to every link.  This is
  the gated workload: batched must beat baseline by ``--min-speedup``
  (2.0 by default) at depth 8.
* **bearer** chains — links signed by one-shot embedded proxy keys that
  can never earn a precompute table, so only the generator-side work
  accelerates.  Reported for honesty, not gated.

Run under pytest for the timing fixtures, or as a script::

    PYTHONPATH=src python benchmarks/bench_c11_batch_verify.py \
        --json BENCH_batch_verify.json --smoke
"""

import argparse
import dataclasses
import sys
import time

import pytest

from conftest import bench_payload, report, write_bench_json
from repro.clock import SimulatedClock
from repro.core.evaluation import RequestContext
from repro.core.presentation import present
from repro.core.proxy import cascade, delegate_cascade, grant_public
from repro.core.restrictions import Grantee
from repro.core.vcache import DISABLED_CONFIG, override as vcache_override
from repro.core.verification import ProxyVerifier, PublicKeyCrypto
from repro.crypto import schnorr
from repro.crypto.dh import TEST_GROUP
from repro.crypto.rng import Rng
from repro.crypto.signature import SchnorrSigner
from repro.encoding.identifiers import PrincipalId

START = 1_000_000.0
ALICE = PrincipalId("alice")
CAROL = PrincipalId("carol")
SERVER = PrincipalId("server")
DEPTHS = (2, 4, 8)

SEQUENTIAL = dataclasses.replace(DISABLED_CONFIG, batch_verify=False)
BATCHED = DISABLED_CONFIG  # caches off, batch_verify on

ARMS = (
    ("baseline", SEQUENTIAL, False),
    ("tables", SEQUENTIAL, True),
    ("batched", BATCHED, True),
)


def build_bearer_chain(depth):
    """Fig. 4 bearer cascade: links signed by one-shot proxy keys."""
    rng = Rng(seed=b"c11-bearer-%d" % depth)
    clock = SimulatedClock(START)
    identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
    proxy = grant_public(
        ALICE, SchnorrSigner(identity), (), START, START + 3600, rng,
        group=TEST_GROUP,
    )
    for _ in range(depth - 1):
        proxy = cascade(proxy, (), START, START + 3600, rng)
    crypto = PublicKeyCrypto(
        directory={ALICE: SchnorrSigner(identity).verifier()}
    )
    return clock, crypto, proxy, None


def build_delegate_chain(depth):
    """Audit-trail cascade: every link signed by a registered identity."""
    rng = Rng(seed=b"c11-delegate-%d" % depth)
    clock = SimulatedClock(START)
    directory = {}
    identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
    directory[ALICE] = SchnorrSigner(identity).verifier()
    relays = [PrincipalId(f"relay-{i}") for i in range(depth - 1)]
    first = relays[0] if relays else CAROL
    proxy = grant_public(
        ALICE, SchnorrSigner(identity), (Grantee(principals=(first,)),),
        START, START + 3600, rng, group=TEST_GROUP,
    )
    for i, relay in enumerate(relays):
        relay_identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
        directory[relay] = SchnorrSigner(relay_identity).verifier()
        nxt = relays[i + 1] if i + 1 < len(relays) else CAROL
        proxy = delegate_cascade(
            proxy, relay, SchnorrSigner(relay_identity), nxt,
            (), START, START + 3600, rng=rng, group=TEST_GROUP,
        )
    return clock, PublicKeyCrypto(directory=directory), proxy, CAROL


WORKLOADS = (
    ("delegate", build_delegate_chain),
    ("bearer", build_bearer_chain),
)


def measure(builder, depth, config, precompute, iterations):
    """Cold-verify ``iterations`` fresh presentations of one chain.

    All verification caches are off, so every presentation re-verifies
    the whole chain; presentations are pre-signed so presenter cost is
    excluded from the timing.  Returns verifications per second.
    """
    clock, crypto, proxy, claimant = builder(depth)
    schnorr.clear_key_tables()
    with vcache_override(config):
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        presentations = [
            present(proxy, SERVER, clock.now(), "read", claimant=claimant)
            for _ in range(iterations + 1)
        ]
        context = RequestContext(
            server=SERVER, operation="read", claimant=claimant
        )
        previous = schnorr.set_precompute(precompute)
        try:
            # One warm-up pass so one-time costs (identity-key table
            # registration) land outside the steady-state timing, exactly
            # as they amortize across a long-lived verifier process.
            verifier.verify(presentations[0], context)
            start = time.perf_counter()
            for presented in presentations[1:]:
                verifier.verify(presented, context)
            elapsed = time.perf_counter() - start
        finally:
            schnorr.set_precompute(previous)
    return iterations / elapsed if elapsed > 0 else float("inf")


def run_comparison(iterations, min_speedup):
    """The full three-arm comparison; returns the JSON payload."""
    results = {}
    rows = []
    for workload, builder in WORKLOADS:
        per_depth = {}
        for depth in DEPTHS:
            arms = {
                name: measure(builder, depth, config, precompute, iterations)
                for name, config, precompute in ARMS
            }
            baseline = arms["baseline"]
            per_depth[str(depth)] = {
                "baseline_ops_per_sec": round(baseline, 2),
                "tables_ops_per_sec": round(arms["tables"], 2),
                "batched_ops_per_sec": round(arms["batched"], 2),
                "tables_speedup": round(arms["tables"] / baseline, 3),
                "batched_speedup": round(arms["batched"] / baseline, 3),
            }
            rows.append(
                (
                    workload,
                    str(depth),
                    f"{baseline:.1f}",
                    f"{arms['tables']:.1f}",
                    f"{arms['batched']:.1f}",
                    f"{per_depth[str(depth)]['batched_speedup']:.2f}x",
                )
            )
        results[workload] = per_depth
    report(
        "C11: cold-path cascade verification, per-signature vs batched",
        rows,
        ("workload", "depth", "baseline/s", "tables/s", "batched/s",
         "speedup"),
    )
    gate = results["delegate"]["8"]["batched_speedup"]
    return {
        "benchmark": "batch_verify",
        "workload": "cold-cascade-depths-2-4-8",
        "min_speedup": min_speedup,
        # The headline: batched delegate cascades at depth 8 vs the
        # per-signature, no-precompute baseline.
        "speedup": gate,
        "passed": gate >= min_speedup,
        "workloads": results,
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("batched", [True, False], ids=["batched", "sequential"])
def test_delegate_cascade_cold_verify(benchmark, batched):
    clock, crypto, proxy, claimant = build_delegate_chain(4)
    config = BATCHED if batched else SEQUENTIAL
    with vcache_override(config):
        verifier = ProxyVerifier(server=SERVER, crypto=crypto, clock=clock)
        context = RequestContext(
            server=SERVER, operation="read", claimant=claimant
        )

        def run():
            presented = present(
                proxy, SERVER, clock.now(), "read", claimant=claimant
            )
            return verifier.verify(presented, context)

        result = benchmark(run)
    assert result.chain_length == 4


def test_batched_faster_than_baseline(benchmark):
    """The acceptance claim, in-suite: a quick comparison run."""
    payload = run_comparison(iterations=8, min_speedup=1.0)
    assert payload["workloads"]["delegate"]["8"]["batched_speedup"] > 1.0
    benchmark(lambda: None)


# ---------------------------------------------------------------------------
# script mode (CI writes BENCH_batch_verify.json from here)
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", default="", help="write results to this JSON file"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small iteration count and a forgiving speedup floor (CI)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless batched delegate depth-8 verification is this "
        "many times faster than the per-signature baseline "
        "(default 2.0, or 1.5 with --smoke)",
    )
    args = parser.parse_args(argv)
    iterations = 6 if args.smoke else 25
    min_speedup = (
        args.min_speedup
        if args.min_speedup is not None
        else (1.5 if args.smoke else 2.0)
    )
    payload = run_comparison(iterations, min_speedup)
    write_bench_json(
        args.json,
        bench_payload(
            name="batch_verify",
            config={
                "iterations": iterations,
                "min_speedup": min_speedup,
                "depths": list(DEPTHS),
            },
            metrics=payload,
            passed=payload["passed"],
        ),
    )
    if not payload["passed"]:
        print(
            f"FAIL: batched delegate depth-8 speedup "
            f"{payload['speedup']} < {min_speedup}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
