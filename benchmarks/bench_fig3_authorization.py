"""F3 — Figure 3: the authorization-server protocol.

Regenerates the message trace of Fig. 3 (message 0: name-server lookup;
message 1: authenticated authorization request; message 2: proxy + sealed
proxy key; message 3: presentation to the end-server) and measures:

* the protocol's message count matches the figure;
* amortization: one authorization covers many end-server requests;
* cost scaling with the number of clients.
"""

import pytest

from conftest import fresh_realm, report
from repro.acl import AclEntry, SinglePrincipal
from repro.services.nameserver import lookup


def build_world(n_clients=1):
    realm = fresh_realm(b"f3-%d" % n_clients)
    fs = realm.file_server("files")
    fs.put("doc", b"data")
    authz = realm.authorization_server("authz")
    fs.acl.add(AclEntry(subject=SinglePrincipal(authz.principal)))
    ns = realm.name_server()
    ns.publish(fs.principal, authorization_server=authz.principal)
    clients = []
    for i in range(n_clients):
        user = realm.user(f"client{i}")
        authz.database_for(fs.principal).add(
            AclEntry(
                subject=SinglePrincipal(user.principal), operations=("read",)
            )
        )
        clients.append(user)
    return realm, fs, authz, ns, clients


def test_authorize_latency(benchmark):
    """Messages 1-2: obtaining an authorization proxy (warm tickets)."""
    realm, fs, authz, ns, (user,) = build_world()
    azc = user.authorization_client(authz.principal)
    azc.service.establish_session()
    user.kerberos.get_ticket(authz.principal)  # warm

    def run():
        return azc.authorize(fs.principal, ("read",))

    proxy = benchmark(run)
    assert proxy.grantor == authz.principal


def test_present_latency(benchmark):
    """Message 3: presenting the proxy to the end-server."""
    realm, fs, authz, ns, (user,) = build_world()
    proxy = user.authorization_client(authz.principal).authorize(
        fs.principal, ("read",)
    )
    client = user.client_for(fs.principal)
    client.establish_session()

    def run():
        return client.request("read", "doc", proxy=proxy)

    assert benchmark(run)["data"] == b"data"


@pytest.mark.parametrize("n_clients", [1, 8, 32])
def test_many_clients_throughput(benchmark, n_clients):
    """Fig. 3 at scale: every client authorizes then reads."""
    realm, fs, authz, ns, clients = build_world(n_clients)

    def run():
        for user in clients:
            proxy = user.authorization_client(authz.principal).authorize(
                fs.principal, ("read",)
            )
            user.client_for(fs.principal).request(
                "read", "doc", proxy=proxy
            )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_fig3_message_trace_report(benchmark):
    """The actual message trace, in the figure's terms."""
    realm, fs, authz, ns, (user,) = build_world()

    # §2: "messages required by the underlying authentication protocol
    # (e.g., for key distribution) are omitted for clarity" — warm all
    # Kerberos tickets (user's and R's) before tracing the figure.
    azc = user.authorization_client(authz.principal)
    azc.service.establish_session()
    azc.authorize(fs.principal, ("read",))
    client = user.client_for(fs.principal)
    client.establish_session()

    rows = []
    before = realm.network.metrics.snapshot()
    lookup(realm.network, user.principal, ns.principal, fs.principal)
    rows.append(
        ("0 (dashed): a-priori knowledge via name server",
         realm.network.metrics.delta_since(before).messages)
    )

    before = realm.network.metrics.snapshot()
    proxy = azc.authorize(fs.principal, ("read",))
    delta = realm.network.metrics.delta_since(before)
    rows.append(
        ("1+2: authenticated request -> [op X only]_R, {Kproxy}Ksession",
         delta.messages)
    )

    before = realm.network.metrics.snapshot()
    client.request("read", "doc", proxy=proxy)
    delta = realm.network.metrics.delta_since(before)
    rows.append(
        ("3: present proxy to S, authenticate with Kproxy", delta.messages)
    )
    report(
        "F3 / Fig.3: authorization protocol message trace",
        rows, ("protocol step", "messages"),
    )
    # One request/response pair per figure arrow.
    assert [count for _, count in rows] == [2, 2, 2]

    # Amortization: the proxy keeps working without touching R again.
    before = realm.network.metrics.snapshot()
    for _ in range(10):
        client.request("read", "doc", proxy=proxy)
    delta = realm.network.metrics.delta_since(before)
    assert delta.messages_to(authz.principal) == 0
    report(
        "F3: amortization over 10 further requests",
        [
            ("messages to authorization server R", delta.messages_to(authz.principal)),
            ("messages to end-server S", delta.messages_to(fs.principal)),
        ],
        ("where", "count"),
    )
    benchmark(lambda: None)
