"""C5 — §5: on-the-fly delegation — restricted proxies vs DSSA roles.

"The creation of a new role is cumbersome when delegating on the fly or
when granting access to individual objects."  In the DSSA, each distinct
rights subset needs a fresh principal (keypair) plus a role certificate;
with proxies, the restriction rides in the grant itself.  We delegate R
random object subsets and compare total grant cost and artifact counts.
"""

import pytest

from conftest import report
from repro.baselines import DssaPrincipal, DssaVerifier
from repro.clock import SimulatedClock
from repro.core.evaluation import RequestContext
from repro.core.presentation import present
from repro.core.proxy import grant_conventional, grant_public
from repro.core.restrictions import Authorized, AuthorizedEntry, Grantee
from repro.core.verification import ProxyVerifier, SharedKeyCrypto
from repro.crypto.dh import TEST_GROUP
from repro.crypto import schnorr
from repro.crypto.keys import SymmetricKey
from repro.crypto.rng import Rng
from repro.crypto.signature import SchnorrSigner
from repro.encoding.identifiers import PrincipalId
from repro.workloads import delegation_subsets

ALICE = PrincipalId("alice")
BOB = PrincipalId("bob")
START = 1_000_000.0
N_DELEGATIONS = 20


def subsets():
    return delegation_subsets(
        N_DELEGATIONS, n_objects=100, subset_size=3, rng=Rng(seed=b"c5")
    )


def test_proxy_on_the_fly_delegation(benchmark):
    """Proxy grant per subset (conventional crypto, typical deployment)."""
    rng = Rng(seed=b"c5-proxy")
    shared = SymmetricKey.generate(rng=rng)
    work = subsets()

    def run():
        for subset in work:
            grant_conventional(
                ALICE, shared,
                (
                    Grantee(principals=(BOB,)),
                    Authorized(
                        entries=tuple(
                            AuthorizedEntry(obj, ("read",)) for obj in subset
                        )
                    ),
                ),
                START, START + 600, rng,
            )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_proxy_public_key_delegation(benchmark):
    """Same, public-key flavour (closest to the DSSA's setting)."""
    rng = Rng(seed=b"c5-proxy-pk")
    identity = schnorr.generate_keypair(TEST_GROUP, rng=rng)
    signer = SchnorrSigner(identity)
    work = subsets()

    def run():
        for subset in work:
            grant_public(
                ALICE, signer,
                (
                    Grantee(principals=(BOB,)),
                    Authorized(
                        entries=tuple(
                            AuthorizedEntry(obj, ("read",)) for obj in subset
                        )
                    ),
                ),
                START, START + 600, rng, TEST_GROUP,
            )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_dssa_on_the_fly_delegation(benchmark):
    """DSSA: a fresh role (keypair + certificate) per subset, then the
    delegation certificate."""
    rng = Rng(seed=b"c5-dssa")
    user = DssaPrincipal(ALICE, rng=rng)
    work = subsets()

    def run():
        for subset in work:
            role = user.create_role(
                tuple(("read", obj) for obj in subset), expires_at=START + 600
            )
            user.delegate(role, BOB, expires_at=START + 600)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_c5_artifact_report(benchmark):
    """Artifacts per delegation and the structural claim about roles."""
    rng = Rng(seed=b"c5-artifacts")
    user = DssaPrincipal(ALICE, rng=rng)
    work = subsets()
    for subset in work:
        role = user.create_role(
            tuple(("read", obj) for obj in subset), expires_at=START + 600
        )
        user.delegate(role, BOB, expires_at=START + 600)
    rows = [
        (
            "restricted proxies",
            "1 certificate (restrictions inline)",
            "0",
            "yes: any restriction, any time (§2)",
        ),
        (
            "DSSA roles",
            "1 role cert + 1 delegation cert",
            str(len(user.roles)),
            "no: role set is fixed at creation (§5)",
        ),
    ]
    report(
        f"C5 / §5 vs DSSA: {N_DELEGATIONS} on-the-fly delegations",
        rows,
        ("design", "artifacts per delegation", "new principals created",
         "restriction on the fly?"),
    )
    assert len(user.roles) == N_DELEGATIONS
    benchmark(lambda: None)


def test_c5_roles_cannot_build_authorization_server(benchmark):
    """'Roles can not be used to implement the authorization server of
    Section 3.2': a role certificate asserts the *user's* rights under a
    fixed list; the §3.2 server must let a client act as *the server* for
    rights computed per request.  With proxies the authorization server is
    ~30 lines on top of the core; with roles the construct does not type-
    check — the delegation is always rooted at the resource owner, not the
    authorization authority.  We demonstrate the proxy construction works
    rooted at a third-party authority."""
    rng = Rng(seed=b"c5-authz")
    shared = SymmetricKey.generate(rng=rng)
    authority = PrincipalId("authority")
    clock = SimulatedClock(START)
    verifier = ProxyVerifier(
        server=PrincipalId("server"),
        crypto=SharedKeyCrypto({authority: shared}),
        clock=clock,
    )
    proxy = grant_conventional(
        authority, shared,
        (Authorized(entries=(AuthorizedEntry("obj/1", ("read",)),)),),
        START, START + 600, rng,
    )
    result = verifier.verify(
        present(proxy, PrincipalId("server"), clock.now(), "read", target="obj/1"),
        RequestContext(
            server=PrincipalId("server"), operation="read", target="obj/1"
        ),
    )
    assert result.grantor == authority  # the client acts as the authority
    benchmark(lambda: None)
