"""Durability — WAL overhead and crash-restart recovery parity.

Two measurements per run:

* **WAL overhead** — the same seeded transfer workload against one
  accounting server with and without a :class:`DurabilityStore`, timed
  wall-clock per operation.  The claim under test is that appending a
  framed record per committed posting costs microseconds, not a second
  data path.
* **Crash-restart parity** — chaos campaigns (Fig. 4 file cascade,
  Fig. 5 check clearing) that kill a server mid-campaign and rebuild it
  from WAL+snapshot.  The recovered arm must match the fault-free
  baseline unit-for-unit with empty ``recovery_problems`` — the
  recovery-is-correct gate, run in CI with real numbers attached.

Run under pytest for the in-suite assertion, or as a script::

    PYTHONPATH=src:benchmarks python benchmarks/bench_durability.py \
        --json BENCH_durability.json --smoke

The script exits non-zero when any crash-restart arm loses parity or
reports recovery problems.
"""

import argparse
import shutil
import sys
import tempfile
import time

from repro.durability import DurabilityStore
from repro.resil.chaos import CampaignSpec, run_campaign
from repro.testbed import Realm

SEED = 7

#: (figure, server to kill, unit tick) arms for the recovery gate.
FULL_ARMS = (
    ("fig4", "files", 5),
    ("fig5", "bank-payor", 3),
    ("fig5", "bank-payee", 7),
)
SMOKE_ARMS = (("fig4", "files", 3), ("fig5", "bank-payor", 3))


def time_transfers(transfers: int, durable: bool, data_dir) -> dict:
    """Wall-clock per-transfer cost with the WAL on or off."""
    realm = Realm(seed=b"bench-durab")
    alice = realm.user("alice")
    bob = realm.user("bob")
    kwargs = {}
    store = None
    if durable:
        store = DurabilityStore(data_dir)
        kwargs["durability"] = store
    bank = realm.accounting_server("bank", **kwargs)
    bank.create_account(
        "alice", alice.principal, {"dollars": transfers + 1}
    )
    bank.create_account("bob", bob.principal)
    client = alice.accounting_client(bank.principal)
    start = time.perf_counter()
    for _ in range(transfers):
        client.transfer("alice", "bob", "dollars", 1)
    elapsed = time.perf_counter() - start
    return {
        "durable": durable,
        "transfers": transfers,
        "per_op_us": round(elapsed / transfers * 1e6, 1),
        "wal_appends": store.appends if store is not None else 0,
    }


def run_recovery_arm(figure: str, server: str, tick: int, units: int) -> dict:
    report = run_campaign(
        CampaignSpec(
            figure=figure,
            seed=SEED,
            units=units,
            crash_restart=(server, tick),
        )
    )
    return {
        "figure": figure,
        "killed": server,
        "tick": tick,
        "units": report.spec.units,
        "parity": report.parity,
        "recovery_ok": not report.recovery_problems,
        "recovery_problems": report.recovery_problems,
        "wal_replayed": report.extras.get("wal records replayed", 0),
        "finale_matches": report.finale == report.baseline_finale,
        "sim_seconds": round(report.sim_seconds, 3),
    }


def run_suite(arms, units: int, transfers: int) -> dict:
    from conftest import report as table

    scratch = tempfile.mkdtemp(prefix="bench-durab-")
    try:
        baseline = time_transfers(transfers, False, None)
        durable = time_transfers(transfers, True, scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    overhead = durable["per_op_us"] - baseline["per_op_us"]
    recovery = [
        run_recovery_arm(figure, server, tick, units)
        for figure, server, tick in arms
    ]
    table(
        "Durability: WAL overhead and crash-restart recovery",
        [
            (
                f"{arm['figure']} kill {arm['killed']}@{arm['tick']}",
                arm["wal_replayed"],
                "yes" if arm["parity"] else "NO",
                "ok" if arm["recovery_ok"] else "PROBLEMS",
            )
            for arm in recovery
        ],
        ("arm", "wal replayed", "parity", "recovery"),
    )
    print(
        f"  per-transfer: {baseline['per_op_us']}us bare, "
        f"{durable['per_op_us']}us with WAL "
        f"({overhead:+.1f}us, {durable['wal_appends']} appends)"
    )
    passed = all(
        arm["parity"] and arm["recovery_ok"] and arm["finale_matches"]
        for arm in recovery
    )
    return {
        "benchmark": "durability",
        "workload": "wal-overhead+crash-restart",
        "seed": SEED,
        "passed": passed,
        "overhead": {"baseline": baseline, "durable": durable},
        "recovery": recovery,
    }


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------

def test_crash_restart_recovers_with_parity(benchmark):
    arm = run_recovery_arm("fig5", "bank-payor", 3, units=8)
    assert arm["parity"]
    assert arm["recovery_ok"], arm["recovery_problems"]
    assert arm["finale_matches"]
    assert arm["wal_replayed"] > 0
    benchmark(lambda: None)


# ---------------------------------------------------------------------------
# script mode (CI writes BENCH_durability.json from here)
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", default="", help="write results to this JSON file"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer units, arms, and transfers (CI)",
    )
    parser.add_argument(
        "--units",
        type=int,
        default=None,
        help="units per campaign (default 20, or 10 with --smoke)",
    )
    args = parser.parse_args(argv)
    units = args.units if args.units is not None else (10 if args.smoke else 20)
    arms = SMOKE_ARMS if args.smoke else FULL_ARMS
    transfers = 50 if args.smoke else 200
    from conftest import bench_payload, write_bench_json

    payload = run_suite(arms, units, transfers)
    write_bench_json(
        args.json,
        bench_payload(
            name="durability_recovery",
            config={"units": units, "arms": [list(a) for a in arms]},
            metrics=payload,
            passed=payload["passed"],
        ),
    )
    if not payload["passed"]:
        print(
            "FAIL: a crash-restart arm lost parity or reported "
            "recovery problems",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
