"""C9 — resilience: goodput under message loss, with and without retries.

The chaos harness replays the Fig. 4 delegate-cascade workload on the
resilient fabric while the simulated network drops request legs at
0–30%.  Two arms per drop rate:

* **retries on** — the resilient channel's backoff/dedupe/breaker stack;
  the claim under test is that goodput stays at 100% (drops become
  latency, not losses) and outcomes match a fault-free baseline;
* **retries off** — the control arm, whose goodput decays roughly as
  the per-unit delivery probability, showing what the layer buys.

Run under pytest for the in-suite assertion, or as a script::

    PYTHONPATH=src python benchmarks/bench_c9_resilience.py \
        --json BENCH_resilience.json --smoke

The script exits non-zero when the resilient arm loses any unit at or
below the top drop rate, or diverges from the fault-free baseline.
"""

import argparse
import sys

from repro.resil.chaos import CampaignSpec, run_campaign

SEED = 7
FULL_RATES = (0.0, 0.1, 0.2, 0.3)
SMOKE_RATES = (0.0, 0.2)


def run_arm(drop_rate: float, retry: bool, units: int) -> dict:
    report = run_campaign(
        CampaignSpec(
            figure="fig4",
            seed=SEED,
            units=units,
            drop_rate=drop_rate,
            retry=retry,
        )
    )
    recovered = report.spec.units - report.unrecoverable
    return {
        "drop_rate": drop_rate,
        "retry": retry,
        "units": report.spec.units,
        "recovered": recovered,
        "goodput": round(recovered / report.spec.units, 4),
        "parity": report.parity,
        "sends": report.stats["sends"],
        "retries": report.stats["retries"],
        "dedupe_hits": report.dedupe_hits,
        "sim_seconds": round(report.sim_seconds, 3),
    }


def run_sweep(rates, units: int) -> dict:
    """Goodput vs drop rate for both arms; returns the JSON payload."""
    from conftest import report as table

    arms = []
    rows = []
    for rate in rates:
        with_retries = run_arm(rate, retry=True, units=units)
        without = run_arm(rate, retry=False, units=units)
        arms.extend([with_retries, without])
        rows.append(
            (
                f"{rate:.0%}",
                f"{without['goodput']:.0%}",
                f"{with_retries['goodput']:.0%}",
                with_retries["retries"],
                "yes" if with_retries["parity"] else "NO",
            )
        )
    table(
        "C9: Fig.4 cascade goodput vs request-drop rate (seeded campaigns)",
        rows,
        (
            "drop rate",
            "goodput (no retry)",
            "goodput (retries)",
            "retries spent",
            "parity",
        ),
    )
    resilient = [arm for arm in arms if arm["retry"]]
    passed = all(
        arm["goodput"] == 1.0 and arm["parity"] for arm in resilient
    )
    return {
        "benchmark": "resilience",
        "workload": "fig4-cascade-chaos",
        "seed": SEED,
        "units": units,
        "passed": passed,
        "arms": arms,
    }


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------

def test_retries_hold_goodput_at_twenty_percent_loss(benchmark):
    resilient = run_arm(0.2, retry=True, units=8)
    control = run_arm(0.2, retry=False, units=8)
    assert resilient["goodput"] == 1.0
    assert resilient["parity"]
    assert control["goodput"] < 1.0
    benchmark(lambda: None)


# ---------------------------------------------------------------------------
# script mode (CI writes BENCH_resilience.json from here)
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", default="", help="write results to this JSON file"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer units and drop rates (CI)",
    )
    parser.add_argument(
        "--units",
        type=int,
        default=None,
        help="units per campaign (default 25, or 8 with --smoke)",
    )
    args = parser.parse_args(argv)
    units = args.units if args.units is not None else (8 if args.smoke else 25)
    rates = SMOKE_RATES if args.smoke else FULL_RATES
    from conftest import bench_payload, write_bench_json

    payload = run_sweep(rates, units)
    write_bench_json(
        args.json,
        bench_payload(
            name="resilience_goodput",
            config={"units": units, "drop_rates": list(rates)},
            metrics=payload,
            passed=payload["passed"],
        ),
    )
    if not payload["passed"]:
        print(
            "FAIL: the resilient arm lost work or diverged from the "
            "fault-free baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
