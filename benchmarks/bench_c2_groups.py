"""C2 — §3.3/§5: group proxies vs Grapevine-style online lookup.

"With the distributed authorization and group services supported by
restricted proxies, the authorization decision can be delegated to a remote
server" — and, unlike Grapevine/YP, the *verification* does not require
contacting that server per request.  We measure requests-per-lookup for
both designs across request counts and group sizes.
"""

import pytest

from conftest import fresh_realm, report
from repro.acl import AclEntry, GroupSubject
from repro.baselines import GrapevineEndServer, GrapevineRegistry
from repro.net.message import raise_if_error

N_REQUESTS = 20


def proxy_world(group_size):
    realm = fresh_realm(b"c2-proxy-%d" % group_size)
    gs = realm.group_server("groups")
    members = [realm.user(f"member{i}") for i in range(group_size)]
    staff = gs.create_group("staff", tuple(m.principal for m in members))
    fs = realm.file_server("files")
    fs.put("doc", b"data")
    fs.acl.add(AclEntry(subject=GroupSubject(staff), operations=("read",)))
    return realm, gs, fs, members[0]


def grapevine_world(group_size):
    realm = fresh_realm(b"c2-gv-%d" % group_size)
    registry = GrapevineRegistry(
        realm.principal("registry"), realm.network, realm.clock
    )
    members = [realm.user(f"member{i}") for i in range(group_size)]
    registry.create_group("staff", tuple(m.principal for m in members))
    end = GrapevineEndServer(
        realm.principal("gv-end"), realm.network, realm.clock,
        registry.principal, "staff",
    )
    end.register_operation("read", lambda who, p: {"data": b"data"})
    return realm, registry, end, members[0]


@pytest.mark.parametrize("group_size", [10, 100, 1000])
def test_group_proxy_requests(benchmark, group_size):
    realm, gs, fs, member = proxy_world(group_size)
    gid, gproxy = member.group_client(gs.principal).get_group_proxy(
        "staff", fs.principal
    )
    client = member.client_for(fs.principal)
    client.establish_session()

    def run():
        for _ in range(N_REQUESTS):
            client.request("read", "doc", group_proxies=[(gid, gproxy)])

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("group_size", [10, 100, 1000])
def test_grapevine_requests(benchmark, group_size):
    realm, registry, end, member = grapevine_world(group_size)

    def run():
        for _ in range(N_REQUESTS):
            raise_if_error(
                realm.network.send(
                    member.principal, end.principal, "request",
                    {"operation": "read"},
                )
            )

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_c2_message_report(benchmark):
    rows = []
    for n in (1, 10, 50):
        realm, gs, fs, member = proxy_world(10)
        gid, gproxy = member.group_client(gs.principal).get_group_proxy(
            "staff", fs.principal
        )
        client = member.client_for(fs.principal)
        client.establish_session()
        before = realm.network.metrics.snapshot()
        for _ in range(n):
            client.request("read", "doc", group_proxies=[(gid, gproxy)])
        proxy_group_msgs = realm.network.metrics.delta_since(
            before
        ).messages_to(gs.principal)

        realm, registry, end, member = grapevine_world(10)
        before = realm.network.metrics.snapshot()
        for _ in range(n):
            realm.network.send(
                member.principal, end.principal, "request",
                {"operation": "read"},
            )
        gv_registry_msgs = realm.network.metrics.delta_since(
            before
        ).messages_to(registry.principal)
        rows.append((n, proxy_group_msgs, gv_registry_msgs))
    report(
        "C2 / §3.3 vs Grapevine: group-authority contacts per N requests",
        rows,
        ("requests", "proxy: group-server msgs", "grapevine: registry msgs"),
    )
    # Proxies: zero per request after the one-time fetch; Grapevine: one per
    # request.
    assert all(row[1] == 0 and row[2] == row[0] for row in rows)
    benchmark(lambda: None)


def test_c2_revocation_tradeoff_report(benchmark):
    """The flip side the paper accepts: proxies revoke at expiry, online
    lookup revokes immediately."""
    realm, gs, fs, member = proxy_world(10)
    gid, gproxy = member.group_client(gs.principal).get_group_proxy(
        "staff", fs.principal
    )
    client = member.client_for(fs.principal)
    client.establish_session()
    gs.remove_member("staff", member.principal)
    # The already-issued proxy still works until it expires...
    still_works = bool(
        client.request("read", "doc", group_proxies=[(gid, gproxy)])
    )
    # ...but no new proxy can be fetched.
    from repro.errors import AuthorizationDenied

    try:
        member.group_client(gs.principal).get_group_proxy(
            "staff", fs.principal
        )
        refetch = "allowed (bug)"
    except AuthorizationDenied:
        refetch = "denied"
    report(
        "C2: revocation window trade-off",
        [
            ("outstanding proxy after removal",
             "valid until expiry" if still_works else "dead"),
            ("new proxy after removal", refetch),
        ],
        ("event", "behaviour"),
    )
    assert still_works and refetch == "denied"
    benchmark(lambda: None)
