"""Setup shim.

Configuration lives in pyproject.toml; this file exists so the package can
be installed editable (``pip install -e .``) in offline environments whose
pip/setuptools cannot build PEP 660 editable wheels (no ``wheel`` package).
"""

from setuptools import setup

setup()
