"""Access-control lists with per-entry restrictions (§3.5).

"Application servers would be designed to base authorization on a local
access-control-list" — the same abstraction is used on end-servers,
authorization servers, group servers, and accounting-server accounts, so one
module serves all of them.

Each :class:`AclEntry` couples a :class:`~repro.acl.compound.Subject` with
the operations and target patterns it permits and an optional list of
restrictions.  On an authorization server, "the restrictions field of a
matching access-control-list entry can be copied to the restrictions field
of the resulting proxy" (§3.5) — :meth:`AccessControlList.authorize` returns
the matched entry so issuers can do exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import FrozenSet, List, Optional, Tuple

from repro.acl.compound import Anyone, Subject, subject_from_wire
from repro.core.restrictions import (
    Restriction,
    restrictions_from_wire,
    restrictions_to_wire,
)
from repro.encoding.identifiers import GroupId, PrincipalId
from repro.errors import AuthorizationDenied


@dataclass(frozen=True)
class AclEntry:
    """One line of an ACL.

    Attributes:
        subject: who this entry applies to (possibly compound).
        operations: permitted operations, or None for all.
        targets: glob patterns over object names; ``("*",)`` for all.
        restrictions: restrictions attached to the grant (copied into
            proxies issued on the strength of this entry, §3.5).
    """

    subject: Subject
    operations: Optional[Tuple[str, ...]] = None
    targets: Tuple[str, ...] = ("*",)
    restrictions: Tuple[Restriction, ...] = ()

    def permits(
        self,
        principals: FrozenSet[PrincipalId],
        groups: FrozenSet[GroupId],
        operation: str,
        target: Optional[str],
    ) -> bool:
        if not self.subject.matches(principals, groups):
            return False
        if self.operations is not None and operation not in self.operations:
            return False
        if target is None:
            return True
        return any(fnmatchcase(target, pattern) for pattern in self.targets)

    def to_wire(self) -> dict:
        return {
            "subject": self.subject.to_wire(),
            "operations": (
                None if self.operations is None else list(self.operations)
            ),
            "targets": list(self.targets),
            "restrictions": restrictions_to_wire(self.restrictions),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "AclEntry":
        ops = wire["operations"]
        return cls(
            subject=subject_from_wire(wire["subject"]),
            operations=None if ops is None else tuple(ops),
            targets=tuple(wire["targets"]),
            restrictions=restrictions_from_wire(wire["restrictions"]),
        )


@dataclass
class AccessControlList:
    """An ordered list of entries; the first match wins."""

    entries: List[AclEntry] = field(default_factory=list)

    def add(self, entry: AclEntry) -> None:
        self.entries.append(entry)

    def remove_subject(self, subject: Subject) -> int:
        """Drop all entries for ``subject``; returns how many were removed.

        This is the revocation lever of §3.1: "one can revoke a capability
        by changing the access rights available to the grantor of the
        capability."
        """
        before = len(self.entries)
        self.entries = [e for e in self.entries if e.subject != subject]
        return before - len(self.entries)

    def match(
        self,
        principals: FrozenSet[PrincipalId],
        groups: FrozenSet[GroupId],
        operation: str,
        target: Optional[str] = None,
    ) -> Optional[AclEntry]:
        """First entry permitting the request, or None."""
        for entry in self.entries:
            if entry.permits(principals, groups, operation, target):
                return entry
        return None

    def authorize(
        self,
        principals: FrozenSet[PrincipalId],
        groups: FrozenSet[GroupId],
        operation: str,
        target: Optional[str] = None,
    ) -> AclEntry:
        """Like :meth:`match` but raises on denial."""
        entry = self.match(principals, groups, operation, target)
        if entry is None:
            names = ",".join(str(p) for p in sorted(principals)) or "<nobody>"
            raise AuthorizationDenied(
                f"{names} may not {operation} "
                f"{target if target is not None else '<any>'}"
            )
        return entry

    def to_wire(self) -> list:
        return [entry.to_wire() for entry in self.entries]

    @classmethod
    def from_wire(cls, wire: list) -> "AccessControlList":
        return cls(entries=[AclEntry.from_wire(e) for e in wire])

    @classmethod
    def open_to_all(cls) -> "AccessControlList":
        """An ACL with a single anyone/* entry (capability-style servers)."""
        return cls(entries=[AclEntry(subject=Anyone())])

    def __len__(self) -> int:
        return len(self.entries)
