"""Access-control lists with compound principals and entry restrictions (§3.5)."""

from repro.acl.acl import AccessControlList, AclEntry
from repro.acl.compound import (
    Anyone,
    Compound,
    GroupSubject,
    SinglePrincipal,
    Subject,
    subject_from_wire,
)

__all__ = [
    "AccessControlList",
    "AclEntry",
    "Subject",
    "SinglePrincipal",
    "GroupSubject",
    "Anyone",
    "Compound",
    "subject_from_wire",
]
