"""Subjects of ACL entries, including compound principals (§3.5).

"By supporting compound principal identifiers in access-control-list
entries, it becomes possible to require the concurrence of multiple
principals for certain operations ... the need for both user and host
credentials ... as well as the separation of privilege so that a single
user can't act alone."

A :class:`Subject` is matched against the set of principals that concur in a
request (the authenticated claimant plus the grantors of any supporting
proxies) and the set of groups asserted via group proxies:

* :class:`SinglePrincipal` — one named principal.
* :class:`GroupSubject` — membership in a (globally named) group, §3.3.
* :class:`Anyone` — matches everything; used for public operations and for
  the capability pattern where the *proxy chain*, not the ACL, carries the
  policy.
* :class:`Compound` — k-of-n over nested subjects (conjunction when
  ``required`` equals the subject count).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.encoding.canonical import encode
from repro.encoding.identifiers import GroupId, PrincipalId
from repro.errors import DecodingError


class Subject(ABC):
    """Who (or what combination) an ACL entry names."""

    KIND: str = ""

    @abstractmethod
    def matches(
        self,
        principals: FrozenSet[PrincipalId],
        groups: FrozenSet[GroupId],
    ) -> bool:
        """True when the concurring principals/groups satisfy this subject."""

    @abstractmethod
    def to_wire(self) -> dict:
        """Serialize, including the ``kind`` discriminator."""

    @classmethod
    @abstractmethod
    def from_wire(cls, wire: dict) -> "Subject":
        """Reconstruct (``kind`` already dispatched)."""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Subject) and self.to_wire() == other.to_wire()

    def __hash__(self) -> int:
        return hash(encode(self.to_wire()))


@dataclass(frozen=True, eq=False)
class SinglePrincipal(Subject):
    KIND = "principal"

    principal: PrincipalId

    def matches(
        self,
        principals: FrozenSet[PrincipalId],
        groups: FrozenSet[GroupId],
    ) -> bool:
        return self.principal in principals

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "principal": self.principal.to_wire()}

    @classmethod
    def from_wire(cls, wire: dict) -> "SinglePrincipal":
        return cls(principal=PrincipalId.from_wire(wire["principal"]))


@dataclass(frozen=True, eq=False)
class GroupSubject(Subject):
    """Matches when membership in the group has been asserted (§3.3).

    "It should be possible for the name of a group to appear in
    authorization databases anywhere that the name of any other principal
    might appear."
    """

    KIND = "group"

    group: GroupId

    def matches(
        self,
        principals: FrozenSet[PrincipalId],
        groups: FrozenSet[GroupId],
    ) -> bool:
        return self.group in groups

    def to_wire(self) -> dict:
        return {"kind": self.KIND, "group": self.group.to_wire()}

    @classmethod
    def from_wire(cls, wire: dict) -> "GroupSubject":
        return cls(group=GroupId.from_wire(wire["group"]))


@dataclass(frozen=True, eq=False)
class Anyone(Subject):
    KIND = "anyone"

    def matches(
        self,
        principals: FrozenSet[PrincipalId],
        groups: FrozenSet[GroupId],
    ) -> bool:
        return True

    def to_wire(self) -> dict:
        return {"kind": self.KIND}

    @classmethod
    def from_wire(cls, wire: dict) -> "Anyone":
        return cls()


@dataclass(frozen=True, eq=False)
class Compound(Subject):
    """k-of-n over nested subjects (§3.5 compound principal identifiers)."""

    KIND = "compound"

    subjects: Tuple[Subject, ...]
    required: int = 0  # 0 means "all of them"

    def __post_init__(self) -> None:
        if not self.subjects:
            raise ValueError("compound subject needs >= 1 nested subject")
        need = self.required or len(self.subjects)
        if not 1 <= need <= len(self.subjects):
            raise ValueError(
                f"required must be in [1, {len(self.subjects)}], got {need}"
            )

    @property
    def needed(self) -> int:
        return self.required or len(self.subjects)

    def matches(
        self,
        principals: FrozenSet[PrincipalId],
        groups: FrozenSet[GroupId],
    ) -> bool:
        satisfied = sum(
            1 for subject in self.subjects if subject.matches(principals, groups)
        )
        return satisfied >= self.needed

    def to_wire(self) -> dict:
        return {
            "kind": self.KIND,
            "subjects": [s.to_wire() for s in self.subjects],
            "required": self.required,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "Compound":
        return cls(
            subjects=tuple(subject_from_wire(s) for s in wire["subjects"]),
            required=int(wire["required"]),
        )


_SUBJECT_KINDS = {
    cls.KIND: cls
    for cls in (SinglePrincipal, GroupSubject, Anyone, Compound)
}


def subject_from_wire(wire: dict) -> Subject:
    try:
        cls = _SUBJECT_KINDS[wire["kind"]]
    except (KeyError, TypeError) as exc:
        raise DecodingError(f"unknown subject: {wire!r}") from exc
    return cls.from_wire(wire)
