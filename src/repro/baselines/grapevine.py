"""Grapevine-style registration-server group lookup (§5 comparator).

"Some of the earliest work in the area is found in Grapevine where
end-servers query registration servers to determine whether a client is a
member of a particular group ...  In both approaches, the authorization
decision remains with the local system.  With the distributed authorization
and group services supported by restricted proxies, the authorization
decision can be delegated to a remote server."

The measurable difference (benchmark C2): here the end-server pays one
registry round-trip *per request*; with group proxies the client fetches a
proxy once and the end-server verifies it offline for the proxy lifetime.
"""

from __future__ import annotations

from typing import Callable, Dict, Set

from repro.clock import Clock
from repro.encoding.identifiers import PrincipalId
from repro.errors import AuthorizationDenied, ServiceError
from repro.net.message import Message, raise_if_error
from repro.net.network import Network
from repro.net.service import Service


class GrapevineRegistry(Service):
    """The registration server: authoritative group membership."""

    def __init__(
        self, principal: PrincipalId, network: Network, clock: Clock
    ) -> None:
        super().__init__(principal, network, clock)
        self._groups: Dict[str, Set[PrincipalId]] = {}

    def create_group(self, name: str, members=()) -> None:
        self._groups[name] = set(members)

    def add_member(self, name: str, member: PrincipalId) -> None:
        self._groups.setdefault(name, set()).add(member)

    def remove_member(self, name: str, member: PrincipalId) -> None:
        self._groups.get(name, set()).discard(member)

    def op_is_member(self, message: Message) -> dict:
        group = message.payload["group"]
        member = PrincipalId.from_wire(message.payload["member"])
        if group not in self._groups:
            raise ServiceError(f"no group {group}")
        return {"member": member in self._groups[group]}


class GrapevineEndServer(Service):
    """Authorizes by group, asking the registry on every request."""

    def __init__(
        self,
        principal: PrincipalId,
        network: Network,
        clock: Clock,
        registry: PrincipalId,
        required_group: str,
    ) -> None:
        super().__init__(principal, network, clock)
        self.registry = registry
        self.required_group = required_group
        self._operations: Dict[str, Callable] = {}

    def register_operation(self, name: str, handler: Callable) -> None:
        self._operations[name] = handler

    def op_request(self, message: Message) -> dict:
        # The per-request online lookup Grapevine/YP-style systems pay.
        reply = raise_if_error(
            self.network.send(
                self.principal,
                self.registry,
                "is-member",
                {
                    "group": self.required_group,
                    "member": message.source.to_wire(),
                },
            )
        )
        if not reply["member"]:
            raise AuthorizationDenied(
                f"{message.source} is not in {self.required_group}"
            )
        handler = self._operations.get(message.payload["operation"])
        if handler is None:
            raise ServiceError(
                f"no operation {message.payload['operation']!r}"
            )
        return handler(message.source, message.payload)
