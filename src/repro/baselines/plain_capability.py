"""Traditional network capabilities: bearer tokens sent in the clear.

§3.1 distinguishes proxy-based capabilities from traditional ones: "in
presenting a capability (restricted proxy) to the end-server, the bearer
does not send the entire proxy across the network ...  The result is that an
attacker can not obtain such a capability by tapping the network to observe
the presentation of capabilities by legitimate users."

This baseline is the *traditional* design: the capability IS a secret byte
string, and presenting it means transmitting it.  Benchmark C1 taps the
network during a legitimate presentation and then replays the captured
token — successfully here, unsuccessfully against restricted proxies.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.clock import Clock
from repro.crypto.rng import DEFAULT_RNG, Rng
from repro.encoding.identifiers import PrincipalId
from repro.errors import AuthorizationDenied, ServiceError
from repro.net.message import Message
from repro.net.network import Network
from repro.net.service import Service


class PlainCapabilityServer(Service):
    """Issues and honours secret-token capabilities."""

    def __init__(
        self,
        principal: PrincipalId,
        network: Network,
        clock: Clock,
        rng: Optional[Rng] = None,
    ) -> None:
        super().__init__(principal, network, clock)
        self._rng = rng or DEFAULT_RNG
        #: token hex -> (operations, target, expiry)
        self._tokens: Dict[str, Tuple[Tuple[str, ...], str, float]] = {}
        self._operations: Dict[str, Callable] = {}
        #: who may mint capabilities (the resource owners)
        self._owners: set = set()

    def add_owner(self, principal: PrincipalId) -> None:
        self._owners.add(principal)

    def register_operation(self, name: str, handler: Callable) -> None:
        self._operations[name] = handler

    def op_issue(self, message: Message) -> dict:
        """Mint a capability token for (operations, target)."""
        if message.source not in self._owners:
            raise AuthorizationDenied(
                f"{message.source} may not issue capabilities"
            )
        token = self._rng.bytes(16).hex()
        self._tokens[token] = (
            tuple(message.payload["operations"]),
            message.payload["target"],
            float(message.payload.get("expires_at") or float("inf")),
        )
        return {"token": token}

    def op_request(self, message: Message) -> dict:
        """Honour a presented token — whoever presents it (the flaw)."""
        payload = message.payload
        token = payload["token"]
        entry = self._tokens.get(token)
        if entry is None:
            raise AuthorizationDenied("unknown capability")
        operations, target, expires_at = entry
        if expires_at < self.clock.now():
            del self._tokens[token]
            raise AuthorizationDenied("capability expired")
        if payload["operation"] not in operations:
            raise AuthorizationDenied(
                f"capability does not permit {payload['operation']!r}"
            )
        if payload.get("target") != target:
            raise AuthorizationDenied("capability is for another object")
        handler = self._operations.get(payload["operation"])
        if handler is None:
            raise ServiceError(f"no operation {payload['operation']!r}")
        return handler(message.source, payload)

    def revoke(self, token: str) -> bool:
        """Server-side revocation requires knowing every outstanding copy's
        token — possible here, but note there is no way to revoke only the
        copies an untrusted holder passed on."""
        return self._tokens.pop(token, None) is not None
