"""Sollins-style cascaded authentication (the paper's §3.4/§5 comparator).

Karen Sollins, *Cascaded Authentication* (IEEE S&P 1988), proposed passing
authorization from party to party with restrictions added per hop — the same
expressiveness as cascaded proxies.  The difference the paper calls out:

    "A distinct difference between the cascaded authentication approach
    described by Sollins and the approach described here is that in
    Sollins's approach the end-server has to contact the authentication
    server to verify the authenticity of a chain of proxies." (§3.4)

We model that faithfully: passport links are sealed with each principal's
*registered* key, which only the authentication server (and the principal)
knows, so an end-server cannot validate a passport locally — every
verification costs an online round-trip to :class:`SollinsAuthServer`.
Benchmark F4 measures the consequence against offline proxy verification.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.clock import Clock
from repro.core.evaluation import RequestContext
from repro.core.restrictions import (
    Restriction,
    check_all,
    restrictions_from_wire,
    restrictions_to_wire,
)
from repro.crypto import mac as _mac
from repro.crypto.keys import SymmetricKey
from repro.encoding.canonical import encode
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    AuthorizationDenied,
    ServiceError,
    SignatureError,
)
from repro.net.message import Message, raise_if_error
from repro.net.network import Network
from repro.net.service import Service

_LINK_DOMAIN = "sollins-passport-link-v1"


@dataclass(frozen=True)
class PassportLink:
    """One hop of a passport: principal, added restrictions, seal."""

    principal: PrincipalId
    restrictions: Tuple[Restriction, ...]
    seal: bytes = field(repr=False)

    @staticmethod
    def sealed_body(
        principal: PrincipalId,
        restrictions: Tuple[Restriction, ...],
        previous_digest: bytes,
    ) -> bytes:
        return encode(
            [
                _LINK_DOMAIN,
                principal.to_wire(),
                restrictions_to_wire(restrictions),
                previous_digest,
            ]
        )

    def to_wire(self) -> dict:
        return {
            "principal": self.principal.to_wire(),
            "restrictions": restrictions_to_wire(self.restrictions),
            "seal": self.seal,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "PassportLink":
        return cls(
            principal=PrincipalId.from_wire(wire["principal"]),
            restrictions=restrictions_from_wire(wire["restrictions"]),
            seal=wire["seal"],
        )


@dataclass(frozen=True)
class Passport:
    """A chain of links; each seal covers a digest of the chain so far."""

    links: Tuple[PassportLink, ...]

    def digest(self) -> bytes:
        return hashlib.sha256(
            encode([link.to_wire() for link in self.links])
        ).digest()

    def to_wire(self) -> dict:
        return {"links": [link.to_wire() for link in self.links]}

    @classmethod
    def from_wire(cls, wire: dict) -> "Passport":
        return cls(
            links=tuple(PassportLink.from_wire(l) for l in wire["links"])
        )

    def all_restrictions(self) -> Tuple[Restriction, ...]:
        out: List[Restriction] = []
        for link in self.links:
            out.extend(link.restrictions)
        return tuple(out)


def create_passport(
    principal: PrincipalId,
    key: SymmetricKey,
    restrictions: Tuple[Restriction, ...],
) -> Passport:
    """Originate a passport (the user's initial grant)."""
    body = PassportLink.sealed_body(principal, restrictions, b"")
    link = PassportLink(
        principal=principal,
        restrictions=restrictions,
        seal=_mac.tag(key.secret, body),
    )
    return Passport(links=(link,))


def extend_passport(
    passport: Passport,
    principal: PrincipalId,
    key: SymmetricKey,
    restrictions: Tuple[Restriction, ...],
) -> Passport:
    """Add a hop (an intermediate passing the task on, restrictions added)."""
    body = PassportLink.sealed_body(
        principal, restrictions, passport.digest()
    )
    link = PassportLink(
        principal=principal,
        restrictions=restrictions,
        seal=_mac.tag(key.secret, body),
    )
    return Passport(links=passport.links + (link,))


class SollinsAuthServer(Service):
    """The online verifier: the only party able to validate passports."""

    def __init__(
        self, principal: PrincipalId, network: Network, clock: Clock
    ) -> None:
        super().__init__(principal, network, clock)
        self._keys: Dict[PrincipalId, SymmetricKey] = {}

    def register(self, principal: PrincipalId, key: Optional[SymmetricKey] = None) -> SymmetricKey:
        key = key or SymmetricKey.generate()
        self._keys[principal] = key
        return key

    def op_verify_passport(self, message: Message) -> dict:
        """Validate every link's seal; return the originator if sound."""
        passport = Passport.from_wire(message.payload["passport"])
        if not passport.links:
            raise ServiceError("empty passport")
        previous_digest = b""
        running = Passport(links=())
        for link in passport.links:
            key = self._keys.get(link.principal)
            if key is None:
                raise AuthorizationDenied(
                    f"unknown principal {link.principal}"
                )
            body = PassportLink.sealed_body(
                link.principal, link.restrictions, previous_digest
            )
            try:
                _mac.verify(key.secret, body, link.seal)
            except SignatureError:
                raise AuthorizationDenied(
                    f"bad seal on link of {link.principal}"
                ) from None
            running = Passport(links=running.links + (link,))
            previous_digest = running.digest()
        return {
            "valid": True,
            "originator": passport.links[0].principal.to_wire(),
        }


class SollinsEndServer(Service):
    """An end-server that must verify passports online.

    Registered operations mirror :class:`~repro.services.endserver.EndServer`
    handlers so benchmarks drive both stacks identically.
    """

    def __init__(
        self,
        principal: PrincipalId,
        network: Network,
        clock: Clock,
        auth_server: PrincipalId,
    ) -> None:
        super().__init__(principal, network, clock)
        self.auth_server = auth_server
        self._operations: Dict[str, object] = {}

    def register_operation(self, name: str, handler) -> None:
        self._operations[name] = handler

    def op_request(self, message: Message) -> dict:
        payload = message.payload
        passport = Passport.from_wire(payload["passport"])
        # The defining cost: one online round-trip per verification.
        reply = raise_if_error(
            self.network.send(
                self.principal,
                self.auth_server,
                "verify-passport",
                {"passport": passport.to_wire()},
            )
        )
        if not reply.get("valid"):
            raise AuthorizationDenied("passport rejected by auth server")
        originator = PrincipalId.from_wire(reply["originator"])
        context = RequestContext(
            server=self.principal,
            operation=payload["operation"],
            target=payload.get("target"),
            claimant=message.source,
            exercisers=frozenset({message.source}),
            amounts={
                str(k): int(v)
                for k, v in (payload.get("amounts") or {}).items()
            },
            time=self.clock.now(),
        )
        check_all(passport.all_restrictions(), context)
        handler = self._operations.get(payload["operation"])
        if handler is None:
            raise ServiceError(f"no operation {payload['operation']!r}")
        return handler(originator, payload)  # type: ignore[operator]
