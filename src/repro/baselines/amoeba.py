"""Amoeba's bank server (§5 comparator for accounting).

"Amoeba supports a distributed bank server identical in purpose to the
accounting server based on restricted proxies.  The protocol ... is
significantly different, however.  In Amoeba, a client must contact the bank
and transfer funds into the server's account before it contacts the server.
The server will then provide services until the pre-paid funds have been
exhausted.  Like the mechanism described here, Amoeba supports multiple
currencies."

The protocol-shape consequence benchmark C3 measures: every client/server
pairing requires an up-front bank round-trip (and another to top up or
refund), whereas a check piggybacks on the service request and clears
afterwards, off the client's latency path.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.clock import Clock
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    AccountingError,
    InsufficientFundsError,
    UnknownAccountError,
)
from repro.net.message import Message, raise_if_error
from repro.net.network import Network
from repro.net.service import Service


class AmoebaBank(Service):
    """Accounts with prepay transfers (no checks, no delegation)."""

    def __init__(
        self, principal: PrincipalId, network: Network, clock: Clock
    ) -> None:
        super().__init__(principal, network, clock)
        #: account name -> {currency: balance}
        self._accounts: Dict[str, Dict[str, int]] = {}
        #: account name -> owner
        self._owners: Dict[str, PrincipalId] = {}

    # -- administration ------------------------------------------------------

    def create_account(
        self,
        name: str,
        owner: PrincipalId,
        initial: Optional[Dict[str, int]] = None,
    ) -> None:
        if name in self._accounts:
            raise AccountingError(f"account {name} exists")
        self._accounts[name] = dict(initial or {})
        self._owners[name] = owner

    def balance_of(self, name: str) -> Dict[str, int]:
        return dict(self._account(name))

    def _account(self, name: str) -> Dict[str, int]:
        try:
            return self._accounts[name]
        except KeyError:
            raise UnknownAccountError(name) from None

    # -- operations ------------------------------------------------------------

    def op_transfer(self, message: Message) -> dict:
        """Move funds between accounts; only the owner may debit.

        This is the *pre-payment*: the client calls this before using a
        server, moving funds into the server's account.
        """
        payload = message.payload
        source = payload["from"]
        if self._owners.get(source) != message.source:
            raise AccountingError(
                f"{message.source} does not own account {source}"
            )
        destination = payload["to"]
        currency = payload["currency"]
        amount = int(payload["amount"])
        src = self._account(source)
        dst = self._account(destination)
        if src.get(currency, 0) < amount:
            raise InsufficientFundsError(
                f"{source} has {src.get(currency, 0)} {currency}"
            )
        src[currency] = src.get(currency, 0) - amount
        dst[currency] = dst.get(currency, 0) + amount
        return {"balance": src[currency]}

    def op_balance(self, message: Message) -> dict:
        name = message.payload["account"]
        if self._owners.get(name) != message.source:
            raise AccountingError("only the owner may read a balance")
        return {"balances": self.balance_of(name)}


class AmoebaServer(Service):
    """A service that requires pre-paid funds in its bank account.

    It tracks, per client, how much of its bank balance that client has
    pre-paid, and draws the per-request price from that allowance —
    "the server will then provide services until the pre-paid funds have
    been exhausted."
    """

    def __init__(
        self,
        principal: PrincipalId,
        network: Network,
        clock: Clock,
        bank: PrincipalId,
        account: str,
        currency: str,
        price: int,
    ) -> None:
        super().__init__(principal, network, clock)
        self.bank = bank
        self.account = account
        self.currency = currency
        self.price = price
        self._prepaid: Dict[PrincipalId, int] = {}
        self.served = 0

    def op_announce_prepayment(self, message: Message) -> dict:
        """Client declares a transfer it just made; server verifies with bank."""
        amount = int(message.payload["amount"])
        # Trust-but-verify: one round-trip to the bank per announcement.
        reply = raise_if_error(
            self.network.send(
                self.principal,
                self.bank,
                "balance",
                {"account": self.account},
            )
        )
        total_prepaid = sum(self._prepaid.values())
        balance = int(reply["balances"].get(self.currency, 0))
        if balance < total_prepaid + amount:
            raise AccountingError(
                "announced prepayment not reflected in bank balance"
            )
        self._prepaid[message.source] = (
            self._prepaid.get(message.source, 0) + amount
        )
        return {"credit": self._prepaid[message.source]}

    def op_serve(self, message: Message) -> dict:
        """One unit of service, drawn from the client's pre-paid credit."""
        credit = self._prepaid.get(message.source, 0)
        if credit < self.price:
            raise InsufficientFundsError(
                f"{message.source} has {credit} {self.currency} pre-paid, "
                f"price is {self.price}"
            )
        self._prepaid[message.source] = credit - self.price
        self.served += 1
        return {"served": True, "remaining": self._prepaid[message.source]}


class AmoebaClient:
    """Client-side prepay flow: transfer, announce, then consume."""

    def __init__(
        self,
        principal: PrincipalId,
        network: Network,
        bank: PrincipalId,
        account: str,
    ) -> None:
        self.principal = principal
        self.network = network
        self.bank = bank
        self.account = account

    def _call(self, destination: PrincipalId, msg_type: str, payload: dict) -> dict:
        return raise_if_error(
            self.network.send(self.principal, destination, msg_type, payload)
        )

    def prepay(
        self, server: "AmoebaServer", currency: str, amount: int
    ) -> None:
        """The two up-front round-trips every pairing needs."""
        self._call(
            self.bank,
            "transfer",
            {
                "from": self.account,
                "to": server.account,
                "currency": currency,
                "amount": amount,
            },
        )
        self._call(
            server.principal, "announce-prepayment", {"amount": amount}
        )

    def use(self, server: "AmoebaServer") -> dict:
        return self._call(server.principal, "serve", {})
