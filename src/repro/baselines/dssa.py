"""DSSA role-based delegation (§5 comparator).

"In the DSSA, principals generate and sign delegation certificates to allow
intermediate systems to act on their behalf.  An important difference is
that ... restrictions are supported only by creating separate principals,
called roles ...  The creation of a new role is cumbersome when delegating
on the fly or when granting access to individual objects.  Roles can not be
used to implement the authorization server of Section 3.2."

The model here:

* a :class:`DssaPrincipal` has a long-term keypair;
* restricting a delegation requires :meth:`create_role` — generating a
  *fresh keypair* for the role, signing a role certificate binding the role
  to a fixed rights list, and (in a real deployment) registering it;
* delegation is a certificate naming the delegate, signed by the role key;
* end-servers verify offline given the user's public key (that part DSSA
  does as well as proxies — the cost difference is *role creation per
  distinct rights subset*, measured by benchmark C5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.crypto import schnorr as _schnorr
from repro.crypto.dh import DhGroup, TEST_GROUP
from repro.crypto.rng import DEFAULT_RNG, Rng
from repro.encoding.canonical import encode
from repro.encoding.identifiers import PrincipalId
from repro.errors import AuthorizationDenied, SignatureError

_ROLE_DOMAIN = "dssa-role-cert-v1"
_DELEGATION_DOMAIN = "dssa-delegation-cert-v1"


@dataclass(frozen=True)
class RoleCertificate:
    """Binds a role public key to a fixed rights list, signed by the user."""

    user: PrincipalId
    role_name: str
    rights: Tuple[Tuple[str, str], ...]  # (operation, target) pairs
    role_public: _schnorr.SchnorrPublicKey
    expires_at: float
    signature: bytes = field(repr=False)

    @staticmethod
    def signed_body(
        user: PrincipalId,
        role_name: str,
        rights: Tuple[Tuple[str, str], ...],
        role_public: _schnorr.SchnorrPublicKey,
        expires_at: float,
    ) -> bytes:
        return encode(
            [
                _ROLE_DOMAIN,
                user.to_wire(),
                role_name,
                [list(r) for r in rights],
                role_public.to_wire(),
                float(expires_at),
            ]
        )

    def body_bytes(self) -> bytes:
        return self.signed_body(
            self.user,
            self.role_name,
            self.rights,
            self.role_public,
            self.expires_at,
        )


@dataclass(frozen=True)
class DelegationCertificate:
    """Allows ``delegate`` to act as the role, signed by the role key."""

    role: RoleCertificate
    delegate: PrincipalId
    expires_at: float
    signature: bytes = field(repr=False)

    @staticmethod
    def signed_body(
        role: RoleCertificate, delegate: PrincipalId, expires_at: float
    ) -> bytes:
        return encode(
            [
                _DELEGATION_DOMAIN,
                role.body_bytes(),
                delegate.to_wire(),
                float(expires_at),
            ]
        )

    def body_bytes(self) -> bytes:
        return self.signed_body(self.role, self.delegate, self.expires_at)


@dataclass
class Role:
    """A role as held by its creating user (certificate + private key)."""

    certificate: RoleCertificate
    private: _schnorr.SchnorrPrivateKey = field(repr=False)


class DssaPrincipal:
    """A DSSA user: identity keypair plus role management."""

    def __init__(
        self,
        principal: PrincipalId,
        group: DhGroup = TEST_GROUP,
        rng: Optional[Rng] = None,
    ) -> None:
        self.principal = principal
        self.group = group
        self._rng = rng or DEFAULT_RNG
        self.identity = _schnorr.generate_keypair(group, rng=self._rng)
        self.roles: Dict[str, Role] = {}
        self._role_counter = 0

    @property
    def public_key(self) -> _schnorr.SchnorrPublicKey:
        return self.identity.public

    def create_role(
        self,
        rights: Tuple[Tuple[str, str], ...],
        expires_at: float,
        name: Optional[str] = None,
    ) -> Role:
        """The cumbersome part: new principal (keypair) per rights subset."""
        self._role_counter += 1
        role_name = name or f"{self.principal.name}-role-{self._role_counter}"
        role_key = _schnorr.generate_keypair(self.group, rng=self._rng)
        body = RoleCertificate.signed_body(
            self.principal, role_name, rights, role_key.public, expires_at
        )
        certificate = RoleCertificate(
            user=self.principal,
            role_name=role_name,
            rights=rights,
            role_public=role_key.public,
            expires_at=expires_at,
            signature=_schnorr.sign(self.identity, body, rng=self._rng),
        )
        role = Role(certificate=certificate, private=role_key)
        self.roles[role_name] = role
        return role

    def delegate(
        self, role: Role, delegate: PrincipalId, expires_at: float
    ) -> DelegationCertificate:
        body = DelegationCertificate.signed_body(
            role.certificate, delegate, expires_at
        )
        return DelegationCertificate(
            role=role.certificate,
            delegate=delegate,
            expires_at=expires_at,
            signature=_schnorr.sign(role.private, body, rng=self._rng),
        )


class DssaVerifier:
    """End-server side: offline verification against a key directory."""

    def __init__(self) -> None:
        self._directory: Dict[PrincipalId, _schnorr.SchnorrPublicKey] = {}

    def register(
        self, principal: PrincipalId, public: _schnorr.SchnorrPublicKey
    ) -> None:
        self._directory[principal] = public

    def verify(
        self,
        delegation: DelegationCertificate,
        claimant: PrincipalId,
        operation: str,
        target: str,
        now: float,
    ) -> PrincipalId:
        """Return the user whose rights apply, or raise."""
        role = delegation.role
        user_key = self._directory.get(role.user)
        if user_key is None:
            raise AuthorizationDenied(f"unknown user {role.user}")
        if role.expires_at < now or delegation.expires_at < now:
            raise AuthorizationDenied("certificate expired")
        try:
            _schnorr.verify(user_key, role.body_bytes(), role.signature)
            _schnorr.verify(
                role.role_public,
                delegation.body_bytes(),
                delegation.signature,
            )
        except SignatureError as exc:
            raise AuthorizationDenied(f"bad DSSA signature: {exc}") from exc
        if delegation.delegate != claimant:
            raise AuthorizationDenied(
                f"{claimant} is not the named delegate"
            )
        if (operation, target) not in role.rights and (
            operation,
            "*",
        ) not in role.rights:
            raise AuthorizationDenied(
                f"role {role.role_name} does not include "
                f"({operation}, {target})"
            )
        return role.user
