"""Karger's password-forwarding delegation (§5 comparator).

"Karger proposed a server that keeps track of special passwords that are
established when a user logs in.  These passwords are passed to other
systems which act on the user's behalf ...  This scheme is not
encryption-based, but relies on secure channels for passing the special
passwords."

Properties the benchmarks contrast with restricted proxies:

* delegation is **all-or-nothing** — a forwarded password conveys the user's
  full rights; no restrictions can be attached;
* verification is **online** — the end-server must ask the password server
  whether the password is current;
* the password itself crosses the network, so any hop without a secure
  channel leaks full impersonation capability (vs. proxies, where only the
  certificate crosses in the clear).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.clock import Clock
from repro.crypto.rng import DEFAULT_RNG, Rng
from repro.encoding.identifiers import PrincipalId
from repro.errors import AuthorizationDenied, ServiceError
from repro.net.message import Message, raise_if_error
from repro.net.network import Network
from repro.net.service import Service


class KargerPasswordServer(Service):
    """Tracks per-login special passwords; validates them online."""

    def __init__(
        self,
        principal: PrincipalId,
        network: Network,
        clock: Clock,
        lifetime: float = 8 * 3600.0,
        rng: Optional[Rng] = None,
    ) -> None:
        super().__init__(principal, network, clock)
        self.lifetime = lifetime
        self._rng = rng or DEFAULT_RNG
        #: password hex -> (user, expiry)
        self._passwords: Dict[str, tuple] = {}

    def op_login(self, message: Message) -> dict:
        """Establish a special password for the logging-in user.

        (Primary authentication is out of scope for the baseline; the
        message source is taken at its word, as the 1985 design predates
        network authentication.)
        """
        password = self._rng.bytes(16).hex()
        self._passwords[password] = (
            message.source,
            self.clock.now() + self.lifetime,
        )
        return {"password": password}

    def op_validate(self, message: Message) -> dict:
        """End-server side: is this password current, and whose is it?"""
        password = message.payload["password"]
        entry = self._passwords.get(password)
        if entry is None:
            raise AuthorizationDenied("unknown password")
        user, expiry = entry
        if expiry < self.clock.now():
            del self._passwords[password]
            raise AuthorizationDenied("password expired")
        return {"user": user.to_wire()}

    def op_logout(self, message: Message) -> dict:
        """Invalidate all of the source's passwords (the revocation story)."""
        dead = [
            pw
            for pw, (user, _) in self._passwords.items()
            if user == message.source
        ]
        for pw in dead:
            del self._passwords[pw]
        return {"revoked": len(dead)}


class KargerEndServer(Service):
    """Accepts forwarded passwords, validating each use online."""

    def __init__(
        self,
        principal: PrincipalId,
        network: Network,
        clock: Clock,
        password_server: PrincipalId,
    ) -> None:
        super().__init__(principal, network, clock)
        self.password_server = password_server
        self._operations: Dict[str, object] = {}

    def register_operation(self, name: str, handler) -> None:
        self._operations[name] = handler

    def op_request(self, message: Message) -> dict:
        payload = message.payload
        reply = raise_if_error(
            self.network.send(
                self.principal,
                self.password_server,
                "validate",
                {"password": payload["password"]},
            )
        )
        user = PrincipalId.from_wire(reply["user"])
        handler = self._operations.get(payload["operation"])
        if handler is None:
            raise ServiceError(f"no operation {payload['operation']!r}")
        # All-or-nothing: the handler receives the *user's* full identity,
        # with no way to express "read-only" or "this file only".
        return handler(user, payload)  # type: ignore[operator]
