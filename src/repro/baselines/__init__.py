"""From-scratch reimplementations of the paper's §5 comparators.

Each baseline exists to make a comparative claim *measurable*:

* :mod:`~repro.baselines.sollins` — cascaded authentication with online
  chain verification (vs offline proxy chains, §3.4);
* :mod:`~repro.baselines.karger` — forwarded special passwords,
  all-or-nothing, online validation;
* :mod:`~repro.baselines.dssa` — role-based delegation: a fresh principal
  per rights subset (vs on-the-fly restriction);
* :mod:`~repro.baselines.amoeba` — prepay bank accounting (vs checks);
* :mod:`~repro.baselines.grapevine` — per-request registration-server
  group lookups (vs group proxies);
* :mod:`~repro.baselines.plain_capability` — bearer tokens in the clear
  (vs possession-proof capabilities, §3.1).
"""

from repro.baselines.amoeba import AmoebaBank, AmoebaClient, AmoebaServer
from repro.baselines.dssa import (
    DelegationCertificate,
    DssaPrincipal,
    DssaVerifier,
    Role,
    RoleCertificate,
)
from repro.baselines.grapevine import GrapevineEndServer, GrapevineRegistry
from repro.baselines.karger import KargerEndServer, KargerPasswordServer
from repro.baselines.plain_capability import PlainCapabilityServer
from repro.baselines.sollins import (
    Passport,
    PassportLink,
    SollinsAuthServer,
    SollinsEndServer,
    create_passport,
    extend_passport,
)

__all__ = [
    "SollinsAuthServer",
    "SollinsEndServer",
    "Passport",
    "PassportLink",
    "create_passport",
    "extend_passport",
    "KargerPasswordServer",
    "KargerEndServer",
    "DssaPrincipal",
    "DssaVerifier",
    "Role",
    "RoleCertificate",
    "DelegationCertificate",
    "AmoebaBank",
    "AmoebaServer",
    "AmoebaClient",
    "GrapevineRegistry",
    "GrapevineEndServer",
    "PlainCapabilityServer",
]
