"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause.  The hierarchy
mirrors the subsystems: encoding, cryptography, the proxy core, the Kerberos
substrate, services, and the network simulator.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

class EncodingError(ReproError):
    """Failure to canonically encode or decode a value."""


class DecodingError(EncodingError):
    """The byte string is not a valid canonical encoding."""


# ---------------------------------------------------------------------------
# Cryptography
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class SignatureError(CryptoError):
    """A signature failed to verify."""


class IntegrityError(CryptoError):
    """Authenticated decryption failed (ciphertext or tag tampered)."""


class KeyError_(CryptoError):
    """A key is malformed or of the wrong type for the operation.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`KeyError`.
    """


# ---------------------------------------------------------------------------
# Proxy core
# ---------------------------------------------------------------------------

class ProxyError(ReproError):
    """Base class for proxy-related failures."""


class RestrictionError(ProxyError):
    """A restriction is malformed or violates additivity."""


class RestrictionViolation(ProxyError):
    """A request violates one of the restrictions carried by a proxy.

    Attributes:
        restriction_type: the type tag of the violated restriction.
        detail: human-readable explanation.
    """

    def __init__(self, restriction_type: str, detail: str = "") -> None:
        self.restriction_type = restriction_type
        self.detail = detail
        message = f"restriction violated: {restriction_type}"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class ProxyVerificationError(ProxyError):
    """A proxy (or proxy chain) failed verification at the end-server."""


class ProxyExpiredError(ProxyVerificationError):
    """The proxy's expiration time has passed."""


class ReplayError(ProxyError):
    """An accept-once identifier or authenticator was presented twice."""


class DelegationError(ProxyError):
    """An attempt to cascade or delegate a proxy was invalid."""


# ---------------------------------------------------------------------------
# Kerberos substrate
# ---------------------------------------------------------------------------

class KerberosError(ReproError):
    """Base class for Kerberos substrate failures."""


class TicketError(KerberosError):
    """A ticket is invalid, expired, or not decryptable by this server."""


class AuthenticatorError(KerberosError):
    """An authenticator failed validation (skew, replay, or key mismatch)."""


class UnknownPrincipalError(KerberosError):
    """The KDC has no entry for the named principal."""


# ---------------------------------------------------------------------------
# Services
# ---------------------------------------------------------------------------

class ServiceError(ReproError):
    """Base class for service-level failures."""


class AuthorizationDenied(ServiceError):
    """The end-server's policy denied the request."""


class AccountingError(ServiceError):
    """Base class for accounting failures."""


class UnknownAccountError(AccountingError):
    """No account with the given name exists on the accounting server."""


class InsufficientFundsError(AccountingError):
    """The account balance does not cover the requested transfer or hold."""


class DuplicateCheckError(AccountingError):
    """A check with a previously-seen number was presented again (§4)."""


class LedgerError(AccountingError):
    """A posting is malformed or cannot be applied to the ledger."""


class ConservationError(LedgerError):
    """A posting would create or destroy funds (debits != credits)."""


class CheckError(AccountingError):
    """A check is malformed, misdrawn, or improperly endorsed."""


# ---------------------------------------------------------------------------
# Network simulator
# ---------------------------------------------------------------------------

class NetworkError(ReproError):
    """Base class for simulated-network failures."""


class UnknownEndpointError(NetworkError):
    """No endpoint is registered under the destination name."""


class MessageDroppedError(NetworkError):
    """The fault injector dropped the message."""


class ResponseDroppedError(MessageDroppedError):
    """The fault injector dropped the *response* leg.

    The request was delivered and the handler ran — server side effects
    (ticket issuance, replay-cache registration, account mutation) have
    already happened.  Retrying after this error is the interesting case:
    a verbatim resend must be deduplicated server-side, not re-executed.
    """


class RequestTimeoutError(NetworkError):
    """The caller gave up waiting for a reply (async runtime only).

    Like :class:`ResponseDroppedError`, this is raised client-side with
    the server's fate unknown: the handler may still run (or may already
    have run) after the caller stopped waiting, so side effects must be
    presumed committed.  A verbatim resend of the same request (same
    ``_rid``) is answered from the service's response cache rather than
    re-executed — the accept-once contract of §4 survives timeouts.
    """


class NetworkClosedError(NetworkError):
    """The async runtime is shutting down and refused (or abandoned) a send.

    Raised for requests submitted after shutdown began and for requests
    still in transit (dilated-latency sleeps) when the runtime stopped.
    Requests already admitted to an inbox are delivered before workers
    exit, so this error never hides a committed server-side effect the
    caller was told about.
    """


# ---------------------------------------------------------------------------
# Resilience layer
# ---------------------------------------------------------------------------

class ResilienceError(ReproError):
    """Base class for resilience-layer failures."""


class RetriesExhaustedError(ResilienceError):
    """Every attempt permitted by the retry policy failed."""

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class CircuitOpenError(ResilienceError):
    """All candidate endpoints have open circuit breakers."""
