"""One-call assembly of a complete deployment.

Tests, examples, and benchmarks all need the same scaffolding: a simulated
clock and network, a KDC, some users, and a few servers.  :class:`Realm`
builds it, with a deterministic seed so any run is reproducible.

    realm = Realm(seed=b"demo")
    alice = realm.user("alice")
    fs = realm.file_server("fileserver")
    fs.grant_owner(alice.principal)
    client = alice.client_for(fs.principal)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.clock import Clock, SimulatedClock, SystemClock
from repro.crypto.keys import SymmetricKey
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.kerberos.client import KerberosClient
from repro.kerberos.kdc import KeyDistributionCenter
from repro.net.aio import AioNetwork
from repro.net.network import LatencyModel, Network
from repro.obs.telemetry import NO_TELEMETRY, Telemetry
from repro.resil.channel import ResilientChannel
from repro.resil.dedupe import ResponseCache
from repro.resil.degraded import ResilientAuthorizationClient
from repro.resil.policy import RetryPolicy
from repro.services.accounting import AccountingClient, AccountingServer
from repro.services.authorization import (
    AuthorizationClient,
    AuthorizationServer,
)
from repro.services.client import ServiceClient
from repro.services.fileserver import FileServer
from repro.services.groups import GroupClient, GroupServer
from repro.services.nameserver import NameServer
from repro.services.printserver import PrintServer


@dataclass
class User:
    """A human-shaped principal: identity plus a Kerberos agent."""

    principal: PrincipalId
    secret_key: SymmetricKey
    kerberos: KerberosClient

    def client_for(self, server: PrincipalId) -> ServiceClient:
        return ServiceClient(self.kerberos, server)

    def authorization_client(self, server: PrincipalId) -> AuthorizationClient:
        return AuthorizationClient(self.kerberos, server)

    def resilient_authorization_client(
        self, server: PrincipalId, telemetry=None
    ) -> ResilientAuthorizationClient:
        """Fig. 3 client with the degraded-mode cache (§3.1–3.2)."""
        return ResilientAuthorizationClient(
            self.kerberos, server, telemetry=telemetry
        )

    def group_client(self, server: PrincipalId) -> GroupClient:
        return GroupClient(self.kerberos, server)

    def accounting_client(self, server: PrincipalId) -> AccountingClient:
        return AccountingClient(self.kerberos, server)


class Realm:
    """A complete single-realm deployment on a simulated network."""

    def __init__(
        self,
        seed: Optional[bytes] = b"repro-testbed",
        realm: str = "REPRO.ORG",
        start_time: float = 1_000_000.0,
        latency: Optional[LatencyModel] = None,
        real_time: bool = False,
        network: Optional[Network] = None,
        clock: Optional[Clock] = None,
        telemetry: Optional[Telemetry] = None,
        verify_cache=None,
        resilience=None,
        runtime: str = "sync",
        time_dilation: float = 0.0,
        max_batch: int = 64,
        request_timeout: Optional[float] = None,
    ) -> None:
        """Build a realm; pass a shared ``network``/``clock`` to co-locate
        several realms on one fabric (see :func:`federation`).  An optional
        ``telemetry`` is bound to the realm clock and threaded into the
        network (and from there into every service); when a shared network
        is supplied, its telemetry is adopted instead.  ``verify_cache``
        (a :class:`~repro.core.vcache.VerificationCacheConfig`) becomes
        the default ``cache_config`` of every end-server the realm builds —
        pass :data:`~repro.core.vcache.DISABLED_CONFIG` to run the realm
        with the verification fast path off.

        ``resilience`` turns on the resilience layer: pass ``True`` for the
        default :class:`~repro.resil.policy.RetryPolicy` or a policy of
        your own.  Every client and service is then built on a
        :class:`~repro.resil.channel.ResilientChannel` (``realm.channel``)
        — RPCs retry with backoff behind circuit breakers, servers dedupe
        resends, end servers mark grants degraded while their authority is
        unreachable, and :meth:`kdc_replica` /
        :meth:`authorization_replica` register failover replicas.

        ``runtime`` selects the delivery mode when the realm builds its
        own network: ``"sync"`` (the seeded deterministic default) or
        ``"aio"`` for the queue-based asyncio runtime
        (:class:`~repro.net.aio.AioNetwork` — wrap client work in
        ``async with realm.network.serve()`` or
        :func:`repro.net.aio.drive`).  Both modes fork the same ``b"net"``
        rng, so a single-driver aio realm reproduces the sync realm's
        draws exactly — the parity contract of ``docs/scaling.md``.
        ``time_dilation``, ``max_batch``, and ``request_timeout`` pass
        through to the network (dilation also applies to the sync mode
        under a wall clock)."""
        self.rng = Rng(seed=seed)
        self.verify_cache = verify_cache
        if clock is not None:
            self.clock = clock
        else:
            self.clock = (
                SystemClock() if real_time else SimulatedClock(start_time)
            )
        if network is not None:
            self.network = network
            self.telemetry = (
                telemetry if telemetry is not None else network.telemetry
            )
        else:
            self.telemetry = telemetry if telemetry is not None else NO_TELEMETRY
            if runtime == "aio":
                self.network = AioNetwork(
                    self.clock,
                    latency=latency,
                    rng=self.rng.fork(b"net"),
                    telemetry=self.telemetry,
                    time_dilation=time_dilation,
                    max_batch=max_batch,
                    request_timeout=request_timeout,
                )
            elif runtime == "sync":
                self.network = Network(
                    self.clock,
                    latency=latency,
                    rng=self.rng.fork(b"net"),
                    telemetry=self.telemetry,
                    time_dilation=time_dilation,
                )
            else:
                raise ValueError(
                    f"runtime must be 'sync' or 'aio', not {runtime!r}"
                )
        if self.telemetry:
            self.telemetry.bind_clock(self.clock)
        self.realm = realm
        self.channel: Optional[ResilientChannel] = None
        if resilience:
            policy = (
                resilience
                if isinstance(resilience, RetryPolicy)
                else RetryPolicy()
            )
            self.channel = ResilientChannel(
                self.network,
                policy=policy,
                rng=self.rng.fork(b"resil"),
                telemetry=self.telemetry,
            )
        #: What clients and services send through: the resilient channel
        #: when the layer is on, else the bare network.
        self._fabric = (
            self.channel if self.channel is not None else self.network
        )
        #: Every response cache handed to a service, so chaos reports can
        #: sum dedupe activity across the deployment.
        self.dedupe_caches: list = []
        self.kdc = KeyDistributionCenter(
            self._fabric,
            self.clock,
            realm=realm,
            rng=self.rng.fork(b"kdc"),
            dedupe=self._dedupe_cache(),
        )
        self.users: Dict[str, User] = {}
        #: Crash-restart counters per server name: each restart forks
        #: fresh rng streams (tagged with the count) so a restarted
        #: server never re-draws its predecessor's random sequence.
        self._restarts: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def principal(self, name: str) -> PrincipalId:
        return PrincipalId(name, self.realm)

    def user(self, name: str) -> User:
        """Register (or fetch) a user principal with a Kerberos agent."""
        if name in self.users:
            return self.users[name]
        principal = self.principal(name)
        key = self.kdc.database.register(principal)
        agent = KerberosClient(
            principal,
            key,
            self._fabric,
            self.clock,
            rng=self.rng.fork(b"user:" + name.encode()),
        )
        user = User(principal=principal, secret_key=key, kerberos=agent)
        self.users[name] = user
        return user

    def _server_identity(self, name: str):
        principal = self.principal(name)
        key = self.kdc.database.register(principal)
        agent = KerberosClient(
            principal,
            key,
            self._fabric,
            self.clock,
            rng=self.rng.fork(b"srv:" + name.encode()),
        )
        return principal, key, agent

    # ------------------------------------------------------------------

    def _dedupe_cache(self) -> Optional[ResponseCache]:
        if self.channel is None:
            return None
        cache = ResponseCache(self.clock)
        self.dedupe_caches.append(cache)
        return cache

    def _apply_verify_cache(self, kwargs: dict) -> dict:
        if self.verify_cache is not None:
            kwargs.setdefault("cache_config", self.verify_cache)
        if self.channel is not None:
            kwargs.setdefault("dedupe", self._dedupe_cache())
            kwargs.setdefault(
                "authority_monitor", self.channel.authority_unreachable
            )
        return kwargs

    def file_server(self, name: str, **kwargs) -> FileServer:
        principal, key, _ = self._server_identity(name)
        kwargs = self._apply_verify_cache(kwargs)
        return FileServer(
            principal,
            key,
            self._fabric,
            self.clock,
            rng=self.rng.fork(b"fs:" + name.encode()),
            **kwargs,
        )

    def print_server(self, name: str, **kwargs) -> PrintServer:
        principal, key, _ = self._server_identity(name)
        kwargs = self._apply_verify_cache(kwargs)
        return PrintServer(
            principal, key, self._fabric, self.clock, **kwargs
        )

    def name_server(self, name: str = "nameserver") -> NameServer:
        principal, _, __ = self._server_identity(name)
        return NameServer(principal, self._fabric, self.clock)

    def authorization_server(self, name: str, **kwargs) -> AuthorizationServer:
        principal, key, agent = self._server_identity(name)
        kwargs = self._apply_verify_cache(kwargs)
        return AuthorizationServer(
            principal,
            key,
            self._fabric,
            self.clock,
            kerberos=agent,
            rng=self.rng.fork(b"authz:" + name.encode()),
            **kwargs,
        )

    def group_server(self, name: str, **kwargs) -> GroupServer:
        principal, key, agent = self._server_identity(name)
        kwargs = self._apply_verify_cache(kwargs)
        return GroupServer(
            principal,
            key,
            self._fabric,
            self.clock,
            kerberos=agent,
            rng=self.rng.fork(b"grp:" + name.encode()),
            **kwargs,
        )

    def accounting_server(self, name: str, **kwargs) -> AccountingServer:
        principal, key, agent = self._server_identity(name)
        kwargs = self._apply_verify_cache(kwargs)
        return AccountingServer(
            principal,
            key,
            self._fabric,
            self.clock,
            kerberos=agent,
            rng=self.rng.fork(b"acct:" + name.encode()),
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Crash-restart (durability layer)
    # ------------------------------------------------------------------

    def _restart_identity(self, name: str):
        """Identity for a restarted server: the *same* principal and the
        *same* long-term key (re-registering would mint a fresh key and
        silently invalidate every outstanding ticket for the server —
        a crash does not rotate keys), but restart-tagged rng forks."""
        principal = self.principal(name)
        key = self.kdc.database.key_of(principal)
        count = self._restarts.get(name, 0) + 1
        self._restarts[name] = count
        tag = name.encode() + b"#%d" % count
        agent = KerberosClient(
            principal,
            key,
            self._fabric,
            self.clock,
            rng=self.rng.fork(b"srv:" + tag),
        )
        return principal, key, agent, tag

    def restart_accounting_server(self, name: str, **kwargs) -> AccountingServer:
        """Rebuild an accounting server after a simulated crash.

        The caller unregisters (or just abandons) the dead instance;
        constructing the replacement re-registers the principal's network
        handler.  Pass the dead server's ``durability`` store to recover
        its books; without one this models a server that lost everything.
        """
        principal, key, agent, tag = self._restart_identity(name)
        kwargs = self._apply_verify_cache(kwargs)
        return AccountingServer(
            principal,
            key,
            self._fabric,
            self.clock,
            kerberos=agent,
            rng=self.rng.fork(b"acct:" + tag),
            **kwargs,
        )

    def restart_file_server(self, name: str, **kwargs) -> FileServer:
        """Rebuild a file server after a simulated crash (see
        :meth:`restart_accounting_server`)."""
        principal, key, _, tag = self._restart_identity(name)
        kwargs = self._apply_verify_cache(kwargs)
        return FileServer(
            principal,
            key,
            self._fabric,
            self.clock,
            rng=self.rng.fork(b"fs:" + tag),
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Replicas (resilience layer required)
    # ------------------------------------------------------------------

    def _require_channel(self) -> ResilientChannel:
        if self.channel is None:
            raise ValueError(
                "replicas need the resilience layer: "
                "build the realm with resilience=True"
            )
        return self.channel

    def kdc_replica(self, name: str) -> KeyDistributionCenter:
        """Stand up a KDC replica behind the realm's logical KDC.

        The replica registers under its own endpoint name but shares the
        primary's principal database (any replica can issue equivalent
        tickets) and its response cache (a resend that fails over is
        still deduplicated).  The channel routes ``kdc@REALM`` traffic to
        the primary first, then to replicas in registration order.
        """
        channel = self._require_channel()
        endpoint = self.principal(name)
        replica = KeyDistributionCenter(
            self._fabric,
            self.clock,
            database=self.kdc.database,
            realm=self.realm,
            rng=self.rng.fork(b"kdc:" + name.encode()),
            dedupe=self.kdc.dedupe,
            endpoint=endpoint,
        )
        channel.add_replica(self.kdc.principal, endpoint)
        return replica

    def authorization_replica(
        self, primary: AuthorizationServer, name: str
    ) -> AuthorizationServer:
        """Stand up an authorization-server replica behind ``primary``.

        The replica serves in the primary's name with the primary's key
        (tickets clients hold stay valid), and shares its per-end-server
        databases, sessions, response cache, and audit log.
        """
        channel = self._require_channel()
        endpoint = self.principal(name)
        replica = AuthorizationServer(
            primary.principal,
            self.kdc.database.key_of(primary.principal),
            self._fabric,
            self.clock,
            kerberos=primary.kerberos,
            default_lifetime=primary.default_lifetime,
            rng=self.rng.fork(b"authz:" + name.encode()),
            dedupe=primary.dedupe,
            endpoint=endpoint,
            **(
                {"cache_config": self.verify_cache}
                if self.verify_cache is not None
                else {}
            ),
        )
        replica.databases = primary.databases
        replica.sessions = primary.sessions
        replica.audit = primary.audit
        channel.add_replica(primary.principal, endpoint)
        return replica


def federation(
    realm_names,
    seed: bytes = b"repro-federation",
    start_time: float = 1_000_000.0,
    latency: Optional[LatencyModel] = None,
    telemetry: Optional[Telemetry] = None,
) -> Dict[str, Realm]:
    """Build several realms on one network, with mutual cross-realm trust.

    Every pair of KDCs is federated (full mesh), so a client in any realm
    can obtain service tickets in any other — the paper's §1 setting of
    organizations whose "clients and servers not previously known to one
    another must interact".

        realms = federation(["A.ORG", "B.ORG"])
        alice = realms["A.ORG"].user("alice")
        shop = realms["B.ORG"].file_server("shop")
        alice.kerberos.get_ticket(shop.principal)   # cross-realm path
    """
    from repro.kerberos.kdc import federate

    root = Rng(seed=seed)
    clock = SimulatedClock(start_time)
    if telemetry is not None:
        telemetry.bind_clock(clock)
    network = Network(
        clock,
        latency=latency,
        rng=root.fork(b"net"),
        telemetry=telemetry,
    )
    realms: Dict[str, Realm] = {}
    for name in realm_names:
        realms[name] = Realm(
            seed=seed + b":" + name.encode(),
            realm=name,
            network=network,
            clock=clock,
        )
    names = list(realm_names)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            federate(realms[a].kdc, realms[b].kdc, rng=root.fork(
                b"fed:" + a.encode() + b":" + b.encode()
            ))
    return realms
