"""Causal trace store: completed spans indexed for forensic queries.

A :class:`TraceStore` subscribes to a tracer's finish hook and indexes
every completed span by trace id and by the principals it names, so the
question the paper cares about — *which chain of grants caused this
effect?* — becomes a lookup instead of a log grep.  The store answers:

* :meth:`by_trace` — every span of one logical request, in causal order;
* :meth:`by_principal` — every trace a principal participated in;
* :meth:`slowest` / :meth:`failed` — the anomalies worth a forensic look.

:func:`validate_spans` is the schema check the CI trace-smoke job runs
over a ``--jsonl`` dump: every span carries a trace id, every parent
reference resolves, and no trace is an orphan collection of spanless ids.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.obs.trace import Span

#: Span attribute keys whose values name principals (or things that act
#: like them) — the index feeding :meth:`TraceStore.by_principal`.
PRINCIPAL_ATTRS: Tuple[str, ...] = (
    "source",
    "destination",
    "service",
    "principal",
    "grantor",
    "grantee",
    "claimant",
    "subject",
    "endpoint",
    "logical",
)


class TraceStore:
    """Indexes completed spans by trace id and principal.

    Attach to a tracer with ``tracer.add_finish_listener(store.add)`` —
    the :class:`~repro.obs.telemetry.Telemetry` facade wires one up at
    construction.  The store holds references to the tracer's span
    objects; it never copies or mutates them.
    """

    def __init__(self) -> None:
        self._by_trace: Dict[str, List[Span]] = {}
        self._by_principal: Dict[str, Set[str]] = {}
        self._count = 0

    # -- ingestion -----------------------------------------------------------

    def add(self, span: Span) -> None:
        """Index one completed span (the tracer finish-listener target)."""
        if span.trace_id is None:
            return
        self._by_trace.setdefault(span.trace_id, []).append(span)
        self._count += 1
        for key in PRINCIPAL_ATTRS:
            value = span.attributes.get(key)
            if isinstance(value, str) and value:
                self._by_principal.setdefault(value, set()).add(span.trace_id)

    def extend(self, spans: Iterable[Span]) -> None:
        for span in spans:
            self.add(span)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def trace_ids(self) -> List[str]:
        """All known trace ids, in first-seen order."""
        return list(self._by_trace)

    def by_trace(self, trace_id: str) -> List[Span]:
        """Every span of one logical request, ordered by start then id.

        Accepts a unique prefix of the trace id (CLI convenience), like
        git does for commits.
        """
        spans = self._by_trace.get(trace_id)
        if spans is None:
            matches = [t for t in self._by_trace if t.startswith(trace_id)]
            if len(matches) == 1:
                spans = self._by_trace[matches[0]]
            elif len(matches) > 1:
                raise KeyError(
                    f"trace id prefix {trace_id!r} is ambiguous "
                    f"({len(matches)} matches)"
                )
            else:
                return []
        return sorted(spans, key=lambda s: (s.start, s.span_id))

    def resolve(self, prefix: str) -> Optional[str]:
        """The full trace id for a unique prefix, or None."""
        if prefix in self._by_trace:
            return prefix
        matches = [t for t in self._by_trace if t.startswith(prefix)]
        return matches[0] if len(matches) == 1 else None

    def by_principal(self, principal: str) -> List[str]:
        """Trace ids in which ``principal`` appears as a span attribute."""
        hits = self._by_principal.get(principal, set())
        return [t for t in self._by_trace if t in hits]

    def principals(self) -> List[str]:
        return sorted(self._by_principal)

    def duration_of(self, trace_id: str) -> float:
        """Wall span of a trace on the simulated clock (max end - min start)."""
        spans = self._by_trace.get(trace_id, [])
        timed = [s for s in spans if s.end is not None]
        if not timed:
            return 0.0
        return max(s.end for s in timed) - min(s.start for s in timed)

    def slowest(self, n: int = 5) -> List[Tuple[str, float]]:
        """The ``n`` longest traces as ``(trace_id, duration)`` pairs."""
        ranked = sorted(
            ((t, self.duration_of(t)) for t in self._by_trace),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[: max(0, n)]

    def failed(self) -> List[str]:
        """Trace ids containing at least one error-status span."""
        return [
            t
            for t, spans in self._by_trace.items()
            if any(s.status == "error" for s in spans)
        ]

    def clear(self) -> None:
        self._by_trace.clear()
        self._by_principal.clear()
        self._count = 0


# -- JSONL schema validation (CI trace-smoke) --------------------------------


def load_spans_jsonl(text: str) -> List[Span]:
    """Parse a spans ``--jsonl`` dump back into :class:`Span` objects."""
    spans: List[Span] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {line_no}: not JSON ({exc})") from exc
        spans.append(Span.from_dict(record))
    return spans


def validate_spans(spans: Iterable[Span]) -> List[str]:
    """Schema-check a span dump; returns human-readable violations.

    The invariants the trace-smoke CI job enforces:

    * every span carries a 32-hex ``trace_id``;
    * every non-null ``parent_id`` resolves to a span in the dump, and the
      parent belongs to the same trace;
    * every trace has exactly one local root (``parent_id`` null), unless
      the root adopted a remote parent — then the remote trace id must
      still match;
    * every finished span has ``end >= start``.
    """
    spans = list(spans)
    problems: List[str] = []
    by_id: Dict[int, Span] = {}
    for span in spans:
        if span.span_id in by_id:
            problems.append(f"span {span.span_id}: duplicate span_id")
        by_id[span.span_id] = span

    traces: Dict[str, List[Span]] = {}
    for span in spans:
        label = f"span {span.span_id} ({span.name})"
        if not isinstance(span.trace_id, str) or len(span.trace_id) != 32:
            problems.append(f"{label}: missing or malformed trace_id")
            continue
        traces.setdefault(span.trace_id, []).append(span)
        if span.parent_id is not None:
            parent = by_id.get(span.parent_id)
            if parent is None:
                problems.append(
                    f"{label}: parent_id {span.parent_id} does not resolve"
                )
            elif parent.trace_id != span.trace_id:
                problems.append(
                    f"{label}: parent {parent.span_id} is in trace "
                    f"{parent.trace_id}, not {span.trace_id}"
                )
        if span.end is not None and span.end < span.start:
            problems.append(f"{label}: end {span.end} < start {span.start}")

    for trace_id, members in traces.items():
        roots = [s for s in members if s.parent_id is None]
        if not roots:
            problems.append(f"trace {trace_id}: no root span (orphan trace)")
    return problems
