"""The :class:`Telemetry` facade — one object wired through every layer.

The network, the services, the KDC, the proxy verifier, and the audit log
all accept an optional ``Telemetry``.  A real instance bundles a
:class:`~repro.obs.trace.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry`; the default is
:data:`NO_TELEMETRY`, a null object whose every operation is a no-op, so a
realm built without telemetry behaves byte-for-byte like the seed.

Span timestamps come from the *simulated* clock (bound by the realm that
owns the telemetry), so trace timing reflects protocol shape.  Duration
histograms for compute-bound hot paths (chain verification, signatures)
are fed ``time.perf_counter`` deltas by their call sites, because those
costs are real CPU, not simulated latency.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.clock import Clock, SystemClock
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.store import TraceStore
from repro.obs.trace import Span, SpanEvent, Tracer


class _NullSpan:
    """Absorbs every span operation; falsy so callers can test for it."""

    __slots__ = ()
    span_id = None
    parent_id = None
    run_id = None
    trace_id = None
    name = "<null>"
    start = 0.0
    end = 0.0
    status = "ok"
    duration = 0.0

    @property
    def attributes(self) -> dict:
        return {}

    @property
    def events(self) -> list:
        return []

    def set(self, **attributes: object) -> None:
        pass

    def add_event(self, time: float, name: str, **attributes: object) -> None:
        pass

    def __bool__(self) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _NullContext:
    """Reusable, re-entrant context manager yielding the null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullTelemetry:
    """The default: every instrument is a no-op, and ``bool()`` is False.

    Hot paths may therefore either call through unconditionally (a null
    span context costs two attribute lookups) or guard with
    ``if telemetry:`` where even that matters.
    """

    enabled = False
    tracer = None
    metrics = None
    clock = None
    store = None
    usage = None

    def __bool__(self) -> bool:
        return False

    def bind_clock(self, clock: Clock) -> None:
        pass

    def span(self, name: str, **attributes: object) -> _NullContext:
        return _NULL_CONTEXT

    def wire_context(self) -> None:
        return None

    def current_trace_id(self) -> None:
        return None

    def run(self, label: str) -> _NullContext:
        return _NULL_CONTEXT

    def event(self, name: str, **attributes: object) -> None:
        pass

    def inc(
        self, name: str, amount: float = 1.0, help: str = "", **labels: object
    ) -> None:
        pass

    def set_gauge(
        self, name: str, value: float, help: str = "", **labels: object
    ) -> None:
        pass

    def observe(
        self,
        name: str,
        value: float,
        help: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
        exemplar: Optional[str] = None,
        **labels: object,
    ) -> None:
        pass

    def capture_crypto(self) -> None:
        pass

    def release_crypto(self) -> None:
        pass


#: The shared null instance — the default everywhere a Telemetry is accepted.
NO_TELEMETRY = NullTelemetry()


class Telemetry:
    """Live tracer + metrics registry, wired through a deployment.

    Args:
        clock: time source for span timestamps.  Usually left ``None`` and
            bound by the :class:`~repro.testbed.Realm` that adopts this
            telemetry (so spans use the realm's simulated clock).
        capture_crypto: install a process-wide observer on
            :mod:`repro.crypto.signature` so every sign/verify lands in the
            ``signature_seconds`` histogram.  Process-wide because signers
            are value objects with no back-pointer to a deployment; release
            with :meth:`release_crypto` (or let the next capture replace it).
        meter_usage: attach a :class:`~repro.obs.usage.UsageMeter` as
            ``self.usage`` — the network, services, and crypto observer
            then attribute wire bytes, handler time, and sign/verify time
            to the responsible principal (§4 usage accounting).  Default
            off: metering costs a dict update per wire message.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Clock] = None,
        capture_crypto: bool = False,
        meter_usage: bool = False,
    ) -> None:
        self._clock_pinned = clock is not None
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.tracer = Tracer(now=lambda: self.clock.now())
        self.metrics = MetricsRegistry()
        self.store = TraceStore()
        self.tracer.add_finish_listener(self.store.add)
        self.usage = None
        if meter_usage:
            from repro.obs.usage import UsageMeter

            self.usage = UsageMeter(now=lambda: self.clock.now())
            self.usage.attach(self)
            self.tracer.add_finish_listener(self.usage.on_span_finish)
        self._crypto_captured = False
        if capture_crypto:
            self.capture_crypto()

    def __bool__(self) -> bool:
        return True

    def bind_clock(self, clock: Clock) -> None:
        """Adopt a deployment's clock unless one was pinned at construction."""
        if not self._clock_pinned:
            self.clock = clock
            self._clock_pinned = True

    # -- tracing -------------------------------------------------------------

    def span(self, name: str, **attributes: object):
        return self.tracer.span(name, **attributes)

    def run(self, label: str):
        return self.tracer.run(label)

    def event(self, name: str, **attributes: object) -> SpanEvent:
        return self.tracer.event(name, **attributes)

    def wire_context(self) -> Optional[str]:
        """The traceparent header the active span would stamp on a wire
        message, or None outside any span."""
        context = self.tracer.current_context()
        return context.to_header() if context is not None else None

    def current_trace_id(self) -> Optional[str]:
        """Trace id of the logical request currently in flight, if any."""
        return self.tracer.current_trace_id()

    # -- metrics -------------------------------------------------------------

    def inc(
        self, name: str, amount: float = 1.0, help: str = "", **labels: object
    ) -> None:
        self.metrics.counter(name, help=help).inc(amount, **labels)

    def set_gauge(
        self, name: str, value: float, help: str = "", **labels: object
    ) -> None:
        self.metrics.gauge(name, help=help).set(value, **labels)

    def observe(
        self,
        name: str,
        value: float,
        help: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
        exemplar: Optional[str] = None,
        **labels: object,
    ) -> None:
        if exemplar is None:
            exemplar = self.tracer.current_trace_id()
        self.metrics.histogram(name, help=help, buckets=buckets).observe(
            value, exemplar=exemplar, **labels
        )

    # -- crypto hot-path capture ---------------------------------------------

    def capture_crypto(self) -> None:
        from repro.crypto import signature as _signature

        def observer(scheme: str, op: str, seconds: float, ok: bool) -> None:
            self.inc(
                "signature_operations_total",
                help="Signature creations/verifications by scheme.",
                scheme=scheme,
                op=op,
                outcome="ok" if ok else "fail",
            )
            self.observe(
                "signature_seconds",
                seconds,
                help="Wall time per signature operation.",
                buckets=LATENCY_BUCKETS,
                scheme=scheme,
                op=op,
            )
            if self.usage is not None:
                self.usage.on_crypto(
                    scheme,
                    op,
                    seconds,
                    ok,
                    trace_id=self.tracer.current_trace_id(),
                    spans=self.tracer.active_spans(),
                )

        def cache_observer(event: str, scheme: str) -> None:
            if event == "evict":
                self.inc(
                    "vcache.evictions",
                    help="Verification cache evictions, by layer.",
                    layer="sig",
                )
            else:
                self.inc(
                    f"vcache.sig.{event}",
                    help="Signature memoization cache hits/misses.",
                    scheme=scheme,
                )
                # Pin the hit/miss to the request being served so a trace
                # shows which verifications the memo absorbed.
                if self.tracer.current_span is not None:
                    self.event(f"vcache.sig.{event}", scheme=scheme)

        _signature.set_signature_observer(observer)
        _signature.set_signature_cache_observer(cache_observer)
        self._crypto_captured = True

    def release_crypto(self) -> None:
        if self._crypto_captured:
            from repro.crypto import signature as _signature

            _signature.set_signature_observer(None)
            _signature.set_signature_cache_observer(None)
            self._crypto_captured = False

    # -- convenience exports (thin wrappers over repro.obs.export) -----------

    def spans_jsonl(self) -> str:
        from repro.obs.export import spans_to_jsonl

        return spans_to_jsonl(self.tracer.spans)

    def render_tree(self) -> str:
        from repro.obs.export import render_span_tree

        return render_span_tree(self.tracer.spans)

    def render_message_trace(self) -> str:
        from repro.obs.export import render_message_trace

        return render_message_trace(self.tracer.spans)

    def prometheus(self) -> str:
        from repro.obs.export import prometheus_text

        return prometheus_text(self.metrics)
