"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The paper's claims are protocol-shape claims, and the ROADMAP's are
performance claims; both need numbers collected *where the work happens*
rather than reconstructed afterwards.  This registry is deliberately small —
three metric kinds, label sets as plain keyword arguments, and a
Prometheus-compatible data model so :func:`repro.obs.export.prometheus_text`
can expose everything in one pass:

* **Counter** — monotonically increasing totals (messages sent, tickets
  issued, checks cleared).
* **Gauge** — last-written values (open sessions, account balances).
* **Histogram** — observations bucketed into *fixed* upper bounds chosen at
  registration, plus a running sum and count.  Fixed buckets keep every
  observation O(len(buckets)) and make two exports directly comparable.

Everything is in-process and synchronous; the simulator is single-threaded
by construction, so there are no locks on the hot path.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str) -> str:
    """Sanitize a metric name for the Prometheus exposition format.

    Internal names use dots for namespacing (``vcache.sig.hit``); the
    exposition format only allows ``[a-zA-Z0-9_:]``, so dots and any
    other stray characters become underscores.
    """
    sanitized = _PROM_NAME_BAD.sub("_", name.replace(".", "_"))
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized

#: Default histogram buckets for durations in seconds — spans six decades
#: because a signature verify is microseconds while a cascaded protocol run
#: with simulated latency is tens of milliseconds.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Default histogram buckets for wire sizes in bytes.
SIZE_BUCKETS: Tuple[float, ...] = (
    64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base for one named metric family (all label combinations)."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def series(self) -> Iterable[Tuple[LabelKey, object]]:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing total, per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def series(self) -> Iterable[Tuple[LabelKey, float]]:
        return sorted(self._values.items())


class Gauge(Metric):
    """A value that may go up or down, per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: object) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def series(self) -> Iterable[Tuple[LabelKey, float]]:
        return sorted(self._values.items())


class HistogramSeries:
    """Bucket counts, sum, count, and exemplars for one label combination.

    ``exemplars`` maps a bucket index (``len(bounds)`` is the implicit
    ``+Inf`` bucket) to the most recent ``(trace_id, value)`` observed
    *natively* in that bucket — the OpenMetrics idea that a latency
    outlier in a bucket should link to one full causal trace.
    """

    __slots__ = ("bucket_counts", "sum", "count", "exemplars")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts: List[int] = [0] * n_buckets
        self.sum = 0.0
        self.count = 0
        self.exemplars: Dict[int, Tuple[str, float]] = {}

    def observe(
        self,
        value: float,
        bounds: Tuple[float, ...],
        exemplar: Optional[str] = None,
    ) -> None:
        self.sum += value
        self.count += 1
        native = len(bounds)  # +Inf unless a finite bucket claims it
        for i, bound in enumerate(bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                native = min(native, i)
        if exemplar:
            self.exemplars[native] = (exemplar, value)

    def cumulative(self) -> List[int]:
        """Cumulative per-bucket counts, Prometheus style (le semantics)."""
        return self.bucket_counts


class Histogram(Metric):
    """Fixed-bucket histogram, per label set.

    ``buckets`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    (``count``) always exists.  Bucket counts are stored cumulatively, as
    the Prometheus exposition format expects.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._series: Dict[LabelKey, HistogramSeries] = {}

    def observe(
        self, value: float, exemplar: Optional[str] = None, **labels: object
    ) -> None:
        """Record ``value``; ``exemplar`` is the observing request's
        trace id, remembered per bucket for outlier-to-trace joins."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = HistogramSeries(len(self.buckets))
        series.observe(float(value), self.buckets, exemplar=exemplar)

    def count(self, **labels: object) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum if series is not None else 0.0

    def total_count(self) -> int:
        return sum(s.count for s in self._series.values())

    def series(self) -> Iterable[Tuple[LabelKey, HistogramSeries]]:
        return sorted(self._series.items(), key=lambda item: item[0])


class MetricsRegistry:
    """Named metrics, created on first use and re-fetched thereafter.

    Re-registering a name with a different kind is a programming error and
    raises; re-registering with the same kind returns the existing family
    (help text and buckets from the first registration win).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _register(self, cls, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help=help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, buckets=buckets or LATENCY_BUCKETS
        )

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def families(self) -> Iterable[Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def clear(self) -> None:
        self._metrics.clear()
