"""Observability: span tracing, metrics, and exportable telemetry.

Everything the reproduction claims is a claim about *protocol shape* —
message counts, hops, who verified what, online vs. offline — and
everything the ROADMAP wants to optimize is a claim about *where time
goes*.  This package instruments both:

* :mod:`repro.obs.trace` — span-based tracing with parent/child links, so
  one protocol run renders as a single tree;
* :mod:`repro.obs.context` — W3C-traceparent-style :class:`TraceContext`
  stamped on wire messages, so retries, failovers, cascaded hops, and
  ledger postings all join on one trace id;
* :mod:`repro.obs.store` — the :class:`TraceStore`: completed spans
  indexed by trace id and principal for forensic queries;
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket histograms
  with per-bucket trace-id exemplars;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade threaded
  through the network, services, KDC, and verifier (default
  :data:`NO_TELEMETRY`, a strict no-op);
* :mod:`repro.obs.export` — JSON-lines traces, Prometheus text exposition,
  and human-readable trace/figure/waterfall renderers;
* :mod:`repro.obs.figures` — runnable paper-figure protocols for
  ``python -m repro trace <figure>``;
* :mod:`repro.obs.usage` — the :class:`UsageMeter`: wire bytes, crypto
  and handler time, retries, and degraded grants attributed to the
  *responsible principal*, priced by a :class:`Tariff` and postable
  into the ledger as conserved charges (§4 usage accounting);
* :mod:`repro.obs.profile` — folds finished spans into a self-time call
  tree with folded-stack / speedscope flame-graph export.
"""

from repro.obs.context import TraceContext, span_hex_id
from repro.obs.export import (
    prometheus_text,
    render_message_trace,
    render_span_tree,
    render_trace_waterfall,
    spans_to_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    SIZE_BUCKETS,
)
from repro.obs.profile import (
    folded_stacks,
    frame_name,
    render_call_tree,
    self_times,
    speedscope_document,
)
from repro.obs.store import TraceStore, load_spans_jsonl, validate_spans
from repro.obs.telemetry import NO_TELEMETRY, NullTelemetry, Telemetry
from repro.obs.trace import Span, SpanEvent, Tracer
from repro.obs.usage import (
    QuantileDigest,
    Tariff,
    UsageMeter,
    UsageRecord,
    post_usage_charges,
)

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NO_TELEMETRY",
    "Tracer",
    "Span",
    "SpanEvent",
    "TraceContext",
    "TraceStore",
    "span_hex_id",
    "load_spans_jsonl",
    "validate_spans",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "spans_to_jsonl",
    "render_span_tree",
    "render_message_trace",
    "render_trace_waterfall",
    "prometheus_text",
    "UsageMeter",
    "UsageRecord",
    "QuantileDigest",
    "Tariff",
    "post_usage_charges",
    "folded_stacks",
    "frame_name",
    "render_call_tree",
    "self_times",
    "speedscope_document",
]
