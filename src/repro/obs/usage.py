"""Per-principal resource metering and cost attribution (§4).

The paper's accounting vision is that servers *charge principals for the
resources their requests consume*.  The rest of the obs stack measures
the system in aggregate; this module answers *who caused the work*:

* :class:`UsageMeter` attributes wire bytes, message counts, crypto
  sign/verify time, handler self-time, retries, and degraded grants to
  the **responsible principal and operation** — the principal whose
  request opened the trace, keyed off the trace context every wire
  message already carries.  A nested Fig. 5 clearing hop
  (bank-payee → bank-payor) is therefore billed to the *payee* who
  deposited the check, not to the bank that forwarded it.
* :class:`QuantileDigest` is a streaming log-bucket percentile estimate:
  per-principal p50/p95/p99 request latency without storing raw samples.
* :class:`Tariff` prices a usage record in integer currency units, and
  :func:`post_usage_charges` posts the result through the
  :class:`~repro.ledger.ledger.Ledger` as ordinary conserved transfer
  postings — "accounting for resources" as an end-to-end, machine-checked
  flow.

Two time bases coexist, mirroring the telemetry layer's rule: byte
counts, message counts, retries, degraded grants, and latency digests
are driven by the *simulated* clock and are therefore deterministic per
seed; crypto and handler self-time are real ``time.perf_counter`` CPU
measurements.  :meth:`UsageMeter.report` excludes the CPU columns by
default so the default report is byte-identical across runs of the same
seed (pass ``include_cpu=True`` for the full picture).
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import LATENCY_BUCKETS

#: (principal, operation) — the attribution key for every metered cost.
UsageKey = Tuple[str, str]

#: Attribution for work no trace or span can name.
UNATTRIBUTED = "(unattributed)"

#: The server-owned account usage charges accrue to (§4).
REVENUE_ACCOUNT = "usage:revenue"

#: Span attribute keys consulted (in order) to resolve a responsible
#: principal when the trace registered no wire sender — the offline
#: figures (fig1/fig4) never touch the network, so their crypto time is
#: attributed to the grantor whose chain is being verified.
_PRINCIPAL_ATTRS = ("principal", "claimant", "source", "grantor", "service")

#: Span event names folded into usage counters at span finish.
_RETRY_EVENT = "resil.retry"
_DEGRADED_EVENT = "degraded.grant"


@dataclass
class UsageRecord:
    """Accumulated resource usage for one (principal, operation) key.

    ``messages``/``bytes_*``/``retries``/``degraded_grants`` are
    deterministic per seed; ``crypto_seconds``/``handler_seconds`` are
    real CPU time (see module docstring).
    """

    messages: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    crypto_ops: int = 0
    crypto_seconds: float = 0.0
    handler_seconds: float = 0.0
    retries: int = 0
    degraded_grants: int = 0

    @property
    def bytes_total(self) -> int:
        return self.bytes_sent + self.bytes_received

    def merge(self, other: "UsageRecord") -> None:
        for f in fields(self):
            setattr(
                self, f.name, getattr(self, f.name) + getattr(other, f.name)
            )

    def to_dict(self, include_cpu: bool = False) -> dict:
        out = {
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "retries": self.retries,
            "degraded_grants": self.degraded_grants,
        }
        if include_cpu:
            out["crypto_ops"] = self.crypto_ops
            out["crypto_seconds"] = self.crypto_seconds
            out["handler_seconds"] = self.handler_seconds
        return out


class QuantileDigest:
    """Streaming percentile estimate over fixed log-spaced buckets.

    Observations land in geometric buckets spanning ``low``..``high``
    seconds; :meth:`quantile` answers with the upper bound of the bucket
    containing the requested rank.  Bounded memory, no raw samples, and
    fully deterministic — the properties the per-principal latency
    digest needs.
    """

    def __init__(
        self,
        low: float = 1e-6,
        high: float = 100.0,
        bins_per_decade: int = 16,
    ) -> None:
        if low <= 0 or high <= low:
            raise ValueError("need 0 < low < high")
        decades = math.log10(high / low)
        n = int(math.ceil(decades * bins_per_decade))
        ratio = 10.0 ** (1.0 / bins_per_decade)
        self.bounds: Tuple[float, ...] = tuple(
            low * ratio**i for i in range(n + 1)
        )
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value (bisect, kept dependency-free)
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1

    def quantile(self, q: float) -> float:
        """The q-quantile (0 < q <= 1) as a bucket upper bound."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.count == 0:
            return 0.0
        target = math.ceil(q * self.count)
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.bounds[-1]  # overflow bucket: clamp to the top
        return self.bounds[-1]  # pragma: no cover - seen always reaches count


class UsageMeter:
    """Attributes metered resource usage to (principal, operation).

    Attribution rule: the first *request-leg* wire message of a trace
    registers its sender and message type as the trace's owner; every
    subsequent cost in that trace — nested hops, responses, retries,
    crypto time, handler time — bills to that owner.  Work outside any
    registered trace falls back to span attributes (grantor, claimant,
    …) and finally to :data:`UNATTRIBUTED`.

    Byte and message totals are recorded at exactly the same point as
    the network's own counters (one call per wire message, same
    ``wire_size``), so ``total_bytes()`` reconciles exactly with
    ``network_bytes_total`` / :class:`~repro.net.metrics.NetworkMetrics`.
    """

    def __init__(
        self,
        now: Optional[Callable[[], float]] = None,
        window_seconds: float = 60.0,
        window_buckets: int = 15,
        max_traces: int = 4096,
    ) -> None:
        self._now = now or time.monotonic
        self.window_seconds = window_seconds
        self.window_buckets = window_buckets
        self.records: Dict[UsageKey, UsageRecord] = {}
        self.digests: Dict[str, QuantileDigest] = {}
        #: trace_id -> owning (principal, operation); bounded FIFO.
        self._owners: "OrderedDict[str, UsageKey]" = OrderedDict()
        self._max_traces = max_traces
        #: span_id -> accumulated child durations (self-time folding).
        self._child_time: Dict[int, float] = {}
        #: perf-counter frames for nested handler self-time.
        self._handler_stack: List[List[float]] = []
        #: (bucket_start, per-key records) ring, newest last.
        self._window: Deque[Tuple[float, Dict[UsageKey, UsageRecord]]] = (
            deque(maxlen=window_buckets)
        )
        self._telemetry = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, telemetry) -> None:
        """Mirror usage into ``telemetry``'s metrics registry as it accrues."""
        self._telemetry = telemetry

    # -- attribution ----------------------------------------------------------

    def owner_of(self, trace_id: Optional[str]) -> Optional[UsageKey]:
        if trace_id is None:
            return None
        return self._owners.get(trace_id)

    def _register_owner(self, trace_id: str, key: UsageKey) -> None:
        if trace_id in self._owners:
            return
        self._owners[trace_id] = key
        while len(self._owners) > self._max_traces:
            self._owners.popitem(last=False)

    def _resolve(
        self,
        trace_id: Optional[str],
        spans=(),
        fallback: Optional[UsageKey] = None,
    ) -> UsageKey:
        """Owner of ``trace_id``, else the innermost span naming a
        principal, else ``fallback``/unattributed."""
        owner = self.owner_of(trace_id)
        if owner is not None:
            return owner
        for span in reversed(list(spans)):
            attrs = getattr(span, "attributes", None) or {}
            for attr in _PRINCIPAL_ATTRS:
                value = attrs.get(attr)
                if isinstance(value, str) and value:
                    operation = attrs.get("operation") or attrs.get(
                        "msg_type"
                    )
                    return (value, str(operation or span.name))
        return fallback or (UNATTRIBUTED, UNATTRIBUTED)

    # -- accumulation ---------------------------------------------------------

    def _bucket(self) -> Dict[UsageKey, UsageRecord]:
        """The current sliding-window bucket's per-key records."""
        now = self._now()
        start = (
            math.floor(now / self.window_seconds) * self.window_seconds
            if self.window_seconds > 0
            else now
        )
        if not self._window or self._window[-1][0] != start:
            self._window.append((start, {}))
        return self._window[-1][1]

    def _update(self, key: UsageKey, **deltas) -> UsageRecord:
        record = self.records.get(key)
        if record is None:
            record = self.records[key] = UsageRecord()
        windowed = self._bucket().setdefault(key, UsageRecord())
        for name, delta in deltas.items():
            setattr(record, name, getattr(record, name) + delta)
            setattr(windowed, name, getattr(windowed, name) + delta)
        return record

    # -- meter inputs (called by the telemetry/network/service layers) --------

    def on_wire(
        self,
        trace_id: Optional[str],
        source: str,
        destination: str,
        msg_type: str,
        size: int,
        response: bool = False,
    ) -> None:
        """Meter one wire message (called once per message, request and
        response legs alike, at the network's own metering point)."""
        if not response:
            key = (source, msg_type)
            if trace_id is not None:
                self._register_owner(trace_id, key)
                key = self._owners[trace_id]
            self._update(key, messages=1, bytes_sent=size)
            leg = "request"
        else:
            fallback = (destination, msg_type.replace("-reply", "", 1))
            key = self.owner_of(trace_id) or fallback
            self._update(key, messages=1, bytes_received=size)
            leg = "response"
        t = self._telemetry
        if t is not None:
            principal, operation = key
            t.inc(
                "usage.messages_total",
                help="Wire messages attributed to a responsible principal.",
                principal=principal,
                operation=operation,
                leg=leg,
            )
            t.inc(
                "usage.bytes_total",
                size,
                help="Wire bytes attributed to a responsible principal.",
                principal=principal,
                operation=operation,
                leg=leg,
            )

    def on_crypto(
        self,
        scheme: str,
        op: str,
        seconds: float,
        ok: bool,
        trace_id: Optional[str] = None,
        spans=(),
    ) -> None:
        """Attribute one sign/verify operation (signature-observer feed)."""
        key = self._resolve(trace_id, spans)
        self._update(key, crypto_ops=1, crypto_seconds=seconds)

    @contextmanager
    def handler_timing(
        self, trace_id: Optional[str], service: str, msg_type: str
    ) -> Iterator[None]:
        """Measure a handler dispatch's *self* CPU time.

        Nested dispatches (a clearing hop handled inside the deposit
        handler) subtract from the enclosing frame, so each handler is
        billed only for its own work.
        """
        frame = [time.perf_counter(), 0.0]
        self._handler_stack.append(frame)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - frame[0]
            self._handler_stack.pop()
            if self._handler_stack:
                self._handler_stack[-1][1] += elapsed
            key = self._resolve(trace_id, fallback=(service, msg_type))
            self._update(
                key, handler_seconds=max(elapsed - frame[1], 0.0)
            )

    def on_span_finish(self, span) -> None:
        """Tracer finish-listener: latency digests and event counters.

        Folds child durations into parents for self-time bookkeeping
        (children always finish first in the synchronous simulator),
        records ``net.send`` durations into the owner's latency digest,
        and counts retry / degraded-grant events.
        """
        self._child_time.pop(span.span_id, 0.0)
        if span.parent_id is not None:
            self._child_time[span.parent_id] = (
                self._child_time.get(span.parent_id, 0.0) + span.duration
            )
        if span.name == "net.send":
            key = self._resolve(span.trace_id, spans=(span,))
            digest = self.digests.get(key[0])
            if digest is None:
                digest = self.digests[key[0]] = QuantileDigest()
            digest.observe(span.duration)
            t = self._telemetry
            if t is not None:
                t.observe(
                    "usage.request_seconds",
                    span.duration,
                    help="Round-trip time of wire sends, by responsible "
                    "principal.",
                    buckets=LATENCY_BUCKETS,
                    exemplar=span.trace_id,
                    principal=key[0],
                )
        retries = degraded = 0
        for event in span.events:
            if event.name == _RETRY_EVENT:
                retries += 1
            elif event.name == _DEGRADED_EVENT:
                degraded += 1
        if retries or degraded:
            key = self._resolve(span.trace_id, spans=(span,))
            self._update(key, retries=retries, degraded_grants=degraded)
            t = self._telemetry
            if t is not None:
                if retries:
                    t.inc(
                        "usage.retries_total",
                        retries,
                        help="Retried sends attributed to a responsible "
                        "principal.",
                        principal=key[0],
                        operation=key[1],
                    )
                if degraded:
                    t.inc(
                        "usage.degraded_grants_total",
                        degraded,
                        help="Degraded-mode grants attributed to a "
                        "responsible principal.",
                        principal=key[0],
                        operation=key[1],
                    )

    # -- queries --------------------------------------------------------------

    def total_messages(self) -> int:
        return sum(r.messages for r in self.records.values())

    def total_bytes(self) -> int:
        return sum(r.bytes_total for r in self.records.values())

    def by_principal(self) -> Dict[str, UsageRecord]:
        """Per-principal usage, operations merged."""
        out: Dict[str, UsageRecord] = {}
        for (principal, _), record in self.records.items():
            merged = out.setdefault(principal, UsageRecord())
            merged.merge(record)
        return out

    def window_totals(
        self, seconds: Optional[float] = None
    ) -> Dict[UsageKey, UsageRecord]:
        """Usage accumulated in the trailing ``seconds`` (default: the
        whole ring, ``window_buckets * window_seconds``)."""
        if seconds is None:
            seconds = self.window_seconds * self.window_buckets
        cutoff = self._now() - seconds
        out: Dict[UsageKey, UsageRecord] = {}
        for start, bucket in self._window:
            if start + self.window_seconds <= cutoff:
                continue
            for key, record in bucket.items():
                out.setdefault(key, UsageRecord()).merge(record)
        return out

    def percentiles(self, principal: str) -> Tuple[float, float, float]:
        """(p50, p95, p99) request latency for ``principal``, seconds."""
        digest = self.digests.get(principal)
        if digest is None or digest.count == 0:
            return (0.0, 0.0, 0.0)
        return (
            digest.quantile(0.50),
            digest.quantile(0.95),
            digest.quantile(0.99),
        )

    def to_json(self, include_cpu: bool = False) -> dict:
        """A JSON-friendly dump; deterministic per seed unless
        ``include_cpu`` adds the real-CPU fields."""
        records = [
            {"principal": p, "operation": o, **r.to_dict(include_cpu)}
            for (p, o), r in sorted(self.records.items())
        ]
        principals = {}
        for principal, record in sorted(self.by_principal().items()):
            p50, p95, p99 = self.percentiles(principal)
            principals[principal] = {
                **record.to_dict(include_cpu),
                "latency_p50": p50,
                "latency_p95": p95,
                "latency_p99": p99,
            }
        return {
            "records": records,
            "principals": principals,
            "totals": {
                "messages": self.total_messages(),
                "bytes": self.total_bytes(),
            },
        }

    def report(
        self,
        top: Optional[int] = None,
        principal: Optional[str] = None,
        include_cpu: bool = False,
    ) -> str:
        """Human-readable per-principal usage table.

        Deterministic per seed by default; ``include_cpu`` appends the
        measured crypto/handler CPU columns (see module docstring).
        """
        rows = sorted(
            self.records.items(),
            key=lambda item: (-item[1].bytes_total, item[0]),
        )
        if principal is not None:
            rows = [r for r in rows if r[0][0] == principal]
        if top is not None:
            rows = rows[:top]
        header = (
            f"{'principal':<20} {'operation':<24} {'msgs':>5} "
            f"{'sent(B)':>8} {'recv(B)':>8} {'retry':>5} {'degr':>4} "
            f"{'p50(s)':>9} {'p95(s)':>9} {'p99(s)':>9}"
        )
        if include_cpu:
            header += f" {'crypto(ms)':>10} {'handler(ms)':>11}"
        lines = [header, "-" * len(header)]
        for (who, op), record in rows:
            p50, p95, p99 = self.percentiles(who)
            line = (
                f"{who:<20} {op:<24} {record.messages:>5} "
                f"{record.bytes_sent:>8} {record.bytes_received:>8} "
                f"{record.retries:>5} {record.degraded_grants:>4} "
                f"{p50:>9.6f} {p95:>9.6f} {p99:>9.6f}"
            )
            if include_cpu:
                line += (
                    f" {record.crypto_seconds * 1000:>10.3f}"
                    f" {record.handler_seconds * 1000:>11.3f}"
                )
            lines.append(line)
        lines.append(
            f"totals: {self.total_messages()} messages, "
            f"{self.total_bytes()} bytes"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Cost attribution: tariff pricing and ledger charge postings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Tariff:
    """Integer prices per metered unit (ledger amounts are integers).

    Fractional units round *up* (``ceil``): a principal who caused any
    work at all is charged at least one unit of it, and the sum of
    per-principal charges can never undercount the metered total.
    """

    currency: str = "credits"
    per_message: int = 1
    per_kib: int = 1
    per_crypto_ms: int = 2
    per_handler_ms: int = 1
    per_retry: int = 1
    per_degraded_grant: int = 5

    def price(self, record: UsageRecord) -> int:
        cost = record.messages * self.per_message
        if record.bytes_total:
            cost += math.ceil(record.bytes_total / 1024) * self.per_kib
        if record.crypto_seconds > 0:
            cost += (
                math.ceil(record.crypto_seconds * 1000.0)
                * self.per_crypto_ms
            )
        if record.handler_seconds > 0:
            cost += (
                math.ceil(record.handler_seconds * 1000.0)
                * self.per_handler_ms
            )
        cost += record.retries * self.per_retry
        cost += record.degraded_grants * self.per_degraded_grant
        return cost

    def to_dict(self) -> dict:
        return {
            "currency": self.currency,
            "per_message": self.per_message,
            "per_kib": self.per_kib,
            "per_crypto_ms": self.per_crypto_ms,
            "per_handler_ms": self.per_handler_ms,
            "per_retry": self.per_retry,
            "per_degraded_grant": self.per_degraded_grant,
        }


@dataclass(frozen=True)
class Charge:
    """One priced, posted usage charge."""

    principal: str
    amount: int
    currency: str
    posting_id: int


def post_usage_charges(
    ledger,
    meter: UsageMeter,
    tariff: Optional[Tariff] = None,
    period: str = "",
    revenue_account: str = REVENUE_ACCOUNT,
) -> List[Charge]:
    """Price the meter's per-principal usage and post conserved charges.

    Each charge is an ordinary balanced transfer — debit the principal's
    account, credit ``revenue_account`` — applied atomically by
    :meth:`~repro.ledger.ledger.Ledger.post`, so
    ``audit_discrepancies()`` machine-checks that charging changed no
    totals.  ``period`` makes charges idempotent: re-charging the same
    period dedupes instead of double-billing.  Accounts must already
    exist and be funded; see ``AccountingServer.charge_usage`` for the
    variant that provisions them.
    """
    from repro.ledger.posting import usage_charge

    tariff = tariff or Tariff()
    charges: List[Charge] = []
    for principal, record in sorted(meter.by_principal().items()):
        amount = tariff.price(record)
        if amount <= 0:
            continue
        posting = usage_charge(
            principal,
            revenue_account,
            tariff.currency,
            amount,
            description=f"usage charge {principal}"
            + (f" [{period}]" if period else ""),
        )
        dedupe_key = f"usage:{period}:{principal}" if period else None
        posted = ledger.post(posting, dedupe_key=dedupe_key)
        charges.append(
            Charge(
                principal=principal,
                amount=amount,
                currency=tariff.currency,
                posting_id=posted.posting_id,
            )
        )
    return charges


def charges_to_json(charges: List[Charge]) -> List[dict]:
    return [
        {
            "principal": c.principal,
            "amount": c.amount,
            "currency": c.currency,
            "posting_id": c.posting_id,
        }
        for c in charges
    ]


__all__ = [
    "Charge",
    "QuantileDigest",
    "REVENUE_ACCOUNT",
    "Tariff",
    "UNATTRIBUTED",
    "UsageKey",
    "UsageMeter",
    "UsageRecord",
    "charges_to_json",
    "post_usage_charges",
]
