"""Span-based protocol tracing.

One protocol run — a Fig. 3 authorization, a Fig. 4 cascade, a Fig. 5
check-clearing — is a tree of nested activities: a client call opens a
network send, which opens a service dispatch, which may verify a proxy
chain, which may recursively call other servers.  A :class:`Span` records
one such activity with simulated-clock start/end times, free-form
attributes (principal ids, message types, restriction outcomes), and point
:class:`SpanEvent`\\ s; parent/child links make the whole run render as a
single tree.

The simulator is synchronous and single-threaded, so the active-span stack
*is* the call stack — no context propagation machinery is needed.  Spans
are grouped into protocol **runs** (:meth:`Tracer.run`): every span started
inside the run carries its id, which is how audit records, metrics deltas,
and trace trees are correlated.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation on a span (e.g. an audit record)."""

    time: float
    name: str
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "name": self.name,
            "attributes": dict(self.attributes),
        }


class Span:
    """One timed activity in a protocol run."""

    __slots__ = (
        "span_id",
        "parent_id",
        "run_id",
        "name",
        "start",
        "end",
        "attributes",
        "events",
        "status",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        run_id: Optional[str],
        name: str,
        start: float,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.run_id = run_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.events: List[SpanEvent] = []
        self.status = "ok"

    def set(self, **attributes: object) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attributes.update(attributes)

    def add_event(
        self, time: float, name: str, **attributes: object
    ) -> SpanEvent:
        event = SpanEvent(time=time, name=name, attributes=dict(attributes))
        self.events.append(event)
        return event

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "run_id": self.run_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": {k: _plain(v) for k, v in self.attributes.items()},
            "events": [e.to_dict() for e in self.events],
        }

    def __repr__(self) -> str:
        return (
            f"Span(id={self.span_id}, name={self.name!r}, "
            f"parent={self.parent_id}, status={self.status})"
        )


def _plain(value: object) -> object:
    """Coerce attribute values to JSON-friendly plain types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return str(value)


class Tracer:
    """Collects spans; owns the active-span stack and run ids.

    Args:
        now: time source for span timestamps.  Inject the simulated clock's
            ``now`` so trace timing is a consequence of message count and
            the latency model, exactly like protocol latency itself.
    """

    def __init__(self, now: Callable[[], float]) -> None:
        self._now = now
        self.spans: List[Span] = []
        self.orphan_events: List[SpanEvent] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self._run_counter = 0
        self._run_id: Optional[str] = None

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a child span of whatever span is currently active."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            run_id=self._run_id,
            name=name,
            start=self._now(),
            attributes=attributes,
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attributes.setdefault(
                "error", f"{type(exc).__name__}: {exc}"
            )
            raise
        finally:
            span.end = self._now()
            self._stack.pop()

    @contextmanager
    def run(self, label: str) -> Iterator[Span]:
        """Group everything inside as one protocol run (a root span)."""
        self._run_counter += 1
        run_id = f"run-{self._run_counter}:{label}"
        previous = self._run_id
        self._run_id = run_id
        try:
            with self.span(f"run:{label}", run=run_id) as span:
                yield span
        finally:
            self._run_id = previous

    def event(self, name: str, **attributes: object) -> SpanEvent:
        """Record a point event on the current span (or as an orphan)."""
        if self._stack:
            return self._stack[-1].add_event(self._now(), name, **attributes)
        event = SpanEvent(
            time=self._now(), name=name, attributes=dict(attributes)
        )
        self.orphan_events.append(event)
        return event

    # -- inspection ----------------------------------------------------------

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @property
    def current_run_id(self) -> Optional[str]:
        return self._run_id

    def finished_spans(self) -> List[Span]:
        return [s for s in self.spans if s.end is not None]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def spans_in_run(self, run_id: str) -> List[Span]:
        return [s for s in self.spans if s.run_id == run_id]

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def clear(self) -> None:
        """Drop recorded spans (open spans on the stack are kept)."""
        self.spans = [s for s in self.spans if s.end is None]
        self.orphan_events.clear()
