"""Span-based protocol tracing.

One protocol run — a Fig. 3 authorization, a Fig. 4 cascade, a Fig. 5
check-clearing — is a tree of nested activities: a client call opens a
network send, which opens a service dispatch, which may verify a proxy
chain, which may recursively call other servers.  A :class:`Span` records
one such activity with simulated-clock start/end times, free-form
attributes (principal ids, message types, restriction outcomes), and point
:class:`SpanEvent`\\ s; parent/child links make the whole run render as a
single tree.

The simulator is synchronous and single-threaded, so the active-span stack
*is* the call stack — no context propagation machinery is needed in
process.  Across the *wire*, causality rides a W3C-traceparent-style
:class:`~repro.obs.context.TraceContext`: every span carries the
``trace_id`` of the logical request it serves (inherited from its parent,
adopted from a wire context, or freshly drawn from the tracer's seeded
rng), so retries, failovers, cascaded hops, and ledger postings all join
on one id.  Spans are also grouped into protocol **runs**
(:meth:`Tracer.run`): every span started inside the run carries its id,
which is how audit records, metrics deltas, and trace trees are
correlated.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.obs.context import TraceContext, span_hex_id


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time annotation on a span (e.g. an audit record)."""

    time: float
    name: str
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "name": self.name,
            "attributes": dict(self.attributes),
        }


class Span:
    """One timed activity in a protocol run."""

    __slots__ = (
        "span_id",
        "parent_id",
        "run_id",
        "trace_id",
        "remote_parent",
        "name",
        "start",
        "end",
        "attributes",
        "events",
        "status",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        run_id: Optional[str],
        name: str,
        start: float,
        attributes: Optional[Dict[str, object]] = None,
        trace_id: Optional[str] = None,
        remote_parent: Optional[str] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.run_id = run_id
        #: The logical request this span serves; every span has one.
        self.trace_id = trace_id
        #: Wire span id of a parent recorded by *another* tracer (set only
        #: when a wire context was adopted with no local parent on stack).
        self.remote_parent = remote_parent
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.events: List[SpanEvent] = []
        self.status = "ok"

    def set(self, **attributes: object) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attributes.update(attributes)

    def add_event(
        self, time: float, name: str, **attributes: object
    ) -> SpanEvent:
        event = SpanEvent(time=time, name=name, attributes=dict(attributes))
        self.events.append(event)
        return event

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def hex_id(self) -> str:
        """This span's 16-hex wire span id (derived from the counter)."""
        return span_hex_id(self.span_id)

    def context(self) -> Optional[TraceContext]:
        """The wire context this span would emit, or None if untraced."""
        if self.trace_id is None:
            return None
        parent = (
            span_hex_id(self.parent_id)
            if self.parent_id is not None
            else self.remote_parent
        )
        return TraceContext(
            trace_id=self.trace_id,
            span_id=self.hex_id,
            parent_span_id=parent,
        )

    def to_dict(self) -> dict:
        out = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "run_id": self.run_id,
            "trace_id": self.trace_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": {k: _plain(v) for k, v in self.attributes.items()},
            "events": [e.to_dict() for e in self.events],
        }
        if self.remote_parent is not None:
            out["remote_parent"] = self.remote_parent
        return out

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        """Rebuild a span from its :meth:`to_dict` form (forensics path)."""
        span = cls(
            span_id=int(record["span_id"]),
            parent_id=(
                int(record["parent_id"])
                if record.get("parent_id") is not None
                else None
            ),
            run_id=record.get("run_id"),
            name=str(record.get("name", "")),
            start=float(record.get("start", 0.0)),
            attributes=dict(record.get("attributes") or {}),
            trace_id=record.get("trace_id"),
            remote_parent=record.get("remote_parent"),
        )
        span.end = (
            float(record["end"]) if record.get("end") is not None else None
        )
        span.status = str(record.get("status", "ok"))
        for event in record.get("events") or []:
            span.events.append(
                SpanEvent(
                    time=float(event.get("time", 0.0)),
                    name=str(event.get("name", "")),
                    attributes=dict(event.get("attributes") or {}),
                )
            )
        return span

    def __repr__(self) -> str:
        return (
            f"Span(id={self.span_id}, name={self.name!r}, "
            f"parent={self.parent_id}, trace={self.trace_id}, "
            f"status={self.status})"
        )


def _plain(value: object) -> object:
    """Coerce attribute values to JSON-friendly plain types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    return str(value)


class Tracer:
    """Collects spans; owns the active-span stack, run ids, and trace ids.

    Args:
        now: time source for span timestamps.  Inject the simulated clock's
            ``now`` so trace timing is a consequence of message count and
            the latency model, exactly like protocol latency itself.
        rng: source of fresh trace ids.  Defaults to a
            :class:`~repro.crypto.rng.Rng` with a fixed seed, so trace ids
            are deterministic per run — the property that makes
            ``--follow TRACE_ID`` reproducible across invocations.
    """

    def __init__(self, now: Callable[[], float], rng=None) -> None:
        if rng is None:
            from repro.crypto.rng import Rng

            rng = Rng(seed=b"trace-context")
        self._now = now
        self._rng = rng
        self.spans: List[Span] = []
        self.orphan_events: List[SpanEvent] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self._run_counter = 0
        self._run_id: Optional[str] = None
        #: Called with each span as it finishes (TraceStore indexing).
        self._finish_listeners: List[Callable[[Span], None]] = []

    # -- recording -----------------------------------------------------------

    def add_finish_listener(self, listener: Callable[[Span], None]) -> None:
        self._finish_listeners.append(listener)

    def new_trace_id(self) -> str:
        """A fresh 32-hex trace id from the seeded rng."""
        return self._rng.bytes(16).hex()

    @contextmanager
    def span(
        self,
        name: str,
        remote_context: Optional[str] = None,
        **attributes: object,
    ) -> Iterator[Span]:
        """Open a child span of whatever span is currently active.

        ``remote_context`` is a traceparent header from the wire: with no
        local parent on the stack, the new span adopts its trace id and
        records the remote span id as its causal parent — how a service
        with its *own* tracer still joins the sender's trace.  A local
        parent always wins (in process, the stack is the truth).
        """
        parent = self._stack[-1] if self._stack else None
        remote_parent = None
        if parent is not None:
            trace_id = parent.trace_id
        else:
            remote = TraceContext.try_parse(remote_context)
            if remote is not None:
                trace_id = remote.trace_id
                remote_parent = remote.span_id
            else:
                trace_id = self.new_trace_id()
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            run_id=self._run_id,
            name=name,
            start=self._now(),
            attributes=attributes,
            trace_id=trace_id,
            remote_parent=remote_parent,
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attributes.setdefault(
                "error", f"{type(exc).__name__}: {exc}"
            )
            raise
        finally:
            span.end = self._now()
            self._stack.pop()
            for listener in self._finish_listeners:
                listener(span)

    @contextmanager
    def run(self, label: str) -> Iterator[Span]:
        """Group everything inside as one protocol run (a root span)."""
        self._run_counter += 1
        run_id = f"run-{self._run_counter}:{label}"
        previous = self._run_id
        self._run_id = run_id
        try:
            with self.span(f"run:{label}", run=run_id) as span:
                yield span
        finally:
            self._run_id = previous

    def event(self, name: str, **attributes: object) -> SpanEvent:
        """Record a point event on the current span (or as an orphan)."""
        if self._stack:
            return self._stack[-1].add_event(self._now(), name, **attributes)
        event = SpanEvent(
            time=self._now(), name=name, attributes=dict(attributes)
        )
        self.orphan_events.append(event)
        return event

    # -- inspection ----------------------------------------------------------

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def active_spans(self) -> Tuple[Span, ...]:
        """The open spans, outermost first (a snapshot of the stack)."""
        return tuple(self._stack)

    @property
    def current_run_id(self) -> Optional[str]:
        return self._run_id

    def current_context(self) -> Optional[TraceContext]:
        """The wire context of the active span, or None outside any span."""
        if not self._stack:
            return None
        return self._stack[-1].context()

    def current_trace_id(self) -> Optional[str]:
        if not self._stack:
            return None
        return self._stack[-1].trace_id

    def finished_spans(self) -> List[Span]:
        return [s for s in self.spans if s.end is not None]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def spans_in_run(self, run_id: str) -> List[Span]:
        return [s for s in self.spans if s.run_id == run_id]

    def spans_in_trace(self, trace_id: str) -> List[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def clear(self) -> None:
        """Drop recorded spans (open spans on the stack are kept)."""
        self.spans = [s for s in self.spans if s.end is None]
        self.orphan_events.clear()
