"""Flame-graph profiling over finished spans.

A trace is already a tree of timed activities; this module folds the
spans a :class:`~repro.obs.store.TraceStore` (or a ``spans.jsonl`` dump)
collected into the two formats flame-graph tools consume:

* **Folded stacks** (``frame;frame;frame value``) — one line per unique
  root-to-frame path, weighted by *self time* in whole microseconds on
  the simulated clock (or by span count with ``weight="count"``, useful
  for the offline figures where the clock never advances).  The output
  is sorted, so the same spans always fold to byte-identical text —
  and spans round-tripped through
  :func:`~repro.obs.store.load_spans_jsonl` fold identically.
* **Speedscope documents** — an ``evented`` profile per trace, loadable
  at https://www.speedscope.app or any compatible viewer.

Frames are named by span name plus the attribute that distinguishes the
interesting ones (``net.send:write-check``), so stacks merge by protocol
step rather than by individual principal-to-principal edge.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.trace import Span

#: span name -> attributes appended to the frame name, in order.
_FRAME_DETAIL = {
    "net.send": ("msg_type",),
    "rpc.handle": ("service", "msg_type"),
    "resil.send": ("msg_type",),
    "resil.attempt": ("msg_type",),
    "fig.step": ("step",),
    "op.exec": ("service", "operation"),
    "verify.chain": ("grantor",),
}


def frame_name(span: Span) -> str:
    """The flame-graph frame a span folds into."""
    detail = _FRAME_DETAIL.get(span.name)
    if not detail:
        return span.name
    parts = [span.name]
    for attr in detail:
        value = span.attributes.get(attr)
        if value is not None and value != "":
            parts.append(str(value))
    return ":".join(parts)


def self_times(spans: Iterable[Span]) -> Dict[int, float]:
    """span_id -> duration minus the durations of its (present) children."""
    finished = [s for s in spans if s.end is not None]
    child_time: Dict[int, float] = {}
    by_id = {s.span_id: s for s in finished}
    for span in finished:
        if span.parent_id in by_id:
            child_time[span.parent_id] = (
                child_time.get(span.parent_id, 0.0) + span.duration
            )
    return {
        s.span_id: max(s.duration - child_time.get(s.span_id, 0.0), 0.0)
        for s in finished
    }


def _stack_of(span: Span, by_id: Dict[int, Span]) -> Tuple[str, ...]:
    """Root-to-span chain of frame names (remote parents root the stack)."""
    frames: List[str] = []
    seen = set()
    current: Optional[Span] = span
    while current is not None and current.span_id not in seen:
        seen.add(current.span_id)
        frames.append(frame_name(current))
        current = (
            by_id.get(current.parent_id)
            if current.parent_id is not None
            else None
        )
    return tuple(reversed(frames))


def folded_stacks(spans: Iterable[Span], weight: str = "time") -> List[str]:
    """Fold spans into ``frame;frame value`` lines, sorted.

    ``weight="time"`` values each path by accumulated self time in whole
    microseconds (simulated clock) and drops zero-weight paths —
    flame-graph tools require positive counts.  ``weight="count"``
    values each path by the number of spans that folded into it.
    """
    if weight not in ("time", "count"):
        raise ValueError("weight must be 'time' or 'count'")
    finished = [s for s in spans if s.end is not None]
    by_id = {s.span_id: s for s in finished}
    selfs = self_times(finished)
    folded: Dict[Tuple[str, ...], float] = {}
    for span in finished:
        value = selfs[span.span_id] if weight == "time" else 1
        stack = _stack_of(span, by_id)
        folded[stack] = folded.get(stack, 0.0) + value
    lines = []
    for stack, value in folded.items():
        amount = (
            int(round(value * 1_000_000)) if weight == "time" else int(value)
        )
        if amount > 0:
            lines.append(";".join(stack) + f" {amount}")
    return sorted(lines)


def render_call_tree(spans: Iterable[Span]) -> str:
    """Aggregated call tree: count, total, and self time per frame path."""
    finished = [s for s in spans if s.end is not None]
    by_id = {s.span_id: s for s in finished}
    selfs = self_times(finished)
    # Aggregate (path -> [count, total, self]); paths are hierarchical.
    stats: Dict[Tuple[str, ...], List[float]] = {}
    for span in finished:
        path = _stack_of(span, by_id)
        entry = stats.setdefault(path, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span.duration
        entry[2] += selfs[span.span_id]
    header = f"{'count':>5} {'total(s)':>10} {'self(s)':>10}  frame"
    lines = [header, "-" * len(header)]
    for path in sorted(stats):
        count, total, self_time = stats[path]
        indent = "  " * (len(path) - 1)
        lines.append(
            f"{count:>5.0f} {total:>10.6f} {self_time:>10.6f}  "
            f"{indent}{path[-1]}"
        )
    return "\n".join(lines)


def speedscope_document(
    spans: Iterable[Span], name: str = "repro"
) -> dict:
    """A speedscope file: one ``evented`` profile per trace.

    Events come from a depth-first walk of each trace's span tree, so
    open/close events nest properly even when several siblings share
    timestamps (the simulated clock only advances on network hops).
    """
    finished = sorted(
        (s for s in spans if s.end is not None),
        key=lambda s: (s.start, s.span_id),
    )
    frames: List[dict] = []
    frame_index: Dict[str, int] = {}

    def index_of(label: str) -> int:
        if label not in frame_index:
            frame_index[label] = len(frames)
            frames.append({"name": label})
        return frame_index[label]

    by_trace: Dict[str, List[Span]] = {}
    for span in finished:
        by_trace.setdefault(span.trace_id or "", []).append(span)

    profiles = []
    for trace_id in sorted(by_trace):
        members = by_trace[trace_id]
        children: Dict[Optional[int], List[Span]] = {}
        ids = {s.span_id for s in members}
        for span in members:
            parent = span.parent_id if span.parent_id in ids else None
            children.setdefault(parent, []).append(span)
        events: List[dict] = []

        def emit(span: Span) -> None:
            frame = index_of(frame_name(span))
            events.append({"type": "O", "frame": frame, "at": span.start})
            for child in sorted(
                children.get(span.span_id, []),
                key=lambda s: (s.start, s.span_id),
            ):
                emit(child)
            events.append({"type": "C", "frame": frame, "at": span.end})

        for root in sorted(
            children.get(None, []), key=lambda s: (s.start, s.span_id)
        ):
            emit(root)
        profiles.append(
            {
                "type": "evented",
                "name": trace_id or "(untraced)",
                "unit": "seconds",
                "startValue": min(s.start for s in members),
                "endValue": max(s.end for s in members),
                "events": events,
            }
        )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro-profiler",
        "shared": {"frames": frames},
        "profiles": profiles,
    }


__all__ = [
    "folded_stacks",
    "frame_name",
    "render_call_tree",
    "self_times",
    "speedscope_document",
]
