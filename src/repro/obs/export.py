"""Exporters: JSON-lines traces, Prometheus text, human-readable trees.

Three consumers, three formats:

* machines ingesting traces — :func:`spans_to_jsonl`, one span per line;
* scrapers ingesting metrics — :func:`prometheus_text`, the Prometheus
  text exposition format (counters, gauges, histograms with cumulative
  ``le`` buckets);
* humans reading a protocol run — :func:`render_span_tree` (the nested
  activity view) and :func:`render_message_trace` (the flat numbered
  message list in the paper's figure notation:
  ``N. source -> destination : type``).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    prometheus_name,
)
from repro.obs.trace import Span


# ---------------------------------------------------------------------------
# Traces
# ---------------------------------------------------------------------------

def spans_to_jsonl(spans: Sequence[Span]) -> str:
    """One JSON object per span, in start order; '' when nothing recorded."""
    return "\n".join(
        json.dumps(span.to_dict(), sort_keys=True) for span in spans
    )


def _span_label(span: Span) -> str:
    """Compact one-line rendering of a span for the tree view."""
    attrs = span.attributes
    if span.name == "net.send":
        arrow = f"{attrs.get('source')} -> {attrs.get('destination')}"
        sizes = ""
        if "request_bytes" in attrs:
            sizes = f" [req {attrs.get('request_bytes')} B"
            if "response_bytes" in attrs:
                sizes += f", rsp {attrs.get('response_bytes')} B"
            sizes += "]"
        label = f"net.send {arrow} : {attrs.get('msg_type')}{sizes}"
    elif span.name == "rpc.handle":
        label = f"rpc.handle {attrs.get('service')} : {attrs.get('msg_type')}"
    elif span.name == "verify.chain":
        parts = [f"verify.chain @{attrs.get('server')}"]
        if "grantor" in attrs:
            parts.append(f"grantor={attrs['grantor']}")
        if "chain_length" in attrs:
            parts.append(f"links={attrs['chain_length']}")
        if attrs.get("bearer") is not None:
            parts.append("bearer" if attrs.get("bearer") else "delegate")
        label = " ".join(str(p) for p in parts)
    elif span.name == "fig.step":
        label = f"message {attrs.get('step')}: {attrs.get('label')}"
    else:
        extra = " ".join(
            f"{k}={v}" for k, v in attrs.items() if k not in ("run", "error")
        )
        label = span.name + (f" {extra}" if extra else "")
    if span.status == "error":
        label += f"  !! {attrs.get('error', 'error')}"
    return label


def render_span_tree(
    spans: Sequence[Span], include_events: bool = True
) -> str:
    """ASCII tree of the recorded spans, with simulated-clock timings."""
    if not spans:
        return "(no spans recorded)"
    children: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    known_ids = {span.span_id for span in spans}
    # Roots: no parent, or the parent was not captured (e.g. cleared).
    roots = [
        s
        for s in spans
        if s.parent_id is None or s.parent_id not in known_ids
    ]
    origin = min(s.start for s in spans)
    lines: List[str] = []

    def emit(span: Span, prefix: str, is_last: bool, depth: int) -> None:
        connector = "" if depth == 0 else ("`- " if is_last else "|- ")
        timing = f"(t=+{span.start - origin:.4f}s, {span.duration * 1000:.2f}ms)"
        lines.append(f"{prefix}{connector}{_span_label(span)}  {timing}")
        child_prefix = prefix if depth == 0 else (
            prefix + ("   " if is_last else "|  ")
        )
        if include_events:
            for event in span.events:
                attrs = " ".join(
                    f"{k}={v}" for k, v in event.attributes.items()
                )
                lines.append(
                    f"{child_prefix}   * {event.name}"
                    + (f" {attrs}" if attrs else "")
                )
        kids = children.get(span.span_id, [])
        for i, kid in enumerate(kids):
            emit(kid, child_prefix, i == len(kids) - 1, depth + 1)

    for i, root in enumerate(roots):
        if i:
            lines.append("")
        emit(root, "", True, 0)
    return "\n".join(lines)


def render_message_trace(spans: Sequence[Span]) -> str:
    """The flat, numbered wire-message view, in the paper's notation.

    Each ``net.send`` span is one request/response exchange — one numbered
    arrow in a figure (the reply is shown inline, as the figures do).
    Dropped requests are marked; nesting depth is shown by indentation so
    server-to-server hops (Fig. 5's E2) read as sub-messages.
    """
    sends = [s for s in spans if s.name == "net.send"]
    if not sends:
        return "(no messages recorded)"
    by_id = {s.span_id: s for s in spans}

    def net_depth(span: Span) -> int:
        depth = 0
        parent = by_id.get(span.parent_id)
        while parent is not None:
            if parent.name == "net.send":
                depth += 1
            parent = by_id.get(parent.parent_id)
        return depth

    lines = []
    for number, span in enumerate(sends, start=1):
        attrs = span.attributes
        indent = "    " * net_depth(span)
        line = (
            f"{indent}{number:>2}. {attrs.get('source')} -> "
            f"{attrs.get('destination')} : {attrs.get('msg_type')}"
        )
        # A resend is a send under a resil.attempt span: mark it so the
        # same logical message on attempt 2+ is not a duplicate line.
        attempt_parent = by_id.get(span.parent_id)
        if (
            attempt_parent is not None
            and attempt_parent.name == "resil.attempt"
        ):
            attempt = attempt_parent.attributes.get("attempt")
            markers = []
            if isinstance(attempt, int) and attempt > 1:
                markers.append(f"attempt {attempt}")
            if attempt_parent.attributes.get("failover"):
                markers.append(
                    f"failover -> {attempt_parent.attributes.get('endpoint')}"
                )
            if markers:
                line += f"  [{', '.join(markers)}]"
        details = []
        if "request_bytes" in attrs:
            details.append(f"req {attrs['request_bytes']} B")
        if "response_bytes" in attrs:
            details.append(f"rsp {attrs['response_bytes']} B")
        if details:
            line += "  (" + ", ".join(details) + ")"
        if span.status == "error":
            if attrs.get("dropped"):
                line += f"  -- DROPPED ({attrs.get('drop_reason', '?')})"
            else:
                line += f"  -- ERROR ({attrs.get('error', '?')})"
        lines.append(line)
    return "\n".join(lines)


def render_trace_waterfall(
    spans: Sequence[Span], trace_id: Optional[str] = None, width: int = 32
) -> str:
    """Per-request causal waterfall: one trace, bars on the simulated clock.

    Filters ``spans`` to ``trace_id`` (or renders whatever it was given),
    orders causally (start time, then span id), indents children under
    parents, and draws each span's lifetime as a bar against the trace's
    own time base.  Span events are listed under their span with ``*``
    markers, so a dedupe hit, a vcache hit, or a ledger posting reads in
    causal position.
    """
    members = [
        s
        for s in spans
        if trace_id is None or s.trace_id == trace_id
    ]
    if not members:
        return "(no spans in trace)"
    members.sort(key=lambda s: (s.start, s.span_id))
    by_id = {s.span_id: s for s in members}

    def depth(span: Span) -> int:
        d = 0
        parent = by_id.get(span.parent_id)
        while parent is not None:
            d += 1
            parent = by_id.get(parent.parent_id)
        return d

    origin = min(s.start for s in members)
    horizon = max((s.end if s.end is not None else s.start) for s in members)
    window = max(horizon - origin, 1e-9)

    shown_id = trace_id if trace_id is not None else members[0].trace_id
    header = (
        f"trace {shown_id} — {len(members)} spans, "
        f"{horizon - origin:.4f}s on the simulated clock"
    )
    labels = []
    for span in members:
        indent = "  " * depth(span)
        status = "" if span.status == "ok" else "  !! error"
        labels.append((span, f"{indent}{_span_label(span)}{status}"))
    label_width = min(max(len(text) for _, text in labels), 64)

    lines = [header]
    for span, text in labels:
        begin = int((span.start - origin) / window * (width - 1))
        end_time = span.end if span.end is not None else span.start
        finish = int((end_time - origin) / window * (width - 1))
        bar = [" "] * width
        for i in range(begin, max(begin, finish) + 1):
            bar[i] = "="
        if span.end is None:
            bar[min(finish + 1, width - 1)] = ">"
        offset = f"+{span.start - origin:.4f}s"
        lines.append(
            f"{text[:label_width]:<{label_width}}  "
            f"|{''.join(bar)}|  {offset} ({span.duration * 1000:.2f}ms)"
        )
        for event in span.events:
            attrs = " ".join(
                f"{k}={v}" for k, v in event.attributes.items()
            )
            indent = "  " * (depth(span) + 1)
            lines.append(
                f"{indent}* {event.name}" + (f" {attrs}" if attrs else "")
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(pairs: Iterable, extra: Optional[Dict[str, str]] = None) -> str:
    items = list(pairs) + sorted((extra or {}).items())
    if not items:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in items
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_exemplar(exemplar) -> str:
    """OpenMetrics exemplar suffix for a bucket line, or ''.

    ``# {trace_id="..."} value`` — the trace to pull when this bucket's
    count looks anomalous.
    """
    if not exemplar:
        return ""
    trace_id, value = exemplar
    return (
        f' # {{trace_id="{_escape_label_value(str(trace_id))}"}}'
        f" {_format_value(value)}"
    )


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every family in the Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.families():
        name = prometheus_name(metric.name)
        lines.append(f"# HELP {name} {metric.help or metric.name}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for key, value in metric.series():
                lines.append(
                    f"{name}{_format_labels(key)} "
                    f"{_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for key, series in metric.series():
                cumulative = 0
                for i, (bound, bucket_count) in enumerate(
                    zip(metric.buckets, series.bucket_counts)
                ):
                    cumulative = bucket_count
                    lines.append(
                        f"{name}_bucket"
                        f"{_format_labels(key, {'le': _format_value(bound)})}"
                        f" {cumulative}"
                        f"{_format_exemplar(series.exemplars.get(i))}"
                    )
                inf_exemplar = series.exemplars.get(len(metric.buckets))
                lines.append(
                    f"{name}_bucket"
                    f"{_format_labels(key, {'le': '+Inf'})} {series.count}"
                    f"{_format_exemplar(inf_exemplar)}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(key)} "
                    f"{_format_value(series.sum)}"
                )
                lines.append(
                    f"{name}_count{_format_labels(key)} {series.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
