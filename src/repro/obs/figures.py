"""Runnable protocol figures, traced end to end.

Each ``run_figN`` builds a small seeded deployment, warms the underlying
Kerberos machinery (the figures omit key-distribution traffic, §2), clears
the warm-up spans, and then replays the figure's messages inside one
telemetry *run* — so ``python -m repro trace fig3`` renders the protocol
as a single span tree whose numbered steps match the paper's arrows.

The runners return the :class:`~repro.obs.telemetry.Telemetry` they
recorded into; callers render it with the exporters.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.obs.telemetry import Telemetry

START = 1_000_000.0


def _fresh(label: str, telemetry: Telemetry):
    from repro.testbed import Realm

    return Realm(seed=b"obs-" + label.encode(), telemetry=telemetry)


def run_fig1(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Fig. 1: the restricted proxy primitive — grant, present, verify."""
    from repro.clock import SimulatedClock
    from repro.core.evaluation import RequestContext
    from repro.core.presentation import present
    from repro.core.proxy import grant_conventional
    from repro.core.restrictions import Authorized, AuthorizedEntry
    from repro.core.verification import ProxyVerifier, SharedKeyCrypto
    from repro.crypto.keys import SymmetricKey
    from repro.crypto.rng import Rng
    from repro.encoding.identifiers import PrincipalId

    if telemetry is None:
        telemetry = Telemetry()
    rng = Rng(seed=b"obs-fig1")
    clock = SimulatedClock(START)
    telemetry.bind_clock(clock)
    grantor = PrincipalId("alice")
    server = PrincipalId("server")
    shared = SymmetricKey.generate(rng=rng)
    verifier = ProxyVerifier(
        server=server,
        crypto=SharedKeyCrypto({grantor: shared}),
        clock=clock,
        telemetry=telemetry,
    )
    with telemetry.run("fig1"):
        with telemetry.span(
            "fig.step", step=1, label="grant [restrictions, Kproxy]_grantor"
        ):
            proxy = grant_conventional(
                grantor,
                shared,
                (Authorized(entries=(AuthorizedEntry("file", ("read",)),)),),
                START,
                START + 3600,
                rng,
            )
        with telemetry.span(
            "fig.step", step=2, label="present proxy to S; S verifies"
        ):
            presented = present(proxy, server, clock.now(), "read")
            verifier.verify(
                presented,
                RequestContext(server=server, operation="read", target="file"),
            )
    return telemetry


def run_fig3(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Fig. 3: the authorization-server protocol (messages 0–3)."""
    from repro.acl import AclEntry, SinglePrincipal
    from repro.services.nameserver import lookup

    if telemetry is None:
        telemetry = Telemetry()
    realm = _fresh("fig3", telemetry)
    fs = realm.file_server("files")
    fs.put("doc", b"data")
    authz = realm.authorization_server("authz")
    fs.acl.add(AclEntry(subject=SinglePrincipal(authz.principal)))
    ns = realm.name_server()
    ns.publish(fs.principal, authorization_server=authz.principal)
    user = realm.user("client")
    authz.database_for(fs.principal).add(
        AclEntry(subject=SinglePrincipal(user.principal), operations=("read",))
    )

    # §2: key-distribution traffic is omitted from the figures — warm every
    # ticket, then drop the warm-up spans so the run shows only the figure.
    azc = user.authorization_client(authz.principal)
    azc.service.establish_session()
    azc.authorize(fs.principal, ("read",))
    client = user.client_for(fs.principal)
    client.establish_session()
    if telemetry.enabled:
        telemetry.tracer.clear()
        telemetry.store.clear()

    with telemetry.run("fig3"):
        with telemetry.span(
            "fig.step",
            step="0 (dashed)",
            label="a-priori knowledge via name server",
        ):
            lookup(realm.network, user.principal, ns.principal, fs.principal)
        with telemetry.span(
            "fig.step",
            step="1+2",
            label="authenticated request -> [op X only]_R, {Kproxy}Ksession",
        ):
            proxy = azc.authorize(fs.principal, ("read",))
        with telemetry.span(
            "fig.step",
            step=3,
            label="present proxy to S, authenticate with Kproxy",
        ):
            client.request("read", "doc", proxy=proxy)
    return telemetry


def run_fig4(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Fig. 4: a cascaded proxy chain, verified offline at the end-server."""
    from repro.clock import SimulatedClock
    from repro.core.evaluation import RequestContext
    from repro.core.presentation import present
    from repro.core.proxy import cascade, grant_conventional
    from repro.core.restrictions import Quota
    from repro.core.verification import ProxyVerifier, SharedKeyCrypto
    from repro.crypto.keys import SymmetricKey
    from repro.crypto.rng import Rng
    from repro.encoding.identifiers import PrincipalId

    if telemetry is None:
        telemetry = Telemetry()
    rng = Rng(seed=b"obs-fig4")
    clock = SimulatedClock(START)
    telemetry.bind_clock(clock)
    grantor = PrincipalId("alice")
    server = PrincipalId("server")
    shared = SymmetricKey.generate(rng=rng)
    verifier = ProxyVerifier(
        server=server,
        crypto=SharedKeyCrypto({grantor: shared}),
        clock=clock,
        telemetry=telemetry,
    )
    with telemetry.run("fig4"):
        with telemetry.span(
            "fig.step", step=1, label="grant root proxy [.]_alice"
        ):
            proxy = grant_conventional(
                grantor, shared, (), START, START + 3600, rng
            )
        for hop in range(2):
            with telemetry.span(
                "fig.step",
                step=hop + 2,
                label=f"cascade: subordinate {hop + 1} re-delegates "
                f"[restrictions, Kproxy{hop + 2}]_Kproxy{hop + 1}",
            ):
                proxy = cascade(
                    proxy,
                    (Quota(currency=f"hop{hop}", limit=100),),
                    START,
                    START + 3600,
                    rng,
                )
        with telemetry.span(
            "fig.step", step=4, label="present chain to S; offline verify"
        ):
            presented = present(proxy, server, clock.now(), "read")
            verifier.verify(
                presented, RequestContext(server=server, operation="read")
            )
    return telemetry


def run_fig5(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Fig. 5: processing a check (E1/E2 endorsements, cross-server)."""
    if telemetry is None:
        telemetry = Telemetry()
    realm = _fresh("fig5", telemetry)
    payor = realm.user("payor")
    payee = realm.user("payee")
    bank_payor = realm.accounting_server("bank-payor")
    bank_payee = realm.accounting_server("bank-payee")
    bank_payor.create_account("payor", payor.principal, {"dollars": 1000})
    bank_payee.create_account("payee", payee.principal)
    payor_client = payor.accounting_client(bank_payor.principal)
    payee_client = payee.accounting_client(bank_payee.principal)

    # Warm every server's tickets with one clearing, then trace a clean run.
    check = payor_client.write_check("payor", payee.principal, "dollars", 1)
    payee_client.deposit_check(check, "payee")
    if telemetry.enabled:
        telemetry.tracer.clear()
        telemetry.store.clear()

    with telemetry.run("fig5"):
        with telemetry.span(
            "fig.step", step=1, label="check: [payee, $5, #N]_payor"
        ):
            check = payor_client.write_check(
                "payor", payee.principal, "dollars", 5
            )
        with telemetry.span(
            "fig.step",
            step="2+3",
            label="E1 deposit at payee's server; E2 forwarded for clearing",
        ):
            payee_client.deposit_check(check, "payee")
    return telemetry


def run_fig6(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Fig. 6 territory (§6.1): pure public-key proxies, no KDC.

    A directory publishes long-term public keys; alice signs a restricted
    proxy with her private key, and a bearer presents it to a server that
    verifies the whole chain offline against the directory.
    """
    from repro.acl import AclEntry, SinglePrincipal
    from repro.clock import SimulatedClock
    from repro.core.proxy import grant_public
    from repro.core.restrictions import Authorized, AuthorizedEntry, IssuedFor
    from repro.crypto.dh import TEST_GROUP
    from repro.crypto.rng import Rng
    from repro.encoding.identifiers import PrincipalId
    from repro.net import Network
    from repro.services.pk_endserver import (
        PkClient,
        PkEndServer,
        PublicKeyDirectory,
    )

    if telemetry is None:
        telemetry = Telemetry()
    rng = Rng(seed=b"obs-fig6")
    clock = SimulatedClock(START)
    telemetry.bind_clock(clock)
    network = Network(clock, rng=rng, telemetry=telemetry)
    directory = PublicKeyDirectory()
    server = PkEndServer(
        PrincipalId("pk-files"),
        network,
        clock,
        directory,
        group=TEST_GROUP,
        rng=rng,
        telemetry=telemetry,
    )
    files = {"doc": b"pk data"}

    def read(rights, claimant, args, amounts):
        return {"data": files[args["path"]]}

    server.register_operation("read", read)
    alice = PkClient(
        PrincipalId("alice"), network, clock, directory,
        group=TEST_GROUP, rng=rng,
    )
    bob = PkClient(
        PrincipalId("bob"), network, clock, directory,
        group=TEST_GROUP, rng=rng,
    )
    server.acl.add(AclEntry(subject=SinglePrincipal(alice.principal)))

    with telemetry.run("fig6"):
        with telemetry.span(
            "fig.step",
            step=1,
            label="grant [restrictions, Kproxy-pub]_Kalice (signed, no KDC)",
        ):
            proxy = grant_public(
                alice.principal,
                alice.signer,
                (
                    Authorized(
                        entries=(AuthorizedEntry("doc", ("read",)),)
                    ),
                    IssuedFor(servers=(server.principal,)),
                ),
                clock.now(),
                clock.now() + 600,
                rng,
                group=TEST_GROUP,
            )
        with telemetry.span(
            "fig.step",
            step=2,
            label="bearer presents proxy; S verifies against the directory",
        ):
            bob.request(
                server.principal,
                "read",
                target="doc",
                args={"path": "doc"},
                proxy=proxy,
                anonymous=True,
            )
    return telemetry


FIGURES: Dict[str, Callable[[Optional[Telemetry]], Telemetry]] = {
    "fig1": run_fig1,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
}


def run_figure(
    name: str, telemetry: Optional[Telemetry] = None
) -> Telemetry:
    """Run one named figure protocol under telemetry and return it."""
    try:
        runner = FIGURES[name]
    except KeyError:
        raise ValueError(
            f"unknown figure {name!r}; choose from {sorted(FIGURES)}"
        ) from None
    return runner(telemetry)
