"""W3C-traceparent-style trace context for wire-level correlation.

The paper's value proposition is *attribution*: every exercised right and
every spent unit must be traceable to the proxy chain that authorized it
(§4–§5).  Aggregate counters cannot do that once retries, failovers, and
cross-server accounting legs enter the picture — per-request causality
needs an identifier that survives every hop.

A :class:`TraceContext` is that identifier, modelled on the W3C Trace
Context ``traceparent`` header:

* ``trace_id`` — 32 hex chars naming the *logical request*, shared by
  every span, resend, failover leg, and ledger posting it causes;
* ``span_id`` — 16 hex chars naming the span that emitted the context
  (for a wire message, its ``net.send`` span);
* ``parent_span_id`` — the emitting span's parent, for causal joins when
  a consumer sees only the wire.

Contexts are deterministic: trace ids come from the tracer's seeded
:class:`~repro.crypto.rng.Rng` and span ids derive from the tracer's
monotonic span counter, so a seeded run always produces the same ids —
a trace id printed by one run can be ``--follow``\\ ed in the next.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

#: The traceparent version we emit; parsing accepts any two-hex version.
_VERSION = "00"
#: Trace flags: always "sampled" — the simulator records every span.
_FLAGS = "01"

_HEADER = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


@dataclass(frozen=True)
class TraceContext:
    """One point in a causal trace, serializable as a traceparent header."""

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.trace_id) != 32 or not _is_hex(self.trace_id):
            raise ValueError(f"trace_id must be 32 hex chars: {self.trace_id!r}")
        if len(self.span_id) != 16 or not _is_hex(self.span_id):
            raise ValueError(f"span_id must be 16 hex chars: {self.span_id!r}")

    def to_header(self) -> str:
        """``version-trace_id-span_id-flags``, the W3C wire form."""
        return f"{_VERSION}-{self.trace_id}-{self.span_id}-{_FLAGS}"

    @classmethod
    def parse(cls, header: str) -> "TraceContext":
        """Parse a traceparent header; raises ``ValueError`` on junk."""
        match = _HEADER.match(header or "")
        if match is None:
            raise ValueError(f"malformed traceparent header: {header!r}")
        return cls(
            trace_id=match.group("trace_id"),
            span_id=match.group("span_id"),
        )

    @classmethod
    def try_parse(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse, or return None — wire input is untrusted."""
        if not header:
            return None
        try:
            return cls.parse(header)
        except ValueError:
            return None

    def child(self, span_id: str) -> "TraceContext":
        """The context a child span emits: same trace, new span id."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=span_id,
            parent_span_id=self.span_id,
        )


def _is_hex(value: str) -> bool:
    try:
        int(value, 16)
    except ValueError:
        return False
    return value == value.lower()


def span_hex_id(span_id: int) -> str:
    """The 16-hex-char wire form of a tracer's integer span id."""
    return f"{span_id & 0xFFFFFFFFFFFFFFFF:016x}"
