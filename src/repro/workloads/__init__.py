"""Synthetic workloads: seeded generators and the concurrent load engine.

:mod:`repro.workloads.generator` produces seeded op streams for the
benchmark harness; :mod:`repro.workloads.load` drives many concurrent
principals against a realm (``python -m repro load``) and measures
throughput and latency percentiles — see ``docs/scaling.md``.
"""

from repro.workloads.generator import (
    FileOp,
    Payment,
    Zipf,
    delegation_subsets,
    file_workload,
    membership_checks,
    payment_workload,
)
from repro.workloads.load import (
    SCENARIOS,
    LoadConfig,
    LoadReport,
    LoadScenario,
    run_load,
)

__all__ = [
    "LoadConfig",
    "LoadReport",
    "LoadScenario",
    "SCENARIOS",
    "run_load",
    "Zipf",
    "FileOp",
    "file_workload",
    "Payment",
    "payment_workload",
    "membership_checks",
    "delegation_subsets",
]
