"""Synthetic workloads for the benchmark harness."""

from repro.workloads.generator import (
    FileOp,
    Payment,
    Zipf,
    delegation_subsets,
    file_workload,
    membership_checks,
    payment_workload,
)

__all__ = [
    "Zipf",
    "FileOp",
    "file_workload",
    "Payment",
    "payment_workload",
    "membership_checks",
    "delegation_subsets",
]
