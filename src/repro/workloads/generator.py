"""Synthetic workload generation for the benchmark harness.

The paper reports no measured workloads (it is a mechanism paper), so the
benchmarks drive the mechanisms with standard synthetic distributions:

* Zipf-skewed object popularity (a handful of hot files/accounts take most
  of the traffic, as every storage trace shows);
* uniform or weighted operation mixes;
* payment streams with log-normal-ish amounts.

Everything is seeded through :class:`~repro.crypto.rng.Rng`, so a benchmark
run is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.crypto.rng import Rng


class Zipf:
    """Zipf(s) sampler over ranks 0..n-1 via inverse-CDF table."""

    def __init__(self, n: int, s: float = 1.0, rng: Rng = None) -> None:
        if n < 1:
            raise ValueError("need at least one rank")
        self._rng = rng or Rng()
        weights = [1.0 / (rank + 1) ** s for rank in range(n)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: List[float] = []
        for w in weights:
            cumulative += w / total
            self._cdf.append(cumulative)

    def sample(self) -> int:
        u = self._rng.int_below(1_000_000_007) / 1_000_000_007.0
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo


@dataclass(frozen=True)
class FileOp:
    """One file-server request."""

    operation: str
    path: str
    size: int


def file_workload(
    n_ops: int,
    n_files: int = 100,
    read_fraction: float = 0.8,
    zipf_s: float = 1.0,
    max_size: int = 4096,
    rng: Rng = None,
) -> List[FileOp]:
    """A read-mostly file workload with Zipf-popular paths."""
    rng = rng or Rng()
    popularity = Zipf(n_files, s=zipf_s, rng=rng)
    ops: List[FileOp] = []
    threshold = int(read_fraction * 1000)
    for _ in range(n_ops):
        path = f"file:/data/{popularity.sample()}"
        if rng.int_below(1000) < threshold:
            ops.append(FileOp(operation="read", path=path, size=0))
        else:
            size = 1 + rng.int_below(max_size)
            ops.append(FileOp(operation="write", path=path, size=size))
    return ops


@dataclass(frozen=True)
class Payment:
    """One payment: payor index, payee index, amount."""

    payor: int
    payee: int
    amount: int


def payment_workload(
    n_payments: int,
    n_clients: int,
    n_merchants: int,
    max_amount: int = 100,
    zipf_s: float = 1.0,
    rng: Rng = None,
) -> List[Payment]:
    """Payments from uniform clients to Zipf-popular merchants."""
    rng = rng or Rng()
    merchant_popularity = Zipf(n_merchants, s=zipf_s, rng=rng)
    payments: List[Payment] = []
    for _ in range(n_payments):
        payments.append(
            Payment(
                payor=rng.int_below(n_clients),
                payee=merchant_popularity.sample(),
                amount=1 + rng.int_below(max_amount),
            )
        )
    return payments


def membership_checks(
    n_checks: int,
    n_principals: int,
    member_fraction: float = 0.7,
    rng: Rng = None,
) -> List[Tuple[int, bool]]:
    """A stream of (principal index, expected-member) membership queries."""
    rng = rng or Rng()
    threshold = int(member_fraction * 1000)
    return [
        (rng.int_below(n_principals), rng.int_below(1000) < threshold)
        for _ in range(n_checks)
    ]


def delegation_subsets(
    n_delegations: int,
    n_objects: int,
    subset_size: int = 3,
    rng: Rng = None,
) -> List[Tuple[str, ...]]:
    """Random object subsets for on-the-fly delegation (benchmark C5).

    Each subset is what a user wants to delegate *right now* — the case the
    paper says roles handle poorly.
    """
    rng = rng or Rng()
    subsets: List[Tuple[str, ...]] = []
    for _ in range(n_delegations):
        chosen = set()
        while len(chosen) < min(subset_size, n_objects):
            chosen.add(f"obj/{rng.int_below(n_objects)}")
        subsets.append(tuple(sorted(chosen)))
    return subsets
