"""Concurrent load generation against a realm.

This is the measurement half of the async runtime
(:class:`~repro.net.aio.AioNetwork`): build a realm, populate it with
*N* principals, then drive every principal's request stream concurrently
and report throughput plus latency percentiles.  It exists to answer the
question the paper's protocols were designed around but the single-thread
reproduction could never ask — what do cascaded authorization and
accounting cost under tens of thousands of in-flight principals?

The CLI lives at ``python -m repro load`` (see ``docs/scaling.md``):

    python -m repro load pk-verify --principals 1000 --concurrency 64
    python -m repro load echo --principals 10000 --ops 3 --mode aio
    python -m repro load fig5 --principals 200 --usage

Design points:

* **Scenarios** adapt the figure workloads to many principals: every
  principal gets its *own* credentials, clients, and (for fig5) its own
  accounts, so concurrent ops never share client-side mutable state —
  thread safety by partitioning, the same property real deployments get
  from separate user agents.
* **Setup is sequential and undilated**: principals are provisioned
  inline before the clock starts, so reported numbers measure the
  request path, not Kerberos bootstrapping.
* **Measurement uses the existing machinery**: per-op latencies stream
  into an :class:`~repro.obs.usage.QuantileDigest` (the same log-bucket
  digest the usage meter reports percentiles from), wire totals come
  from ``network.metrics``, optional ``--usage`` metering reconciles the
  :class:`~repro.obs.usage.UsageMeter` against those counters exactly as
  ``python -m repro usage`` does, and every scenario ends with an
  invariant check (audit-record counts; for fig5, ledger conservation
  across both banks) printed as a greppable ``conservation:`` line.
* **Fairness**: sync and aio modes run the same scenario, the same
  per-principal op streams, and the same latency model; the aio mode's
  advantage must come from overlapping waits and cross-request batch
  prefetching, not from doing less work.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.acl import AclEntry, SinglePrincipal
from repro.clock import SystemClock
from repro.core.restrictions import (
    Authorized,
    AuthorizedEntry,
    Grantee,
    IssuedFor,
)
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.errors import ReproError
from repro.kerberos.proxy_support import endorse, grant_via_credentials
from repro.ledger.fuzz import non_settlement_totals
from repro.net.aio import AioNetwork
from repro.net.message import Message
from repro.net.network import LatencyModel, Network
from repro.net.service import Service
from repro.obs.telemetry import Telemetry
from repro.obs.usage import QuantileDigest
from repro.testbed import Realm

#: Documents provisioned on file-serving scenarios (mirrors the chaos
#: workloads' five-document file server).
_DOCS = 5


@dataclass(frozen=True)
class LoadConfig:
    """One load run, fully specified (and therefore reproducible setup).

    Attributes:
        scenario: scenario name from :data:`SCENARIOS` — ``echo``,
            ``pk-verify``, or a figure workload (``fig1``, ``fig3``,
            ``fig4``, ``fig5``).
        principals: how many independent principals to provision; each
            runs its own request stream with its own credentials.
        ops: requests per principal (the run ends when every stream is
            exhausted, or at ``duration`` if that comes first).
        duration: optional wall-clock cap in seconds; ``0`` means run
            until the op streams are exhausted.
        concurrency: client-side parallelism — the number of requests
            that may be blocked on the network at once (thread-pool
            width in aio mode; sync mode is always 1).
        mode: ``"aio"`` (queued asyncio delivery) or ``"sync"`` (the
            seeded single-thread parity mode).
        seed: realm seed; setup (keys, grants, accounts) is a
            deterministic function of it.
        time_dilation: scale sampled per-hop latencies into real waits
            (applied only after setup); ``0`` measures pure protocol
            cost, ``1.0`` measures latency hiding under the model's
            simulated wire.
        base_latency / jitter: the per-hop latency model.
        max_batch: aio inbox drain window (cross-request batch size cap).
        request_timeout: client-side wait cap per request in aio mode.
        meter_usage: attach a usage-metering telemetry and report its
            reconciliation against the network counters.
        prefetch: install the servers' cross-request signature
            prefetchers (aio mode only).
    """

    scenario: str = "echo"
    principals: int = 100
    ops: int = 3
    duration: float = 0.0
    concurrency: int = 64
    mode: str = "aio"
    seed: int = 7
    time_dilation: float = 0.0
    base_latency: float = 0.001
    jitter: float = 0.0005
    max_batch: int = 64
    request_timeout: Optional[float] = 30.0
    meter_usage: bool = False
    prefetch: bool = True


@dataclass
class LoadReport:
    """What one load run measured, renderable for humans and CI greps."""

    scenario: str
    mode: str
    principals: int
    concurrency: int
    wall_seconds: float
    ops_ok: int
    ops_failed: int
    percentiles_ms: Dict[str, float]
    peak_in_flight: int
    messages: int
    bytes: int
    problems: List[str] = field(default_factory=list)
    #: Runtime counters (aio mode): batches, prefetched checks, ...
    runtime: Dict[str, int] = field(default_factory=dict)
    #: ``metered m/b vs net m/b -> ok|MISMATCH`` when usage metering ran.
    reconciliation: Optional[str] = None
    #: Scenario extras (e.g. fig5 balance totals).
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Completed requests per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.ops_ok / self.wall_seconds

    def to_json(self) -> dict:
        return {
            "scenario": self.scenario,
            "mode": self.mode,
            "principals": self.principals,
            "concurrency": self.concurrency,
            "wall_seconds": round(self.wall_seconds, 6),
            "ops_ok": self.ops_ok,
            "ops_failed": self.ops_failed,
            "throughput_ops_per_s": round(self.throughput, 3),
            "percentiles_ms": {
                k: round(v, 3) for k, v in self.percentiles_ms.items()
            },
            "peak_in_flight": self.peak_in_flight,
            "messages": self.messages,
            "bytes": self.bytes,
            "runtime": dict(self.runtime),
            "problems": list(self.problems),
            "reconciliation": self.reconciliation,
            "extras": {k: v for k, v in self.extras.items()},
        }

    def render(self) -> str:
        lines = [
            f"load: {self.scenario} mode={self.mode} "
            f"principals={self.principals} concurrency={self.concurrency}",
            f"  throughput ......... {self.throughput:,.1f} ops/s "
            f"({self.ops_ok} ops in {self.wall_seconds:.3f}s, "
            f"{self.ops_failed} failed)",
            f"  latency ............ "
            + "  ".join(
                f"{name} {value:.2f}ms"
                for name, value in self.percentiles_ms.items()
            ),
            f"  in flight .......... peak {self.peak_in_flight} principals",
            f"  wire ............... {self.messages} messages, "
            f"{self.bytes} bytes",
        ]
        if self.runtime:
            parts = ", ".join(
                f"{k}={v}" for k, v in sorted(self.runtime.items())
            )
            lines.append(f"  aio runtime ........ {parts}")
        for key, value in self.extras.items():
            lines.append(f"  {key} ".ljust(21, ".") + f" {value}")
        if self.reconciliation is not None:
            lines.append(f"reconciliation: {self.reconciliation}")
        if self.problems:
            lines.append("conservation: VIOLATED")
            lines.extend(f"  problem: {p}" for p in self.problems)
        else:
            lines.append("conservation: ok")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


class LoadScenario:
    """One way to exercise a realm under load.

    Hooks, all run with the network in inline (undilated, unqueued)
    delivery except :meth:`op`:

    * :meth:`setup` builds shared servers and returns the state dict.
    * :meth:`principal` provisions principal ``i`` (credentials, grants,
      accounts) and returns its private per-principal state.
    * :meth:`op` runs one request for principal ``i``; it must touch only
      that principal's state (plus thread-safe server handles), because
      in aio mode it runs on a client pool thread.
    * :meth:`check` returns invariant violations after the run ([] = ok).
    * :meth:`prefetchers` names (endpoint, prefetcher) pairs to install
      on the aio network for cross-request signature batching.
    """

    name = "?"

    def setup(self, realm: Realm, config: LoadConfig) -> dict:
        raise NotImplementedError

    def principal(
        self, realm: Realm, config: LoadConfig, state: dict, i: int
    ) -> object:
        raise NotImplementedError

    def op(
        self,
        realm: Realm,
        config: LoadConfig,
        state: dict,
        pstate,
        i: int,
        k: int,
    ) -> None:
        raise NotImplementedError

    def check(
        self, realm: Realm, config: LoadConfig, state: dict, ops_ok: int
    ) -> List[str]:
        return []

    def prefetchers(self, state: dict) -> List[Tuple[PrincipalId, Callable]]:
        return []

    def extras(self, realm: Realm, state: dict) -> Dict[str, object]:
        return {}


class _EchoService(Service):
    """Minimal request/response endpoint for substrate-only load."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.handled = 0

    def op_echo(self, message: Message) -> dict:
        self.handled += 1
        return {"echo": message.payload.get("n")}


class EchoScenario(LoadScenario):
    """Substrate-only ping/pong: measures the delivery fabric itself.

    No crypto, no tickets — the cheapest possible op, so this is the
    scenario that can hold 10k+ principals in flight and isolates the
    runtime's own overhead and latency hiding.
    """

    name = "echo"

    def setup(self, realm: Realm, config: LoadConfig) -> dict:
        echo = _EchoService(
            realm.principal("echo"), realm.network, realm.clock
        )
        return {"echo": echo}

    def principal(self, realm, config, state, i):
        return realm.principal(f"p{i}")

    def op(self, realm, config, state, pstate, i, k):
        reply = realm.network.send(
            pstate, state["echo"].principal, "echo", {"n": k}
        )
        if reply.get("echo") != k:
            raise ReproError(f"echo mismatch for principal {i} op {k}")

    def check(self, realm, config, state, ops_ok):
        handled = state["echo"].handled
        if handled < ops_ok:
            return [f"echo server handled {handled} < {ops_ok} completed ops"]
        return []


class PkVerifyScenario(LoadScenario):
    """Public-key proxy verification under load (Fig. 6 shape, §6.1).

    Every principal holds a signed restricted proxy from one grantor and
    presents it with a fresh signed envelope and possession proof per
    request — three Schnorr verifications per op, the stage the async
    runtime's cross-request batch prefetcher collapses across queued
    requests.  Uses the small test group so the bottleneck stays the
    protocol, not 2048-bit modexp on CI runners.
    """

    name = "pk-verify"

    def setup(self, realm: Realm, config: LoadConfig) -> dict:
        from repro.crypto.dh import TEST_GROUP
        from repro.services.pk_endserver import (
            PkClient,
            PkEndServer,
            PublicKeyDirectory,
        )

        rng = realm.rng.fork(b"pk-load")
        directory = PublicKeyDirectory()
        server = PkEndServer(
            realm.principal("pk-gate"),
            realm.network,
            realm.clock,
            directory,
            group=TEST_GROUP,
            rng=rng,
            telemetry=realm.telemetry,
        )
        server.register_operation(
            "read", lambda rights, claimant, args, amounts: {"data": b"ok"}
        )
        grantor = PkClient(
            realm.principal("grantor"),
            realm.network,
            realm.clock,
            directory,
            group=TEST_GROUP,
            rng=rng,
        )
        server.acl.add(AclEntry(subject=SinglePrincipal(grantor.principal)))
        return {
            "server": server,
            "grantor": grantor,
            "directory": directory,
            "rng": rng,
            "group": TEST_GROUP,
        }

    def principal(self, realm, config, state, i):
        from repro.core.proxy import grant_public
        from repro.services.pk_endserver import PkClient

        client = PkClient(
            realm.principal(f"p{i}"),
            realm.network,
            realm.clock,
            state["directory"],
            group=state["group"],
            rng=state["rng"],
        )
        grantor = state["grantor"]
        now = realm.clock.now()
        proxy = grant_public(
            grantor.principal,
            grantor.signer,
            (
                Authorized(entries=(AuthorizedEntry("doc", ("read",)),)),
                IssuedFor(servers=(state["server"].principal,)),
            ),
            now,
            now + 86_400.0,
            state["rng"],
            group=state["group"],
        )
        return (client, proxy)

    def op(self, realm, config, state, pstate, i, k):
        client, proxy = pstate
        reply = client.request(
            state["server"].principal,
            "read",
            target="doc",
            args={"path": "doc"},
            proxy=proxy,
            anonymous=False,
        )
        if reply.get("data") != b"ok":
            raise ReproError(f"pk read failed for principal {i} op {k}")

    def check(self, realm, config, state, ops_ok):
        audited = len(state["server"].audit.all())
        if audited < ops_ok:
            return [f"audit recorded {audited} < {ops_ok} completed ops"]
        return []

    def prefetchers(self, state):
        server = state["server"]
        return [(server.principal, server.signature_prefetcher())]


class _FileScenario(LoadScenario):
    """Shared scaffolding for the Kerberos file-server figures."""

    def _file_server(self, realm: Realm):
        fs = realm.file_server("files")
        for k in range(_DOCS):
            fs.put(f"doc{k}.txt", b"contents of doc %d" % k)
        return fs

    def _check_audit(self, fs, ops_ok: int) -> List[str]:
        audited = len(fs.audit.all())
        if audited < ops_ok:
            return [f"audit recorded {audited} < {ops_ok} completed ops"]
        return []

    def prefetchers(self, state):
        fs = state["fs"]
        return [(fs.endpoint, fs.signature_prefetcher())]


class Fig1Scenario(_FileScenario):
    """Bearer capabilities at scale (Fig. 1, §2).

    One owner grants every principal its own restricted capability;
    principals present them anonymously.  Measures offline verification
    plus accept-once bookkeeping under concurrency.
    """

    name = "fig1"

    def setup(self, realm: Realm, config: LoadConfig) -> dict:
        alice = realm.user("alice")
        fs = self._file_server(realm)
        fs.grant_owner(alice.principal)
        return {"alice": alice, "fs": fs}

    def principal(self, realm, config, state, i):
        alice, fs = state["alice"], state["fs"]
        user = realm.user(f"p{i}")
        capability = grant_via_credentials(
            alice.kerberos.get_ticket(fs.principal),
            (
                Authorized(
                    entries=tuple(
                        AuthorizedEntry(f"doc{k}.txt", ("read",))
                        for k in range(_DOCS)
                    )
                ),
            ),
            realm.clock.now(),
            rng=alice.kerberos.rng,
        )
        return (user.client_for(fs.principal), capability)

    def op(self, realm, config, state, pstate, i, k):
        client, capability = pstate
        reply = client.request(
            "read",
            f"doc{k % _DOCS}.txt",
            proxy=capability,
            anonymous=True,
        )
        if "data" not in reply:
            raise ReproError(f"fig1 read failed for principal {i} op {k}")

    def check(self, realm, config, state, ops_ok):
        return self._check_audit(state["fs"], ops_ok)


class Fig3Scenario(_FileScenario):
    """Authorization-server grants at scale (Fig. 3, §3.2).

    Every principal asks the authorization server for a fresh grant and
    presents it — two RPCs per op, with the authorization server itself
    a contended shared service.
    """

    name = "fig3"

    def setup(self, realm: Realm, config: LoadConfig) -> dict:
        fs = self._file_server(realm)
        authz = realm.authorization_server("authz")
        fs.acl.add(AclEntry(subject=SinglePrincipal(authz.principal)))
        return {"fs": fs, "authz": authz}

    def principal(self, realm, config, state, i):
        fs, authz = state["fs"], state["authz"]
        user = realm.user(f"p{i}")
        authz.database_for(fs.principal).add(
            AclEntry(
                subject=SinglePrincipal(user.principal),
                operations=("read",),
            )
        )
        azc = user.authorization_client(authz.principal)
        client = user.client_for(fs.principal)
        azc.service.establish_session()
        client.establish_session()
        return (azc, client)

    def op(self, realm, config, state, pstate, i, k):
        azc, client = pstate
        proxy = azc.authorize(state["fs"].principal, ("read",))
        reply = client.request("read", f"doc{k % _DOCS}.txt", proxy=proxy)
        if "data" not in reply:
            raise ReproError(f"fig3 read failed for principal {i} op {k}")

    def check(self, realm, config, state, ops_ok):
        return self._check_audit(state["fs"], ops_ok)


class Fig4Scenario(_FileScenario):
    """Delegate cascades at scale (Fig. 4, §3.4).

    Each principal is the tail of its own two-link cascade (owner →
    intermediary_i → principal_i) and presents the full chain per
    request — the verification-heaviest Kerberos scenario.
    """

    name = "fig4"

    def setup(self, realm: Realm, config: LoadConfig) -> dict:
        alice = realm.user("alice")
        fs = self._file_server(realm)
        fs.grant_owner(alice.principal)
        return {"alice": alice, "fs": fs}

    def principal(self, realm, config, state, i):
        alice, fs = state["alice"], state["fs"]
        carol = realm.user(f"carol{i}")
        dave = realm.user(f"dave{i}")
        now = realm.clock.now()
        to_carol = grant_via_credentials(
            alice.kerberos.get_ticket(fs.principal),
            (Grantee(principals=(carol.principal,)),),
            now,
            rng=alice.kerberos.rng,
        )
        chain = endorse(
            to_carol,
            carol.kerberos.get_ticket(fs.principal),
            dave.principal,
            (),
            now,
            now + 86_400.0,
            rng=carol.kerberos.rng,
        )
        client = dave.client_for(fs.principal)
        client.establish_session()
        return (client, chain)

    def op(self, realm, config, state, pstate, i, k):
        client, chain = pstate
        reply = client.request("read", f"doc{k % _DOCS}.txt", proxy=chain)
        if "data" not in reply:
            raise ReproError(f"fig4 read failed for principal {i} op {k}")

    def check(self, realm, config, state, ops_ok):
        return self._check_audit(state["fs"], ops_ok)


class Fig5Scenario(LoadScenario):
    """Cross-bank check clearing at scale (Fig. 5, §4).

    Every principal holds a funded account at bank A and an empty account
    at bank B, and each op writes a check on A and deposits it at B — the
    inter-bank E2 hop rides the same fabric as a nested send.  The
    post-run check is global: per-currency conservation over both banks'
    non-settlement accounts plus both ledgers' audit parity.
    """

    name = "fig5"

    #: Funds minted into each principal's payor account.
    INITIAL = 10_000

    def setup(self, realm: Realm, config: LoadConfig) -> dict:
        bank_a = realm.accounting_server("bank-a")
        bank_b = realm.accounting_server("bank-b")
        return {"bank_a": bank_a, "bank_b": bank_b}

    def principal(self, realm, config, state, i):
        bank_a, bank_b = state["bank_a"], state["bank_b"]
        user = realm.user(f"p{i}")
        bank_a.create_account(
            f"payor-{i}", user.principal, {"dollars": self.INITIAL}
        )
        bank_b.create_account(f"payee-{i}", user.principal)
        payor_client = user.accounting_client(bank_a.principal)
        payee_client = user.accounting_client(bank_b.principal)
        # Sessions are part of provisioning, not of the measured op.
        payor_client.service.establish_session()
        payee_client.service.establish_session()
        return (user, payor_client, payee_client, i)

    def op(self, realm, config, state, pstate, i, k):
        user, payor_client, payee_client, idx = pstate
        amount = 1 + (k % 7)
        check = payor_client.write_check(
            f"payor-{idx}", user.principal, "dollars", amount
        )
        result = payee_client.deposit_check(check, f"payee-{idx}")
        if int(result["paid"]) != amount:
            raise ReproError(
                f"fig5 deposit paid {result['paid']} != {amount}"
            )

    def check(self, realm, config, state, ops_ok):
        banks = [state["bank_a"], state["bank_b"]]
        problems: List[str] = []
        provisioned = sum(
            1
            for name in state["bank_a"].accounts
            if name.startswith("payor-")
        )
        expected = {"dollars": provisioned * self.INITIAL}
        totals = non_settlement_totals(banks)
        if totals != expected:
            problems.append(
                f"conservation broken: non-settlement totals {totals} "
                f"!= minted {expected}"
            )
        for bank in banks:
            for problem in bank.ledger.audit_discrepancies():
                problems.append(f"{bank.principal.name} audit: {problem}")
        return problems

    def prefetchers(self, state):
        out = []
        for bank in (state["bank_a"], state["bank_b"]):
            out.append((bank.endpoint, bank.signature_prefetcher()))
        return out

    def extras(self, realm, state):
        totals = non_settlement_totals([state["bank_a"], state["bank_b"]])
        return {"balances": totals}


SCENARIOS: Dict[str, type] = {
    EchoScenario.name: EchoScenario,
    PkVerifyScenario.name: PkVerifyScenario,
    Fig1Scenario.name: Fig1Scenario,
    Fig3Scenario.name: Fig3Scenario,
    Fig4Scenario.name: Fig4Scenario,
    Fig5Scenario.name: Fig5Scenario,
}


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class _Meter:
    """Thread-safe op accounting shared by every principal stream."""

    def __init__(self) -> None:
        self.digest = QuantileDigest()
        self.ops_ok = 0
        self.ops_failed = 0
        self.in_flight = 0
        self.peak_in_flight = 0
        self._lock = threading.Lock()

    def enter(self) -> None:
        with self._lock:
            self.in_flight += 1
            if self.in_flight > self.peak_in_flight:
                self.peak_in_flight = self.in_flight

    def exit(self) -> None:
        with self._lock:
            self.in_flight -= 1

    def observe(self, seconds: float, ok: bool) -> None:
        with self._lock:
            self.digest.observe(max(seconds, 1e-9))
            if ok:
                self.ops_ok += 1
            else:
                self.ops_failed += 1


def _build_realm(config: LoadConfig) -> Realm:
    telemetry = None
    if config.meter_usage:
        telemetry = Telemetry(meter_usage=True)
    seed = b"load-%d" % config.seed
    common = dict(
        seed=seed,
        real_time=True,
        latency=LatencyModel(
            base=config.base_latency, jitter=config.jitter
        ),
        telemetry=telemetry,
    )
    if config.mode == "aio":
        return Realm(
            runtime="aio",
            max_batch=config.max_batch,
            request_timeout=config.request_timeout,
            **common,
        )
    if config.mode == "sync":
        return Realm(runtime="sync", **common)
    raise ValueError(f"mode must be 'aio' or 'sync', not {config.mode!r}")


def _run_one(
    scenario: LoadScenario,
    realm: Realm,
    config: LoadConfig,
    state: dict,
    meter: _Meter,
    pstate,
    i: int,
    k: int,
) -> None:
    start = time.perf_counter()
    try:
        scenario.op(realm, config, state, pstate, i, k)
    except ReproError:
        meter.observe(time.perf_counter() - start, ok=False)
    else:
        meter.observe(time.perf_counter() - start, ok=True)


def _drive_sync(
    scenario: LoadScenario,
    realm: Realm,
    config: LoadConfig,
    state: dict,
    pstates: list,
    meter: _Meter,
    deadline: Optional[float],
) -> None:
    meter.enter()
    try:
        for k in range(config.ops):
            for i, pstate in enumerate(pstates):
                if deadline is not None and time.perf_counter() > deadline:
                    return
                _run_one(scenario, realm, config, state, meter, pstate, i, k)
    finally:
        meter.exit()


async def _drive_aio(
    scenario: LoadScenario,
    realm: Realm,
    config: LoadConfig,
    state: dict,
    pstates: list,
    meter: _Meter,
    deadline: Optional[float],
) -> None:
    network = realm.network
    assert isinstance(network, AioNetwork)
    loop = asyncio.get_running_loop()
    pool = ThreadPoolExecutor(
        max_workers=max(1, config.concurrency),
        thread_name_prefix="load-client",
    )

    async def principal_stream(i: int, pstate) -> None:
        meter.enter()
        try:
            for k in range(config.ops):
                if deadline is not None and time.perf_counter() > deadline:
                    return
                await loop.run_in_executor(
                    pool,
                    _run_one,
                    scenario,
                    realm,
                    config,
                    state,
                    meter,
                    pstate,
                    i,
                    k,
                )
        finally:
            meter.exit()

    try:
        async with network.serve():
            for endpoint, prefetcher in (
                scenario.prefetchers(state) if config.prefetch else []
            ):
                network.set_prefetcher(endpoint, prefetcher)
            await asyncio.gather(
                *(
                    principal_stream(i, pstate)
                    for i, pstate in enumerate(pstates)
                )
            )
    finally:
        pool.shutdown(wait=True)


def run_load(config: LoadConfig) -> LoadReport:
    """Provision, drive, and measure one load run.

    Returns the :class:`LoadReport`; ``report.problems`` is non-empty when
    a post-run invariant (audit counts, fig5 conservation) failed.
    """
    if config.scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {config.scenario!r}; "
            f"choose from {sorted(SCENARIOS)}"
        )
    if config.principals < 1:
        raise ValueError("need at least one principal")
    scenario = SCENARIOS[config.scenario]()
    realm = _build_realm(config)

    # Sequential, undilated provisioning: the run measures the request
    # path, not setup.
    state = scenario.setup(realm, config)
    pstates = [
        scenario.principal(realm, config, state, i)
        for i in range(config.principals)
    ]
    setup_messages = realm.network.metrics.messages
    setup_bytes = realm.network.metrics.bytes
    realm.network.time_dilation = config.time_dilation

    meter = _Meter()
    start = time.perf_counter()
    deadline = start + config.duration if config.duration > 0 else None
    if config.mode == "aio":
        asyncio.run(
            _drive_aio(
                scenario, realm, config, state, pstates, meter, deadline
            )
        )
    else:
        _drive_sync(
            scenario, realm, config, state, pstates, meter, deadline
        )
    wall = time.perf_counter() - start
    realm.network.time_dilation = 0.0

    percentiles = {
        "p50": meter.digest.quantile(0.50) * 1000.0,
        "p95": meter.digest.quantile(0.95) * 1000.0,
        "p99": meter.digest.quantile(0.99) * 1000.0,
    }
    runtime: Dict[str, int] = {}
    network = realm.network
    if isinstance(network, AioNetwork):
        stats = network.stats
        runtime = {
            "queued": stats.queued,
            "batches": stats.batches,
            "batched_messages": stats.batched_messages,
            "max_queue_depth": stats.max_queue_depth,
            "prefetched_checks": stats.prefetched_checks,
            "timeouts": stats.timeouts,
        }
    report = LoadReport(
        scenario=config.scenario,
        mode=config.mode,
        principals=config.principals,
        concurrency=config.concurrency if config.mode == "aio" else 1,
        wall_seconds=wall,
        ops_ok=meter.ops_ok,
        ops_failed=meter.ops_failed,
        percentiles_ms=percentiles,
        peak_in_flight=meter.peak_in_flight,
        messages=network.metrics.messages - setup_messages,
        bytes=network.metrics.bytes - setup_bytes,
        runtime=runtime,
        problems=scenario.check(realm, config, state, meter.ops_ok),
        extras=scenario.extras(realm, state),
    )
    usage = realm.telemetry.usage if realm.telemetry else None
    if usage is not None:
        net_messages = network.metrics.messages
        net_bytes = network.metrics.bytes
        ok = (
            usage.total_messages() == net_messages
            and usage.total_bytes() == net_bytes
        )
        report.reconciliation = (
            f"metered {usage.total_messages()} messages / "
            f"{usage.total_bytes()} bytes; net counters {net_messages} / "
            f"{net_bytes} -> {'ok' if ok else 'MISMATCH'}"
        )
        if not ok:
            report.problems.append("usage meter does not reconcile")
    return report
