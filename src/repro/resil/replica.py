"""Replica groups: N endpoints behind one logical principal.

The paper's protocols name *logical* services — "the" KDC of a realm, "the"
authorization server an end-server honours.  A :class:`ReplicaGroup` maps
that logical principal to an ordered list of concrete endpoints sharing
state (the KDC replicas share a principal database; authorization replicas
share the per-end-server ACL databases), so a client keeps working when the
primary is partitioned: the channel tries endpoints in order, skipping any
whose circuit breaker is open.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.encoding.identifiers import PrincipalId


@dataclass
class ReplicaGroup:
    """Ordered failover set for one logical principal."""

    logical: PrincipalId
    endpoints: List[PrincipalId] = field(default_factory=list)

    def add(self, endpoint: PrincipalId) -> None:
        if endpoint not in self.endpoints:
            self.endpoints.append(endpoint)

    def candidates(self) -> Tuple[PrincipalId, ...]:
        """Endpoints in preference order (primary first)."""
        return tuple(self.endpoints) or (self.logical,)
