"""The resilient channel: retries, breakers, and failover for every RPC.

:class:`ResilientChannel` wraps a :class:`~repro.net.network.Network` and
exposes the same surface (``send``, ``register``, taps, metrics...), so
every client and service built on it — Kerberos agents, service clients,
end servers making server-to-server calls — transparently gains:

* **retry with backoff** — transport failures (drops, lost replies,
  unknown endpoints) are retried under the
  :class:`~repro.resil.policy.RetryPolicy`, charging the simulated clock
  the attempt timeout plus an exponential, jittered backoff;
* **replay safety** — each logical request is stamped with a retry id
  (``_rid``) and resent *verbatim*, so servers with a
  :class:`~repro.resil.dedupe.ResponseCache` recognise the resend and
  return the original reply instead of re-running the handler (the same
  contract as the existing session-retry comment in
  ``services/client.py``: safe to resend verbatim);
* **circuit breakers** — consecutive transport failures open a
  per-endpoint breaker; while open, attempts skip the endpoint without
  touching the wire, and a cooldown admits a single half-open probe;
* **replica failover** — a :class:`~repro.resil.replica.ReplicaGroup`
  maps a logical principal to ordered endpoints; routing prefers the
  primary and falls to the first replica whose breaker admits traffic.

Service-level errors (``{"__error__": ...}`` payloads) are *successful*
deliveries — they are returned to the caller unretried, exactly as on a
bare network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.clock import SimulatedClock
from repro.crypto.rng import Rng
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    CircuitOpenError,
    MessageDroppedError,
    RetriesExhaustedError,
    UnknownEndpointError,
)
from repro.net.network import Network
from repro.resil.dedupe import RID_KEY
from repro.resil.policy import CircuitBreaker, RetryPolicy
from repro.resil.replica import ReplicaGroup

#: Transport failures the channel is allowed to retry.  Anything else —
#: service errors, verification failures — travels as a response payload
#: and is never seen here.
_RETRYABLE = (MessageDroppedError, UnknownEndpointError)


@dataclass
class ChannelStats:
    """Cheap counters mirrored into telemetry (kept even when telemetry
    is the null object, so chaos reports never depend on tracing)."""

    sends: int = 0
    retries: int = 0
    failovers: int = 0
    exhausted: int = 0
    breaker_opens: int = 0
    circuit_rejections: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "sends": self.sends,
            "retries": self.retries,
            "failovers": self.failovers,
            "exhausted": self.exhausted,
            "breaker_opens": self.breaker_opens,
            "circuit_rejections": self.circuit_rejections,
        }


class ResilientChannel:
    """A Network look-alike adding retry/breaker/failover semantics."""

    def __init__(
        self,
        network: Network,
        policy: Optional[RetryPolicy] = None,
        rng: Optional[Rng] = None,
        telemetry=None,
    ) -> None:
        self.network = network
        self.policy = policy or RetryPolicy()
        #: Jitter and retry ids come from our own rng, never the network's,
        #: so wrapping a network does not perturb its seeded draw order.
        self.rng = rng or Rng(seed=b"resil-channel")
        self.telemetry = (
            telemetry if telemetry is not None else network.telemetry
        )
        self.stats = ChannelStats()
        self._groups: Dict[PrincipalId, ReplicaGroup] = {}
        self._breakers: Dict[PrincipalId, CircuitBreaker] = {}

    # -- Network surface -----------------------------------------------------

    def __getattr__(self, name):
        # Everything we don't override (register, knows, taps, metrics,
        # clock, fault hooks...) is the wrapped network's.
        if name == "network":
            raise AttributeError(name)
        return getattr(self.network, name)

    # -- replicas ------------------------------------------------------------

    def add_replica_group(self, group: ReplicaGroup) -> None:
        self._groups[group.logical] = group

    def add_replica(
        self, logical: PrincipalId, endpoint: PrincipalId
    ) -> None:
        """Register ``endpoint`` as a failover target for ``logical``."""
        group = self._groups.setdefault(logical, ReplicaGroup(logical))
        if not group.endpoints:
            group.add(logical)
        group.add(endpoint)

    def candidates_for(
        self, destination: PrincipalId
    ) -> Tuple[PrincipalId, ...]:
        group = self._groups.get(destination)
        if group is None:
            return (destination,)
        return group.candidates()

    def breaker_for(self, endpoint: PrincipalId) -> CircuitBreaker:
        breaker = self._breakers.get(endpoint)
        if breaker is None:
            breaker = CircuitBreaker(self.policy.breaker)
            self._breakers[endpoint] = breaker
        return breaker

    def authority_unreachable(self, principal: PrincipalId) -> bool:
        """True when every endpoint for ``principal`` has an open breaker.

        This is the degraded-mode trigger (§3.1–3.2): end servers consult
        it to decide whether a cached-credential grant should be marked
        ``degraded``.  A principal the channel has never struggled with
        reports reachable.
        """
        now = self.network.clock.now()
        candidates = self.candidates_for(principal)
        open_count = 0
        for endpoint in candidates:
            breaker = self._breakers.get(endpoint)
            if (
                breaker is not None
                and breaker.state == CircuitBreaker.OPEN
                and now < breaker.half_open_at()
            ):
                open_count += 1
        return open_count == len(candidates) and open_count > 0

    # -- clock charging --------------------------------------------------

    def _charge(self, seconds: float) -> None:
        clock = self.network.clock
        if seconds > 0 and isinstance(clock, SimulatedClock):
            clock.advance(seconds)

    # -- routing -------------------------------------------------------------

    def _route(
        self, destination: PrincipalId
    ) -> Tuple[PrincipalId, CircuitBreaker, bool]:
        """Pick the first candidate whose breaker admits traffic.

        When every breaker is open, the client has nothing to do but wait:
        on a simulated clock we advance to the earliest half-open time and
        route again; on a real clock we fail fast.
        """
        candidates = self.candidates_for(destination)
        for probe in range(2):
            for index, endpoint in enumerate(candidates):
                breaker = self.breaker_for(endpoint)
                if breaker.allow(self.network.clock.now()):
                    return endpoint, breaker, index > 0
            self.stats.circuit_rejections += 1
            if self.telemetry.enabled:
                self.telemetry.inc(
                    "resil.circuit_rejections_total",
                    help="Sends refused because every breaker was open.",
                    destination=str(destination),
                )
            wait = (
                min(
                    self.breaker_for(e).half_open_at() for e in candidates
                )
                - self.network.clock.now()
            )
            if probe > 0 or wait <= 0 or wait == float("inf") or not isinstance(
                self.network.clock, SimulatedClock
            ):
                break
            self._charge(wait)
        raise CircuitOpenError(
            f"every endpoint for {destination} has an open circuit breaker"
        )

    # -- the resilient send ----------------------------------------------

    def send(
        self,
        source: PrincipalId,
        destination: PrincipalId,
        msg_type: str,
        payload: dict,
    ) -> dict:
        """Send with retries, breaker gating, and replica failover.

        Raises:
            RetriesExhaustedError: every permitted attempt lost a message.
            CircuitOpenError: no endpoint would admit even one attempt.
        """
        policy = self.policy
        attempts = policy.attempts_for(msg_type)
        # One retry id per *logical* request; retries resend the same
        # stamped payload verbatim so servers can dedupe (replay safety).
        stamped = dict(payload)
        stamped[RID_KEY] = self.rng.bytes(16).hex()
        self.stats.sends += 1
        last_exc: Optional[Exception] = None
        with self.telemetry.span(
            "resil.send",
            destination=str(destination),
            msg_type=msg_type,
        ) as span:
            for attempt in range(attempts):
                # One child span per attempt: resends and failover legs of
                # the same logical request stay causally distinct in the
                # trace while sharing the parent's trace id.
                try:
                    with self.telemetry.span(
                        "resil.attempt",
                        logical=str(destination),
                        msg_type=msg_type,
                        attempt=attempt + 1,
                    ) as attempt_span:
                        endpoint, breaker, failover = self._route(
                            destination
                        )
                        attempt_span.set(
                            endpoint=str(endpoint), failover=failover
                        )
                        if failover:
                            self.stats.failovers += 1
                            if self.telemetry.enabled:
                                self.telemetry.inc(
                                    "resil.failovers_total",
                                    help="Sends routed to a non-primary "
                                    "replica.",
                                    logical=str(destination),
                                    endpoint=str(endpoint),
                                )
                        response = self.network.send(
                            source, endpoint, msg_type, stamped
                        )
                        attempt_span.set(outcome="ok")
                except _RETRYABLE as exc:
                    last_exc = exc
                    was_open = breaker.state == CircuitBreaker.OPEN
                    breaker.record_failure(self.network.clock.now())
                    attempt_span.set(
                        outcome="lost",
                        reason=type(exc).__name__,
                        breaker=breaker.state,
                    )
                    if (
                        breaker.state == CircuitBreaker.OPEN
                        and not was_open
                    ):
                        self.stats.breaker_opens += 1
                        if self.telemetry.enabled:
                            self.telemetry.inc(
                                "resil.breaker_transitions_total",
                                help="Circuit breaker transitions.",
                                endpoint=str(endpoint),
                                to="open",
                            )
                    # Charge the attempt timeout, and back off before the
                    # next try.
                    self._charge(policy.timeout.seconds)
                    if attempt + 1 < attempts:
                        self.stats.retries += 1
                        if self.telemetry.enabled:
                            self.telemetry.inc(
                                "resil.retries_total",
                                help="Retried sends, by message type.",
                                msg_type=msg_type,
                            )
                            self.telemetry.event(
                                "resil.retry",
                                destination=str(destination),
                                endpoint=str(endpoint),
                                msg_type=msg_type,
                                attempt=attempt + 1,
                                reason=type(exc).__name__,
                            )
                        self._charge(policy.delay(attempt, self.rng))
                    continue
                breaker.record_success()
                span.set(attempts=attempt + 1)
                return response
            span.set(attempts=attempts, exhausted=True)
        self.stats.exhausted += 1
        if self.telemetry.enabled:
            self.telemetry.inc(
                "resil.exhausted_total",
                help="Sends that failed every permitted attempt.",
                msg_type=msg_type,
            )
        raise RetriesExhaustedError(
            f"{msg_type} to {destination} failed after {attempts} "
            f"attempt(s): {last_exc}",
            attempts=attempts,
        ) from last_exc
