"""Degraded-mode authorization: cached proxies outlive their issuer.

The paper's availability argument (§3.1–3.2): once an authorization server
has issued a restricted proxy (or a capability has been granted), the end
server verifies it *offline* — "the authorization server is off the
request path".  So an outage of the authorization server must not stop
clients that already hold still-fresh credentials; only *new* grants (and
anything past its expiry or revocation) require the authority.

:class:`ResilientAuthorizationClient` implements the client half: every
successful grant is cached, and when the authorization server is
unreachable (retries exhausted or its breaker open) a still-fresh cached
proxy is returned instead, counted as a degraded grant.  The server half
is the ``authority_monitor`` hook on
:class:`~repro.services.endserver.EndServer`, which marks such grants
``degraded=True`` in the verification result and the audit log.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.clock import Clock
from repro.encoding.identifiers import PrincipalId
from repro.errors import (
    CircuitOpenError,
    MessageDroppedError,
    RetriesExhaustedError,
    UnknownEndpointError,
)
from repro.kerberos.client import KerberosClient
from repro.kerberos.proxy_support import KerberosProxy
from repro.services.authorization import AuthorizationClient

#: Transport-level failures that trigger the cached-proxy fallback.
_AUTHORITY_DOWN = (
    RetriesExhaustedError,
    CircuitOpenError,
    MessageDroppedError,
    UnknownEndpointError,
)

_CacheKey = Tuple[PrincipalId, Tuple[str, ...], Tuple[str, ...]]


class ProxyCache:
    """Client-side store of issued proxies, keyed by what was asked for."""

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self._entries: Dict[_CacheKey, Tuple[float, KerberosProxy]] = {}

    @staticmethod
    def _key(
        end_server: PrincipalId,
        operations: Tuple[str, ...],
        targets: Tuple[str, ...],
    ) -> _CacheKey:
        return (end_server, tuple(operations), tuple(targets))

    def put(
        self,
        end_server: PrincipalId,
        operations: Tuple[str, ...],
        targets: Tuple[str, ...],
        proxy: KerberosProxy,
    ) -> None:
        # The cache entry dies with the tightest certificate in the chain;
        # a proxy that would no longer verify is never served.
        expires_at = min(
            cert.expires_at for cert in proxy.proxy.certificates
        )
        self._entries[self._key(end_server, operations, targets)] = (
            expires_at,
            proxy,
        )

    def get(
        self,
        end_server: PrincipalId,
        operations: Tuple[str, ...],
        targets: Tuple[str, ...],
    ) -> Optional[KerberosProxy]:
        key = self._key(end_server, operations, targets)
        entry = self._entries.get(key)
        if entry is None:
            return None
        expires_at, proxy = entry
        if expires_at <= self.clock.now():
            del self._entries[key]
            return None
        return proxy

    def revoke(self, end_server: Optional[PrincipalId] = None) -> int:
        """Drop cached proxies (all, or those for one end-server).

        Mirrors §3.2's revocation story: proxies are short-lived and an
        operator who revokes rights also flushes caches — a degraded-mode
        client must not keep exercising revoked credentials it happens to
        still hold.  Returns the number of entries dropped.
        """
        if end_server is None:
            count = len(self._entries)
            self._entries.clear()
            return count
        doomed = [k for k in self._entries if k[0] == end_server]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._entries)


class ResilientAuthorizationClient(AuthorizationClient):
    """Fig. 3 client that survives authorization-server outages."""

    def __init__(
        self,
        kerberos: KerberosClient,
        authorization_server: PrincipalId,
        telemetry=None,
    ) -> None:
        super().__init__(kerberos, authorization_server)
        self.cache = ProxyCache(kerberos.clock)
        self.telemetry = telemetry
        #: Grants served from cache while the authority was down.
        self.degraded_grants = 0

    def authorize(
        self,
        end_server: PrincipalId,
        operations: Tuple[str, ...],
        targets: Tuple[str, ...] = ("*",),
        proxy: Optional[KerberosProxy] = None,
        group_proxies=(),
    ) -> KerberosProxy:
        operations = tuple(operations)
        targets = tuple(targets)
        try:
            issued = super().authorize(
                end_server,
                operations,
                targets=targets,
                proxy=proxy,
                group_proxies=group_proxies,
            )
        except _AUTHORITY_DOWN:
            cached = self.cache.get(end_server, operations, targets)
            if cached is None:
                raise
            self.degraded_grants += 1
            if self.telemetry is not None and self.telemetry.enabled:
                self.telemetry.inc(
                    "resil.degraded_authorizations_total",
                    help="Authorizations served from the client proxy "
                    "cache while the authorization server was down.",
                    end_server=str(end_server),
                )
                self.telemetry.event(
                    "resil.degraded_authorization",
                    end_server=str(end_server),
                    operations=",".join(operations),
                )
            return cached
        self.cache.put(end_server, operations, targets, issued)
        return issued
