"""Chaos campaigns: seeded fault injection against the paper's figures.

A campaign replays one of the paper's protocol workloads (fig1, fig3,
fig4, fig5) many times on a resilient realm while the simulated network
misbehaves — request legs dropped, reply legs lost after server side
effects committed, the issuing authority blackholed for a window, the
primary KDC killed outright.  Because the fabric is deterministic, the
same seed always produces the same faults, the same retries, and the
same recovery, so a chaos run is a *repeatable experiment*, not a dice
roll.

Every campaign runs twice:

* a **fault-free baseline** on an identically-seeded realm, recording
  each unit of work's application-level outcome;
* the **faulted run**, under the requested fault mix.

The report compares outcomes unit by unit (*parity*): with retries on,
a correct resilience layer must deliver exactly the results the healthy
system would have — drops become latency, never divergence.  With
``retry=False`` the same campaign is the control arm: failures surface
as unrecoverable errors, which is the point of the comparison.

Workloads mirror the paper's figures:

* ``fig1`` — bearer capability presented anonymously (§3.1).  No
  authority is on the request path, so even a KDC outage only slows
  things down: verification is offline.
* ``fig3`` — authorization-server grants (§3.2) through
  :class:`~repro.resil.degraded.ResilientAuthorizationClient`; an
  ``--outage`` window on the authorization server exercises degraded
  mode end to end (cached proxies honoured, grants flagged in the
  audit log).
* ``fig4`` — a delegate cascade alice → carol → dave presented with a
  session (§3.4); every unit builds and verifies a fresh chain.
* ``fig5`` — cross-bank check clearing (§4): write, endorse, deposit,
  with the inter-bank E2 hop riding the same resilient fabric.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.acl import AclEntry, SinglePrincipal
from repro.core.restrictions import Authorized, AuthorizedEntry, Grantee
from repro.durability import DurabilityStore
from repro.encoding.identifiers import PrincipalId
from repro.errors import ReproError
from repro.kerberos.kdc import kdc_principal
from repro.kerberos.proxy_support import endorse, grant_via_credentials
from repro.obs.telemetry import Telemetry
from repro.resil.policy import NO_RETRY, RetryPolicy
from repro.testbed import Realm

#: The campaign policy leans harder on retries than the realm default:
#: at 30% request loss a send still fails outright only with
#: probability 0.3^8 ≈ 7e-5, so seeded acceptance runs recover fully.
CAMPAIGN_POLICY = RetryPolicy(max_attempts=8)


@dataclass(frozen=True)
class CampaignSpec:
    """One chaos experiment, fully determined by its fields."""

    figure: str
    seed: int = 7
    units: int = 20
    #: Probability of losing each request leg / each response leg.
    drop_rate: float = 0.0
    response_drop_rate: float = 0.0
    #: False runs the control arm (no retries — failures expected).
    retry: bool = True
    #: Blackhole the workload's authority for a window, expressed as
    #: ``(start, stop)`` offsets in seconds from fault-injection time.
    outage: Optional[Tuple[float, float]] = None
    #: Stand up a KDC replica, then permanently blackhole the primary
    #: before any traffic flows — everything must fail over.
    kill_primary: bool = False
    #: Simulated seconds between unit arrivals.  Units are near-instant
    #: on the simulated fabric; pacing spreads them out so ``outage``
    #: windows expressed in seconds actually overlap the workload.
    pacing: float = 1.0
    #: Kill a workload server mid-campaign and rebuild it from its
    #: durability store: ``(server_name, tick)`` crashes ``server_name``
    #: just before unit ``tick`` runs.  Only the faulted arm crashes; the
    #: baseline stays up, so parity proves recovery is lossless.
    crash_restart: Optional[Tuple[str, int]] = None
    #: Delivery runtime for both arms: ``"sync"`` or ``"aio"``.
    runtime: str = "sync"
    #: Directory for WAL/snapshot files (a temp dir, removed after the
    #: run, when None).
    data_dir: Optional[str] = None

    def describe_faults(self) -> str:
        parts = []
        if self.drop_rate:
            parts.append(f"request-drop {self.drop_rate:.0%}")
        if self.response_drop_rate:
            parts.append(f"response-drop {self.response_drop_rate:.0%}")
        if self.outage:
            start, stop = self.outage
            parts.append(f"authority outage t+{start:g}s..t+{stop:g}s")
        if self.kill_primary:
            parts.append("primary KDC killed (replica stands in)")
        if self.crash_restart:
            server, tick = self.crash_restart
            parts.append(
                f"crash-restart {server} before unit {tick} "
                "(recover from WAL)"
            )
        return ", ".join(parts) if parts else "none"


@dataclass(frozen=True)
class UnitResult:
    """Outcome of one unit of figure work."""

    index: int
    ok: bool
    outcome: Any = None
    error: str = ""
    #: Trace id of the unit's causal trace on the faulted arm ("" when
    #: the realm ran without telemetry, e.g. the baseline).
    trace_id: str = ""


@dataclass
class ChaosReport:
    """What the faulted run did, and whether it matched the baseline."""

    spec: CampaignSpec
    units: List[UnitResult]
    baseline_units: List[UnitResult]
    stats: Dict[str, int]
    dedupe_hits: int
    degraded_client: int
    degraded_server: int
    sim_seconds: float
    finale: Any = None
    baseline_finale: Any = None
    extras: Dict[str, int] = field(default_factory=dict)
    #: Machine-checked recovery failures from crash-restart campaigns:
    #: unreplayable WAL records, snapshot gaps, and post-recovery ledger
    #: audit discrepancies.  Empty means every restarted server came back
    #: with books that balance and an audit trail that parses.
    recovery_problems: List[str] = field(default_factory=list)
    #: Pre-rendered causal waterfalls of the offending units, populated
    #: when the campaign fails its promise (forensic auto-dump).
    forensics: List[str] = field(default_factory=list)

    # -- derived -----------------------------------------------------------

    @property
    def unrecoverable(self) -> int:
        return sum(1 for unit in self.units if not unit.ok)

    @property
    def compared(self) -> int:
        return sum(
            1
            for mine, theirs in zip(self.units, self.baseline_units)
            if mine.ok and theirs.ok
        )

    def mismatches(self) -> List[int]:
        """Unit indices where both runs succeeded but outcomes differ."""
        return [
            mine.index
            for mine, theirs in zip(self.units, self.baseline_units)
            if mine.ok and theirs.ok and mine.outcome != theirs.outcome
        ]

    @property
    def parity(self) -> bool:
        """True when every comparable outcome matches the baseline.

        Final state (e.g. account balances) is only comparable when
        *both* runs completed every unit — a failed unit legitimately
        leaves different balances behind.
        """
        if self.mismatches():
            return False
        baseline_clean = all(unit.ok for unit in self.baseline_units)
        if (
            baseline_clean
            and self.unrecoverable == 0
            and self.finale != self.baseline_finale
        ):
            return False
        return True

    def exit_code(self) -> int:
        """Non-zero only when the resilient arm failed its promise."""
        if not self.spec.retry:
            return 0
        if self.unrecoverable or not self.parity:
            return 1
        return 1 if self.recovery_problems else 0

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        spec = self.spec
        lines = [
            f"== chaos campaign: {spec.figure} (seed {spec.seed}) ==",
            f"units: {spec.units}   retries: "
            + (
                f"on (max {CAMPAIGN_POLICY.max_attempts} attempts)"
                if spec.retry
                else "OFF (control arm)"
            ),
            f"faults: {spec.describe_faults()}",
            "",
            "recovery report",
        ]
        counters = [
            ("sends", self.stats.get("sends", 0)),
            ("retries", self.stats.get("retries", 0)),
            ("deduped resends", self.dedupe_hits),
            ("failovers", self.stats.get("failovers", 0)),
            ("breaker opens", self.stats.get("breaker_opens", 0)),
            ("circuit rejections", self.stats.get("circuit_rejections", 0)),
            ("degraded grants (server)", self.degraded_server),
            ("degraded grants (client cache)", self.degraded_client),
        ]
        counters.extend(self.extras.items())
        counters.append(
            ("unrecoverable", f"{self.unrecoverable} / {spec.units} units")
        )
        counters.append(("simulated time", f"{self.sim_seconds:.1f}s"))
        width = max(len(name) for name, _ in counters) + 2
        for name, value in counters:
            lines.append(f"  {name} ".ljust(width + 2, ".") + f" {value}")
        lines.append("")
        if self.unrecoverable:
            failed = [unit for unit in self.units if not unit.ok]
            lines.append(
                f"failed units: "
                + ", ".join(str(unit.index) for unit in failed)
            )
            for unit in failed[:5]:
                suffix = (
                    f"  (trace {unit.trace_id[:12]}…)"
                    if unit.trace_id
                    else ""
                )
                lines.append(f"  unit {unit.index}: {unit.error}{suffix}")
            lines.append("")
        if self.spec.crash_restart:
            if self.recovery_problems:
                lines.append(
                    f"recovery: FAIL — {len(self.recovery_problems)} "
                    "problem(s) rebuilding durable state"
                )
                for problem in self.recovery_problems[:5]:
                    lines.append(f"  {problem}")
            else:
                lines.append(
                    "recovery: OK — restarted server rebuilt from "
                    "WAL+snapshot with balanced books"
                )
        mismatched = self.mismatches()
        if mismatched:
            lines.append(
                "parity: FAIL — outcomes diverged from the fault-free "
                f"baseline at units {mismatched}"
            )
        elif not self.parity:
            lines.append(
                "parity: FAIL — final state diverged from the fault-free "
                "baseline"
            )
        else:
            lines.append(
                f"parity: PASS — {self.compared}/{spec.units} comparable "
                "unit outcomes match the fault-free baseline"
            )
        if spec.retry:
            lines.append(
                "verdict: "
                + (
                    "all work recovered"
                    if self.exit_code() == 0
                    else "RESILIENCE FAILURE"
                )
            )
        else:
            lines.append(
                "verdict: control arm — "
                f"{self.unrecoverable} unit(s) lost without retries"
            )
        if self.forensics:
            lines.append("")
            lines.append("forensic traces (offending units):")
            for dump in self.forensics:
                lines.append("")
                lines.append(dump)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figure workloads
# ---------------------------------------------------------------------------


class _Workload:
    """One figure's repeatable unit of work on a live realm.

    ``setup`` builds the deployment and warms tickets/sessions (faults
    are injected only afterwards, mirroring the figures' convention of
    omitting key-distribution traffic).  ``unit`` performs one
    application-level exchange and returns a comparable outcome.

    ``RESTARTABLE`` names the servers a ``crash_restart`` fault may
    target: server name -> (state key, server kind).  A targeted server
    is built with a :class:`~repro.durability.DurabilityStore` (attached
    via :meth:`attach_durability` before ``setup`` runs) so the crash
    loses the process but not the WAL.
    """

    #: server name -> (state key holding the live server, restart kind).
    RESTARTABLE: Dict[str, Tuple[str, str]] = {}

    def __init__(self) -> None:
        self._durability: Dict[str, DurabilityStore] = {}
        #: (name, server) for every crash-restarted server, in order.
        self.restarted: List[Tuple[str, Any]] = []

    def attach_durability(self, name: str, store: DurabilityStore) -> None:
        """Give ``name``'s server a durability store before setup."""
        self._durability[name] = store

    def _server_kwargs(self, name: str) -> dict:
        store = self._durability.get(name)
        return {} if store is None else {"durability": store}

    def crash_restart(self, realm: Realm, state: dict, name: str) -> Any:
        """Kill ``name``'s server and rebuild it from its store.

        The crash model: process state (sessions, in-memory registries,
        balances) vanishes; the WAL and snapshot on disk survive.  The
        replacement registers the principal's network handler again and
        recovers before serving.  Clients notice only as dropped sessions,
        which the service client re-establishes transparently.
        """
        if name not in self.RESTARTABLE:
            raise ValueError(
                f"workload cannot crash-restart {name!r}; "
                f"restartable servers: {sorted(self.RESTARTABLE)}"
            )
        state_key, kind = self.RESTARTABLE[name]
        old = state[state_key]
        realm.network.unregister(realm.principal(name))
        kwargs = self._server_kwargs(name)
        if kind == "accounting":
            server = realm.restart_accounting_server(name, **kwargs)
            server.routes.update(old.routes)
        else:
            server = realm.restart_file_server(name, **kwargs)
        state[state_key] = server
        self.restarted.append((name, server))
        return server

    def setup(self, realm: Realm) -> dict:
        raise NotImplementedError

    def unit(self, realm: Realm, state: dict, index: int) -> Any:
        raise NotImplementedError

    def finale(self, realm: Realm, state: dict) -> Any:
        return None

    def authority(self, realm: Realm, state: dict) -> PrincipalId:
        """The principal an ``--outage`` window blackholes."""
        return kdc_principal(realm.realm)

    def degraded_counts(self, state: dict) -> Tuple[int, int]:
        """(client-cache grants, server-honoured grants) in degraded mode."""
        return 0, 0

    def extras(self, state: dict) -> Dict[str, int]:
        out: Dict[str, int] = {}
        if self.restarted:
            out["crash restarts"] = len(self.restarted)
            out["wal records replayed"] = sum(
                server.recovery.total_replayed
                for _, server in self.restarted
                if server.recovery is not None
            )
        return out

    def _file_server(self, realm: Realm, docs: int = 5):
        fs = realm.file_server("files", **self._server_kwargs("files"))
        for k in range(docs):
            fs.put(f"doc{k}.txt", b"contents of doc %d" % k)
        return fs


class _Fig1(_Workload):
    """Bearer capability presented anonymously; verification is offline."""

    RESTARTABLE = {"files": ("fs", "file")}

    def setup(self, realm: Realm) -> dict:
        alice = realm.user("alice")
        bob = realm.user("bob")
        fs = self._file_server(realm)
        fs.grant_owner(alice.principal)
        creds = alice.kerberos.get_ticket(fs.principal)
        capability = grant_via_credentials(
            creds,
            (
                Authorized(
                    entries=tuple(
                        AuthorizedEntry(f"doc{k}.txt", ("read",))
                        for k in range(5)
                    )
                ),
            ),
            realm.clock.now(),
            rng=alice.kerberos.rng,
        )
        client = bob.client_for(fs.principal)
        client.request("read", "doc0.txt", proxy=capability, anonymous=True)
        return {"client": client, "capability": capability, "fs": fs}

    def unit(self, realm: Realm, state: dict, index: int) -> Any:
        reply = state["client"].request(
            "read",
            f"doc{index % 5}.txt",
            proxy=state["capability"],
            anonymous=True,
        )
        return {"data": reply["data"]}


class _Fig3(_Workload):
    """Authorization-server grants with the degraded-mode client cache."""

    RESTARTABLE = {"files": ("fs", "file")}

    def setup(self, realm: Realm) -> dict:
        fs = self._file_server(realm)
        authz = realm.authorization_server("authz")
        fs.acl.add(AclEntry(subject=SinglePrincipal(authz.principal)))
        user = realm.user("client")
        authz.database_for(fs.principal).add(
            AclEntry(
                subject=SinglePrincipal(user.principal), operations=("read",)
            )
        )
        azc = user.resilient_authorization_client(
            authz.principal, telemetry=realm.telemetry
        )
        client = user.client_for(fs.principal)
        azc.service.establish_session()
        warm = azc.authorize(fs.principal, ("read",))
        client.establish_session()
        client.request("read", "doc0.txt", proxy=warm)
        return {"azc": azc, "client": client, "fs": fs, "authz": authz}

    def unit(self, realm: Realm, state: dict, index: int) -> Any:
        proxy = state["azc"].authorize(state["fs"].principal, ("read",))
        reply = state["client"].request(
            "read", f"doc{index % 5}.txt", proxy=proxy
        )
        return {"data": reply["data"]}

    def authority(self, realm: Realm, state: dict) -> PrincipalId:
        return state["authz"].principal

    def degraded_counts(self, state: dict) -> Tuple[int, int]:
        server_side = sum(
            1 for record in state["fs"].audit.all() if record.degraded
        )
        return state["azc"].degraded_grants, server_side


class _Fig4(_Workload):
    """Delegate cascade alice -> carol -> dave, one fresh chain per unit."""

    RESTARTABLE = {"files": ("fs", "file")}

    def setup(self, realm: Realm) -> dict:
        alice = realm.user("alice")
        carol = realm.user("carol")
        dave = realm.user("dave")
        fs = self._file_server(realm)
        fs.grant_owner(alice.principal)
        state = {
            "alice": alice,
            "carol": carol,
            "dave": dave,
            "fs": fs,
            "client": dave.client_for(fs.principal),
        }
        state["client"].establish_session()
        self.unit(realm, state, 0)
        return state

    def unit(self, realm: Realm, state: dict, index: int) -> Any:
        alice, carol, dave = state["alice"], state["carol"], state["dave"]
        fs = state["fs"]
        now = realm.clock.now()
        to_carol = grant_via_credentials(
            alice.kerberos.get_ticket(fs.principal),
            (Grantee(principals=(carol.principal,)),),
            now,
            rng=alice.kerberos.rng,
        )
        chain = endorse(
            to_carol,
            carol.kerberos.get_ticket(fs.principal),
            dave.principal,
            (),
            now,
            now + 600.0,
            rng=carol.kerberos.rng,
        )
        reply = state["client"].request(
            "read", f"doc{index % 5}.txt", proxy=chain
        )
        return {"data": reply["data"]}


class _Fig5(_Workload):
    """Cross-bank check clearing; the E2 hop rides the same fabric."""

    RESTARTABLE = {
        "bank-payor": ("bank_payor", "accounting"),
        "bank-payee": ("bank_payee", "accounting"),
    }

    def setup(self, realm: Realm) -> dict:
        payor = realm.user("payor")
        payee = realm.user("payee")
        bank_payor = realm.accounting_server(
            "bank-payor", **self._server_kwargs("bank-payor")
        )
        bank_payee = realm.accounting_server(
            "bank-payee", **self._server_kwargs("bank-payee")
        )
        bank_payor.create_account(
            "payor", payor.principal, {"dollars": 10_000}
        )
        bank_payee.create_account("payee", payee.principal)
        payor_client = payor.accounting_client(bank_payor.principal)
        payee_client = payee.accounting_client(bank_payee.principal)
        check = payor_client.write_check(
            "payor", payee.principal, "dollars", 1
        )
        payee_client.deposit_check(check, "payee")
        return {
            "payor_client": payor_client,
            "payee_client": payee_client,
            "bank_payor": bank_payor,
            "bank_payee": bank_payee,
            "payee": payee,
        }

    def unit(self, realm: Realm, state: dict, index: int) -> Any:
        amount = 1 + (index % 7)
        check = state["payor_client"].write_check(
            "payor", state["payee"].principal, "dollars", amount
        )
        result = state["payee_client"].deposit_check(check, "payee")
        return {"amount": amount, "paid": int(result["paid"])}

    def finale(self, realm: Realm, state: dict) -> Any:
        return {
            "payor": state["bank_payor"]
            .accounts["payor"]
            .balance("dollars"),
            "payee": state["bank_payee"]
            .accounts["payee"]
            .balance("dollars"),
        }


WORKLOADS: Dict[str, type] = {
    "fig1": _Fig1,
    "fig3": _Fig3,
    "fig4": _Fig4,
    "fig5": _Fig5,
}


# ---------------------------------------------------------------------------
# The campaign runner
# ---------------------------------------------------------------------------


def _prepare(
    spec: CampaignSpec, faulted: bool, data_dir: Optional[str]
) -> Tuple[Realm, _Workload]:
    """A seeded realm and workload, durability attached, nothing deployed.

    ``kill_primary`` campaigns kill the primary *before* any traffic so
    even ticket warm-up exercises failover.  Deployment (``setup``) is
    left to :func:`_run_arm` — on the aio runtime it must happen inside
    the served loop.
    """
    policy = (
        CAMPAIGN_POLICY if (spec.retry or not faulted) else NO_RETRY
    )
    seed = f"chaos-{spec.figure}-{spec.seed}".encode()
    # The faulted arm records full traces so a failed campaign can dump
    # the offending units' causal history.  The tracer draws ids from its
    # own rng, so tracing never perturbs the realm's seeded behaviour —
    # the baseline stays untraced because parity compares application
    # outcomes, and recording both arms would double the span load.
    telemetry = Telemetry() if faulted else None
    realm = Realm(
        seed=seed,
        resilience=policy,
        telemetry=telemetry,
        runtime=spec.runtime,
    )
    workload = WORKLOADS[spec.figure]()
    if faulted and spec.crash_restart is not None:
        name, _ = spec.crash_restart
        if name not in workload.RESTARTABLE:
            raise ValueError(
                f"{spec.figure} cannot crash-restart {name!r}; "
                f"restartable servers: {sorted(workload.RESTARTABLE)}"
            )
        workload.attach_durability(
            name,
            DurabilityStore(
                os.path.join(data_dir, name),
                telemetry=realm.telemetry,
                server=name,
            ),
        )
    if faulted and spec.kill_primary:
        realm.kdc_replica("kdc-standby")
        realm.network.blackhole(kdc_principal(realm.realm))
    return realm, workload


def _run_arm(
    spec: CampaignSpec, faulted: bool, data_dir: Optional[str]
) -> Tuple[Realm, _Workload, dict]:
    """Deploy and run one arm; returns (realm, workload, results dict)."""
    realm, workload = _prepare(spec, faulted, data_dir)
    out: dict = {}

    def body() -> None:
        state = workload.setup(realm)
        if realm.telemetry.enabled:
            # Warm-up traffic (tickets, sessions) is not part of any unit.
            realm.telemetry.tracer.clear()
            realm.telemetry.store.clear()
        if faulted:
            _inject(realm, workload, state, spec)
        started = realm.clock.now()
        out["units"] = _run_units(realm, workload, state, spec, faulted)
        out["state"] = state
        out["sim_seconds"] = realm.clock.now() - started
        out["finale"] = workload.finale(realm, state)

    if spec.runtime == "aio":
        from repro.net.aio import drive

        drive(realm.network, body)
    else:
        body()
    return realm, workload, out


def _inject(
    realm: Realm, workload: _Workload, state: dict, spec: CampaignSpec
) -> None:
    network = realm.network
    if spec.drop_rate:
        network.set_drop_probability(spec.drop_rate, leg="request")
    if spec.response_drop_rate:
        network.set_drop_probability(
            spec.response_drop_rate, leg="response"
        )
    if spec.outage:
        start, stop = spec.outage
        now = realm.clock.now()
        network.blackhole(
            workload.authority(realm, state),
            since=now + start,
            until=now + stop,
        )


def _run_units(
    realm: Realm,
    workload: _Workload,
    state: dict,
    spec: CampaignSpec,
    faulted: bool = True,
) -> List[UnitResult]:
    from repro.clock import SimulatedClock

    crash = spec.crash_restart if faulted else None
    results: List[UnitResult] = []
    for index in range(spec.units):
        if spec.pacing > 0 and isinstance(realm.clock, SimulatedClock):
            realm.clock.advance(spec.pacing)
        if crash is not None and index == crash[1]:
            with realm.telemetry.span(
                "recovery.crash_restart", server=crash[0], unit=index
            ):
                workload.crash_restart(realm, state, crash[0])
        trace_id = ""
        try:
            with realm.telemetry.run(
                f"{spec.figure}-unit-{index}"
            ) as run_span:
                trace_id = run_span.trace_id or ""
                outcome = workload.unit(realm, state, index)
        except ReproError as exc:
            results.append(
                UnitResult(
                    index=index,
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    trace_id=trace_id,
                )
            )
        else:
            results.append(
                UnitResult(
                    index=index, ok=True, outcome=outcome, trace_id=trace_id
                )
            )
    return results


def _recovery_problems(workload: _Workload) -> List[str]:
    """Machine-check every crash-restarted server's rebuilt state.

    Three layers: the recovery report itself (unreplayable records,
    snapshot gaps), per-currency conservation, and derived-vs-live audit
    parity on recovered accounting servers.
    """
    problems: List[str] = []
    for name, server in workload.restarted:
        recovery = server.recovery
        if recovery is None:
            problems.append(f"{name}: restarted without running recovery")
            continue
        problems.extend(f"{name}: {p}" for p in recovery.problems)
        ledger = getattr(server, "ledger", None)
        if ledger is not None:
            problems.extend(
                f"{name}: {p}" for p in ledger.audit_discrepancies()
            )
    return problems


def run_campaign(spec: CampaignSpec) -> ChaosReport:
    """Run the baseline and the faulted arm; return the comparison."""
    if spec.figure not in WORKLOADS:
        raise ValueError(
            f"unknown figure {spec.figure!r}; "
            f"choose from {sorted(WORKLOADS)}"
        )
    if spec.crash_restart is not None:
        _, tick = spec.crash_restart
        if not 0 <= tick < spec.units:
            raise ValueError(
                f"crash-restart tick {tick} must fall inside the "
                f"campaign's {spec.units} units"
            )

    data_dir = spec.data_dir
    scratch: Optional[str] = None
    if spec.crash_restart is not None and data_dir is None:
        data_dir = scratch = tempfile.mkdtemp(prefix="repro-chaos-wal-")
    try:
        _, base_workload, base = _run_arm(spec, False, data_dir)
        realm, workload, run = _run_arm(spec, True, data_dir)
        state = run["state"]

        degraded_client, degraded_server = workload.degraded_counts(state)
        report = ChaosReport(
            spec=spec,
            units=run["units"],
            baseline_units=base["units"],
            stats=realm.channel.stats.as_dict(),
            dedupe_hits=sum(cache.hits for cache in realm.dedupe_caches),
            degraded_client=degraded_client,
            degraded_server=degraded_server,
            sim_seconds=run["sim_seconds"],
            finale=run["finale"],
            baseline_finale=base["finale"],
            extras=workload.extras(state),
            recovery_problems=_recovery_problems(workload),
        )
        if report.exit_code() != 0 and realm.telemetry.enabled:
            _attach_forensics(report, realm.telemetry)
        return report
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)


#: A failed campaign dumps at most this many unit traces — enough to
#: diagnose, small enough to read in a CI log.
FORENSIC_DUMP_LIMIT = 3


def _attach_forensics(report: ChaosReport, telemetry: Telemetry) -> None:
    """Render the causal traces of the units that broke the promise."""
    from repro.obs.export import render_trace_waterfall

    mismatched = set(report.mismatches())
    offenders = [
        unit
        for unit in report.units
        if (not unit.ok or unit.index in mismatched) and unit.trace_id
    ]
    for unit in offenders[:FORENSIC_DUMP_LIMIT]:
        spans = telemetry.store.by_trace(unit.trace_id)
        if spans:
            report.forensics.append(render_trace_waterfall(spans))
