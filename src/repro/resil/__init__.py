"""The resilience layer: retries, breakers, failover, degraded mode.

The network substrate injects faults (drops, partitions); this package is
what *recovers* from them:

* :mod:`repro.resil.policy` — retry/backoff/timeout policies and the
  circuit breaker state machine;
* :mod:`repro.resil.channel` — :class:`ResilientChannel`, a drop-in
  wrapper around :class:`~repro.net.network.Network` giving every RPC
  retry/timeout/breaker semantics and replica failover;
* :mod:`repro.resil.replica` — replica groups behind one logical
  principal;
* :mod:`repro.resil.dedupe` — the server-side response cache that makes
  at-least-once delivery look exactly-once;
* :mod:`repro.resil.degraded` — §3.1–3.2 degraded-mode authorization:
  cached proxies keep working while the authorization server is down;
* :mod:`repro.resil.chaos` — seeded fault campaigns over the paper's
  figure workloads (``python -m repro chaos``).

See ``docs/resilience.md`` for the model.
"""

from repro.resil.channel import ChannelStats, ResilientChannel
from repro.resil.dedupe import ResponseCache
from repro.resil.degraded import ProxyCache, ResilientAuthorizationClient
from repro.resil.policy import (
    NO_RETRY,
    BreakerPolicy,
    CircuitBreaker,
    RetryPolicy,
    Timeout,
)
from repro.resil.replica import ReplicaGroup

__all__ = [
    "BreakerPolicy",
    "ChannelStats",
    "CircuitBreaker",
    "NO_RETRY",
    "ProxyCache",
    "ReplicaGroup",
    "ResilientAuthorizationClient",
    "ResilientChannel",
    "ResponseCache",
    "RetryPolicy",
    "Timeout",
]
