"""Retry, timeout, and circuit-breaker policies.

All delay arithmetic runs on the injected clock and all jitter comes from
an injected :class:`~repro.crypto.rng.Rng`, so a seeded campaign replays
byte-for-byte — the same determinism contract as the network simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto.rng import Rng


@dataclass(frozen=True)
class Timeout:
    """How long one attempt may take before the caller gives up.

    The simulated network is synchronous, so a timeout never interrupts a
    delivery mid-flight; it models the time a client *charges itself* for
    an attempt that ended in a lost message before trying again.
    """

    seconds: float = 1.0


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit-breaker tuning: trip threshold and cooldown."""

    #: Consecutive failures before the breaker opens.
    failure_threshold: int = 3
    #: Seconds the breaker stays open before allowing a half-open probe.
    cooldown: float = 30.0


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter and per-message-type budgets.

    Attempt ``n`` (0-based) sleeps ``min(base_delay * multiplier**n,
    max_delay)`` plus up to ``jitter`` of itself, drawn from the caller's
    rng.  ``budgets`` overrides ``max_attempts`` per message type —
    idempotent lookups can afford more attempts than heavyweight issuance.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    #: Fraction of the backoff added as random jitter (0 disables).
    jitter: float = 0.5
    timeout: Timeout = field(default_factory=Timeout)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    #: Per-message-type attempt budgets, e.g. ``{"as-request": 6}``.
    budgets: Dict[str, int] = field(default_factory=dict)

    def attempts_for(self, msg_type: str) -> int:
        """The attempt budget for one message type (>= 1)."""
        return max(1, self.budgets.get(msg_type, self.max_attempts))

    def delay(self, attempt: int, rng: Optional[Rng] = None) -> float:
        """Backoff before retry number ``attempt`` (0-based), with jitter."""
        base = min(
            self.base_delay * (self.multiplier ** attempt), self.max_delay
        )
        if self.jitter <= 0 or rng is None:
            return base
        spread = rng.int_below(1_000_000) / 1_000_000.0
        return base * (1.0 + self.jitter * spread)


#: A policy that never retries — the channel becomes a transparent pass-
#: through (used by chaos campaigns' ``--no-retry`` control arm).
NO_RETRY = RetryPolicy(max_attempts=1)


class CircuitBreaker:
    """Per-endpoint failure gate: closed → open → half-open → closed.

    * **closed** — requests flow; consecutive failures are counted.
    * **open** — requests are refused locally (no wire traffic) until
      ``cooldown`` elapses on the clock.
    * **half-open** — one probe is allowed through; success closes the
      breaker, failure re-opens it for another cooldown.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, policy: Optional[BreakerPolicy] = None) -> None:
        self.policy = policy or BreakerPolicy()
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at: Optional[float] = None
        #: True while the single half-open probe is in flight.
        self._probing = False

    def allow(self, now: float) -> bool:
        """May a request proceed at time ``now``?  (May transition state.)"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            assert self.opened_at is not None
            if now >= self.opened_at + self.policy.cooldown:
                self.state = self.HALF_OPEN
                self._probing = False
            else:
                return False
        # Half-open: exactly one probe at a time.
        if self._probing:
            return False
        self._probing = True
        return True

    def half_open_at(self) -> float:
        """When an open breaker will next admit a probe."""
        if self.state != self.OPEN or self.opened_at is None:
            return float("-inf")
        return self.opened_at + self.policy.cooldown

    def record_success(self) -> None:
        self.state = self.CLOSED
        self.failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self, now: float) -> None:
        self._probing = False
        if self.state == self.HALF_OPEN:
            # The probe failed: straight back to open for another cooldown.
            self.state = self.OPEN
            self.opened_at = now
            return
        self.failures += 1
        if self.failures >= self.policy.failure_threshold:
            self.state = self.OPEN
            self.opened_at = now
