"""Server-side response deduplication: exactly-once over at-least-once.

A retry after a *response*-leg loss resends the request verbatim — but the
handler already ran, and its side effects (replay-cache registrations,
ticket issuance, account mutations) are committed; re-running it would be
rejected as a replay or, worse, double-applied.  The paper's accept-once
registry solves this for check numbers (§4: a check number is recorded
"once a check is paid"); :class:`ResponseCache` generalizes it to every
RPC: the first execution's reply is cached under the request's identity
and returned for any byte-identical resend.

Only requests stamped with a retry id (``_rid``, added by
:class:`~repro.resil.channel.ResilientChannel`) participate: the rid is
what distinguishes a *resend* from a new logical request that happens to
carry identical bytes (e.g. two ``get-challenge`` calls).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional

from repro.clock import Clock
from repro.encoding.canonical import encode
from repro.net.message import Message

#: Payload key carrying the channel's per-logical-request retry id.
RID_KEY = "_rid"


class ResponseCache:
    """Remembers one response per retry id, for a bounded window."""

    def __init__(
        self,
        clock: Clock,
        window: float = 300.0,
        max_entries: int = 4096,
    ) -> None:
        self.clock = clock
        self.window = window
        self.max_entries = max_entries
        #: key -> (expires_at, response payload), insertion-ordered.
        self._entries: "OrderedDict[bytes, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Called with ``(key, expires_at, response)`` on every store —
        #: installed by the durability wiring so cached replies survive a
        #: crash and a post-restart resend is still answered, not re-run.
        self.sink = None

    @staticmethod
    def key_of(message: Message) -> Optional[bytes]:
        """The dedupe key, or None when the request carries no retry id.

        The key binds source, message type, and the full payload (rid
        included), so a rid can never alias across senders or operations
        and a *different* payload under a reused rid misses the cache.
        """
        if RID_KEY not in message.payload:
            return None
        return hashlib.sha256(
            encode(
                [
                    str(message.source),
                    message.msg_type,
                    message.payload,
                ]
            )
        ).digest()

    def _evict(self, now: float) -> None:
        while self._entries:
            key, (expires_at, _) = next(iter(self._entries.items()))
            if expires_at >= now and len(self._entries) <= self.max_entries:
                break
            del self._entries[key]

    def get(self, key: bytes) -> Optional[dict]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        expires_at, response = entry
        if expires_at < self.clock.now():
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return response

    def put(self, key: bytes, response: dict) -> None:
        now = self.clock.now()
        expires_at = now + self.window
        self._entries[key] = (expires_at, response)
        if self.sink is not None:
            self.sink(key, expires_at, response)
        self._evict(now)

    def restore(self, key: bytes, expires_at: float, response: dict) -> None:
        """Re-insert one cached response during recovery (skip expired)."""
        if expires_at < self.clock.now():
            return
        self._entries[key] = (float(expires_at), response)

    def capture_state(self) -> dict:
        """Snapshot of every live cache entry."""
        self._evict(self.clock.now())
        return {
            "entries": [
                [key, expires_at, response]
                for key, (expires_at, response) in self._entries.items()
            ]
        }

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state` output (snapshot recovery)."""
        for key, expires_at, response in state["entries"]:
            self.restore(key, float(expires_at), response)

    def __len__(self) -> int:
        return len(self._entries)
