"""repro — restricted proxies for distributed authorization and accounting.

A full reproduction of B. Clifford Neuman, *Proxy-Based Authorization and
Accounting for Distributed Systems*, ICDCS 1993.

Layering (the paper's Fig. 2)::

    authorization / accounting / group services     repro.services
    ------------------------------------------     ---------------
    restricted proxies                              repro.core
    ------------------------------------------     ---------------
    authentication (Kerberos V5 / public-key)       repro.kerberos, repro.crypto
    ------------------------------------------     ---------------
    network                                         repro.net

Quick start::

    from repro.testbed import Realm
    realm = Realm()
    alice, bob = realm.user("alice"), realm.user("bob")
    fs = realm.file_server("files")
    fs.grant_owner(alice.principal)
"""

from repro.clock import NEVER, Clock, SimulatedClock, SystemClock
from repro.encoding.identifiers import AccountId, GroupId, PrincipalId
from repro.testbed import Realm, User, federation

__version__ = "1.0.0"

__all__ = [
    "Realm",
    "User",
    "federation",
    "PrincipalId",
    "GroupId",
    "AccountId",
    "Clock",
    "SimulatedClock",
    "SystemClock",
    "NEVER",
    "__version__",
]
