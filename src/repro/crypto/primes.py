"""Prime generation and primality testing for RSA/DH key generation.

Implements deterministic trial division over small primes followed by
Miller–Rabin with enough rounds that the error probability is negligible for
the key sizes this library uses.  Pure Python; suitable for the 512–2048-bit
moduli used in the reproduction.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.rng import DEFAULT_RNG, Rng

#: Small primes for fast trial division before Miller–Rabin.
_SMALL_PRIMES = [2, 3]
for _candidate in range(5, 2000, 2):
    if all(_candidate % p for p in _SMALL_PRIMES):
        _SMALL_PRIMES.append(_candidate)

#: Deterministic Miller–Rabin witnesses valid for all n < 3.3e24; we add
#: random rounds on top for larger inputs.
_DETERMINISTIC_WITNESSES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller–Rabin round: True when ``n`` is still possibly prime."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rng: Optional[Rng] = None, rounds: int = 24) -> bool:
    """Return True when ``n`` is (almost certainly) prime.

    Uses trial division, deterministic witnesses, then ``rounds`` random
    Miller–Rabin rounds (error probability at most 4**-rounds).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    for a in _DETERMINISTIC_WITNESSES:
        if a >= n - 1:
            continue
        if not _miller_rabin_round(n, a, d, r):
            return False

    rng = rng or DEFAULT_RNG
    for _ in range(rounds):
        a = 2 + rng.int_below(n - 3)
        if not _miller_rabin_round(n, a, d, r):
            return False
    return True


def generate_prime(bits: int, rng: Optional[Rng] = None) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 16:
        raise ValueError("refusing to generate primes below 16 bits")
    rng = rng or DEFAULT_RNG
    while True:
        candidate = rng.odd_int_bits(bits)
        # Quick sieve: skip candidates with small factors without the cost
        # of a full Miller-Rabin run.
        if any(candidate % p == 0 for p in _SMALL_PRIMES[:64]):
            continue
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_safe_prime(bits: int, rng: Optional[Rng] = None) -> int:
    """Generate a safe prime p (p = 2q + 1 with q prime), for DH groups.

    Safe-prime search is slow; library code prefers the fixed RFC group in
    :mod:`repro.crypto.dh` and uses this only for small test groups.
    """
    rng = rng or DEFAULT_RNG
    while True:
        q = generate_prime(bits - 1, rng=rng)
        p = 2 * q + 1
        if is_probable_prime(p, rng=rng):
            return p
