"""Diffie–Hellman key agreement over a safe-prime group.

Used by the network session layer to establish pairwise session keys when no
KDC mediates the exchange (e.g. between accounting servers in different
realms).  The default group is the 2048-bit MODP group from RFC 3526; a small
test group is available for fast unit tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.crypto.rng import DEFAULT_RNG, Rng
from repro.crypto.symmetric import KEY_LEN
from repro.errors import CryptoError

#: RFC 3526 group 14 (2048-bit MODP) prime.
RFC3526_PRIME_2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)

#: A small (512-bit) safe prime for fast tests; generated once with
#: :func:`repro.crypto.primes.generate_safe_prime` (seed ``safe-prime-512``)
#: and fixed here.
TEST_PRIME_512 = int(
    "FAD304E48D3AE4C94F32D880260DB0089FE4B26A35128A58"
    "075E30E284F3CAAF65A5448ACE943F6A95F2F37562EAABB6"
    "1BA0957963E489293105DFB2DD2DB9AB",
    16,
)


@dataclass(frozen=True)
class DhGroup:
    """A Diffie–Hellman group (safe prime ``p``, generator ``g``)."""

    p: int
    g: int = 2

    @property
    def bit_length(self) -> int:
        return self.p.bit_length()


DEFAULT_GROUP = DhGroup(p=RFC3526_PRIME_2048)
TEST_GROUP = DhGroup(p=TEST_PRIME_512)


@dataclass(frozen=True)
class DhKeyPair:
    """An ephemeral DH keypair within a group."""

    group: DhGroup
    private: int
    public: int


def generate_keypair(group: DhGroup = DEFAULT_GROUP, rng: Optional[Rng] = None) -> DhKeyPair:
    """Generate an ephemeral keypair in ``group``."""
    rng = rng or DEFAULT_RNG
    # Private exponents of 2*KEY_LEN bytes give a comfortable security margin
    # for the simulated setting.
    private = int.from_bytes(rng.bytes(2 * KEY_LEN), "big") % (group.p - 3) + 2
    public = pow(group.g, private, group.p)
    return DhKeyPair(group=group, private=private, public=public)


def shared_key(own: DhKeyPair, peer_public: int) -> bytes:
    """Derive the shared symmetric key from our keypair and the peer's public value.

    Raises:
        CryptoError: when the peer value is outside the valid range (a
            classic small-subgroup attack vector).
    """
    if not 2 <= peer_public <= own.group.p - 2:
        raise CryptoError("peer DH public value out of range")
    secret = pow(peer_public, own.private, own.group.p)
    material = secret.to_bytes((own.group.p.bit_length() + 7) // 8, "big")
    return hashlib.sha256(b"dh-kdf:" + material).digest()[:KEY_LEN]
